#!/usr/bin/env python3
"""Operations tour: running Zerber as infrastructure.

Day-2 concerns a real deployment hits, all built into this reproduction:

1. **Durability** — index servers log every accepted mutation to a WAL;
   a crashed box recovers its share store from disk (§5.4.1's "element
   IDs help an index recover after failure");
2. **Fleet extension** — an (n+1)-th server joins without re-encrypting
   anything: owners evaluate their elements' polynomials at the new
   x-coordinate (§5.1);
3. **Byzantine detection** — a client querying more than k servers
   cross-checks reconstructions and drops elements a lying server
   corrupted;
4. **Anonymous updates** — owners route batches through a MIX relay so a
   compromised server cannot attribute updates to senders (§4).

Run:  python examples/operations_tour.py
"""

from __future__ import annotations

import random
import tempfile
from pathlib import Path

from repro.client.batching import BatchPolicy
from repro.core.zerber_index import ZerberDeployment
from repro.corpus.synthetic import SyntheticCorpusConfig, generate_corpus
from repro.extensions.mixnet import MixMessage, MixRelay
from repro.server.index_server import IndexServer, ShareRecord
from repro.server.persistence import PostingLog, attach_log, recover_server


def main() -> None:
    corpus = generate_corpus(
        SyntheticCorpusConfig(
            num_documents=30,
            vocabulary_size=500,
            num_groups=2,
            mean_document_length=40,
            seed=404,
        )
    )
    probs = corpus.term_probabilities()
    deployment = ZerberDeployment.bootstrap(
        probs,
        heuristic="bfm",
        num_lists=16,
        k=2,
        n=3,
        use_network=False,
        batch_policy=BatchPolicy(min_documents=4),
        seed=11,
    )
    for g in corpus.group_ids():
        deployment.create_group(g, coordinator=f"owner{g}")

    # -- 1. durability -------------------------------------------------------
    workdir = Path(tempfile.mkdtemp(prefix="zerber-ops-"))
    logs = []
    for server in deployment.servers:
        log = PostingLog(workdir / f"{server.server_id}.wal")
        attach_log(server, log)
        logs.append(log)
    for document in corpus:
        deployment.share_document(f"owner{document.group_id}", document)
    deployment.flush_all()
    elements = deployment.servers[0].num_elements
    print(f"[durability] {elements} elements per server, "
          f"WALs at {workdir}")

    # Crash server 0 and recover a replacement from its log.
    dead = deployment.servers[0]
    replacement = IndexServer(
        server_id="index-server-0-replacement",
        x_coordinate=dead.x_coordinate,
        auth=deployment.auth,
        groups=deployment.groups,
        share_bytes=dead.share_bytes,
    )
    logs[0].close()
    recovered = recover_server(
        replacement, PostingLog(workdir / "index-server-0.wal")
    )
    print(f"[durability] replacement recovered {recovered} elements "
          f"from the WAL (match: {recovered == elements})")
    deployment.servers[0] = replacement

    # -- 2. fleet extension -----------------------------------------------------
    new_server = deployment.add_server()
    print(f"[extension] server 4 joined with x={new_server.x_coordinate}; "
          f"holds {new_server.num_elements} elements "
          f"(no re-encryption, same element IDs)")

    # -- 3. Byzantine detection ---------------------------------------------------
    term = sorted(corpus.documents_in_group(0)[0].term_counts)[0]
    pl_id = deployment.mapping_table.lookup(term)
    liar = deployment.servers[1]
    store = liar._store.get(pl_id, {})
    for element_id, record in list(store.items()):
        store[element_id] = ShareRecord(
            element_id=record.element_id,
            group_id=record.group_id,
            share_y=(record.share_y + 12345) % deployment.field.p,
        )
    print(f"[byzantine] server 1 now lies about list {pl_id} "
          f"({len(store)} shares corrupted)")
    naive = deployment.searcher("owner0")
    naive.fetch_elements([term], num_servers=2)
    verifying = deployment.searcher("owner0", verify_consistency=True)
    clean = verifying.fetch_elements([term], num_servers=4)
    diag = verifying.last_diagnostics
    print(f"[byzantine] verifying client: {len(clean)} elements served, "
          f"{diag.inconsistent_elements} inconsistencies detected, "
          f"{diag.recovered_elements} recovered by majority vote")

    # -- 4. anonymous updates -------------------------------------------------------
    deliveries = []

    def forward(destination, kind, payload, padded_bytes):
        deliveries.append((destination, kind, padded_bytes))

    mix = MixRelay(
        forward, batch_threshold=6, rng=random.Random(5), pad_to_multiple=512
    )
    for sender in ("owner0", "owner1", "owner0", "owner1", "owner0", "owner1"):
        mix.submit(
            sender,
            MixMessage(
                destination="index-server-2",
                kind="insert",
                payload=b"opaque",
                payload_bytes=random.Random(len(deliveries)).randrange(40, 400),
            ),
        )
    senders, messages = mix.flush_history[-1]
    sizes = sorted({size for _, _, size in deliveries})
    print(f"[mixnet] flushed {messages} messages pooled from {senders} "
          f"senders; on-the-wire sizes padded to {sizes}")
    print("\nall four operational drills passed.")


if __name__ == "__main__":
    main()
