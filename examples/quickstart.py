#!/usr/bin/env python3
"""Quickstart: share, search and withdraw sensitive documents with Zerber.

Walks the full paper pipeline in miniature:

1. learn term statistics and build a merged, r-confidential mapping table;
2. stand up a 2-out-of-3 deployment (3 index servers, enterprise auth);
3. two collaboration groups share documents;
4. members search — exact, ranked, snippet-equipped results;
5. outsiders and ex-members get nothing;
6. a compromised server's view is inspected and found bounded by r.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.client.batching import BatchPolicy
from repro.core.zerber_index import ZerberDeployment
from repro.corpus.document import Document
from repro.invindex.tokenizer import Tokenizer

DOCS = {
    # (doc_id, host, group): text
    (1, "peer-legal", 0): (
        "Confidential merger brief: ImClone acquisition term sheet "
        "drafted by Martha for the board, budget attached."
    ),
    (2, "peer-legal", 0): (
        "Layoff planning memo: budget impact of the merger on the "
        "Hannover office, restructuring options."
    ),
    (3, "peer-research", 1): (
        "Lab notebook: catalyst compound synthesis for the new "
        "chemical process, yield improved to 62 percent."
    ),
    (4, "peer-research", 1): (
        "Experiment plan: scale up catalyst production, order compound "
        "precursors, book reactor time."
    ),
}


def make_document(doc_id: int, host: str, group: int, text: str) -> Document:
    counts = Tokenizer().term_counts(text)
    return Document(
        doc_id=doc_id,
        host=host,
        group_id=group,
        term_counts=dict(counts),
        length=sum(counts.values()),
        text=text,
    )


def main() -> None:
    documents = [
        make_document(doc_id, host, group, text)
        for (doc_id, host, group), text in DOCS.items()
    ]

    # 1. Term statistics -> merged posting lists. With a toy vocabulary we
    #    hash-route everything into 8 merged lists (§6.4 path); real
    #    deployments learn statistics first (see merging_tradeoffs.py).
    from repro.core.mapping_table import MappingTable

    table = MappingTable({}, num_lists=8)

    # 2. The deployment: 3 index servers, any 2 reconstruct (paper's k/n).
    deployment = ZerberDeployment(
        mapping_table=table,
        k=2,
        n=3,
        batch_policy=BatchPolicy(min_documents=2),
        seed=42,
    )
    print(f"servers: {[s.server_id for s in deployment.servers]}")
    print(f"Shamir: k={deployment.scheme.k} of n={deployment.scheme.n}, "
          f"p={deployment.field.p}")

    # 3. Two groups share their documents.
    deployment.create_group(0, coordinator="alice")   # legal
    deployment.create_group(1, coordinator="bo")      # research
    for document in documents:
        owner = "alice" if document.group_id == 0 else "bo"
        deployment.share_document(owner, document)
    deployment.flush_all()
    print(f"elements per server: {deployment.servers[0].num_elements}")

    # 4. Members search: exact results, ranked, with snippets.
    print("\nalice searches ['merger', 'budget']:")
    for hit in deployment.search("alice", ["merger", "budget"], top_k=5):
        print(f"  doc {hit.doc_id} @ {hit.host}  score={hit.score:.3f}")
        print(f"    matched={list(hit.matched_terms)}")
        print(f"    snippet: {hit.snippet[:68]}...")

    # 5. Access control: the research group cannot see legal's documents,
    #    and membership changes apply instantly — no re-encryption.
    assert deployment.search("bo", ["merger"], top_k=5) == []
    print("\nbo (research) searching 'merger': no results — access denied")

    deployment.add_member(0, "carol", actor="alice")
    assert deployment.search("carol", ["merger"], top_k=5)
    deployment.remove_member(0, "carol", actor="alice")
    assert deployment.search("carol", ["merger"], top_k=5) == []
    print("carol was granted then revoked: results appeared, then vanished")

    # 6. What does a compromised server learn?
    view = deployment.servers[0].compromise()
    lengths = view.merged_list_lengths()
    print(f"\ncompromised server sees {len(lengths)} merged lists with "
          f"lengths {sorted(lengths.values(), reverse=True)}")
    print("   ...but every stored value is a Shamir share: without a "
          "second server, nothing decrypts.")

    # Withdraw a document: per-element deletes at every server.
    deleted = deployment.owner("alice").delete_document(1)
    print(f"\nalice withdrew doc 1 ({deleted} elements deleted per server)")
    assert all(
        hit.doc_id != 1
        for hit in deployment.search("alice", ["merger"], top_k=5)
    )
    print("doc 1 no longer appears in results — done.")


if __name__ == "__main__":
    main()
