#!/usr/bin/env python3
"""Enterprise scenario: a Stud IP-like installation on Zerber (§2, §7.4.1).

Simulates the paper's motivating environment — many collaboration groups
inside one large organization, churning membership, no universally
trusted administrator:

- a generated Stud IP-style installation provides courses (groups),
  users and upload volumes;
- a synthetic corpus provides the course documents;
- the semester plays out: uploads arrive in batches week by week,
  students join and leave courses, everyone searches;
- at the end we audit what each index server accumulated and what the
  ideal trusted index would have answered (they must agree).

Run:  python examples/enterprise_collaboration.py
"""

from __future__ import annotations

import random

from repro.baselines.plain_index import IdealTrustedIndex
from repro.client.batching import BatchPolicy
from repro.core.zerber_index import ZerberDeployment
from repro.corpus.studip import StudIPConfig, generate_installation
from repro.corpus.synthetic import SyntheticCorpusConfig, generate_corpus

NUM_COURSES = 8
SEMESTER_WEEKS = 6


def main() -> None:
    rng = random.Random(2008)
    installation = generate_installation(
        StudIPConfig(
            num_courses=NUM_COURSES,
            num_users=30,
            semester_weeks=SEMESTER_WEEKS,
            mean_documents_per_course=8.0,
            seed=31,
        )
    )
    total_docs = installation.total_documents
    corpus = generate_corpus(
        SyntheticCorpusConfig(
            num_documents=total_docs,
            vocabulary_size=3_000,
            num_groups=NUM_COURSES,
            num_hosts=NUM_COURSES,
            mean_document_length=80,
            topic_concentration=0.4,
            seed=13,
        )
    )
    probs = corpus.term_probabilities()
    deployment = ZerberDeployment.bootstrap(
        probs,
        heuristic="bfm",
        num_lists=48,
        k=2,
        n=3,
        batch_policy=BatchPolicy(min_documents=4, max_age_ticks=1),
        seed=7,
    )
    ideal = IdealTrustedIndex(deployment.groups)

    # Course coordinators own the groups; students enroll per the model.
    for course in range(NUM_COURSES):
        deployment.create_group(course, coordinator=f"teacher{course}")
    for user_id, courses in installation.memberships.items():
        for course in courses:
            if course < NUM_COURSES:
                deployment.add_member(
                    course, f"student{user_id}", actor=f"teacher{course}"
                )

    # The semester: uploads arrive week by week; the owner daemon batches.
    docs_by_id = {d.doc_id: d for d in corpus}
    uploaded = 0
    for week in range(SEMESTER_WEEKS):
        weekly = [
            (course, doc_id)
            for (w, course, doc_id) in installation.uploads
            if w == week and doc_id < len(docs_by_id)
        ]
        for course, doc_id in weekly:
            document = docs_by_id[doc_id]
            # Rebind the document to the uploading course's group.
            from dataclasses import replace

            document = replace(document, group_id=course)
            deployment.share_document(f"teacher{course}", document)
            ideal.index_document(document)
            uploaded += 1
        for owner_id in (f"teacher{c}" for c in range(NUM_COURSES)):
            deployment.owner(owner_id).tick()
        print(f"week {week + 1}: {len(weekly)} uploads "
              f"(cumulative {uploaded})")
    deployment.flush_all()

    # Students search their courses' material.
    print("\nsearch spot-checks (Zerber vs ideal trusted index):")
    agreements = 0
    trials = 0
    for user_id, courses in list(installation.memberships.items())[:10]:
        student = f"student{user_id}"
        course = courses[0]
        course_docs = [
            d for d in ideal_documents(ideal, deployment, course)
        ]
        if not course_docs:
            continue
        term = rng.choice(sorted(docs_by_id[course_docs[0]].term_counts))
        zerber_hits = {
            h.doc_id
            for h in deployment.searcher(student).search(
                [term], top_k=20, fetch_snippets=False
            )
        }
        ideal_hits = {
            h.doc_id for h in ideal.search(student, [term], top_k=20)
        }
        agree = zerber_hits == ideal_hits
        agreements += agree
        trials += 1
        print(f"  {student} in course {course} queried {term!r}: "
              f"{len(zerber_hits)} hits  "
              f"{'==' if agree else '!='} ideal")
    print(f"\n{agreements}/{trials} spot-checks agree with the ideal index")
    assert agreements == trials

    # Server-side audit.
    for server in deployment.servers:
        print(f"{server.server_id}: {server.num_elements} share records, "
              f"{server.num_posting_lists} non-empty merged lists, "
              f"{server.storage_bytes()} bytes")
    r = deployment.merge_result.resulting_r(probs)
    print(f"index-wide confidentiality r = {r:.1f} "
          f"(adversary gains at most that factor over background knowledge)")


def ideal_documents(ideal, deployment, course):
    """Doc ids currently indexed for a course (via the coordinator view)."""
    teacher = f"teacher{course}"
    owner = deployment.owner(teacher)
    return owner.shared_documents


if __name__ == "__main__":
    main()
