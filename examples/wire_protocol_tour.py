#!/usr/bin/env python3
"""Wire-protocol tour: the message API, the codec, and both transports.

The paper's threat model (§4–§5) is stated at a network boundary —
index servers see opaque share requests. This tour makes that boundary
visible:

1. encode one of every kind of message with the compact binary codec
   and look at the frames on the wire;
2. speak the protocol by hand: insert shares into a server and fetch
   them back through a raw `InProcessTransport`, watch a dead seat and
   an unknown endpoint fail *typed*;
3. run the same cluster over both transport backends — in-process and
   loopback TCP — and verify the answers are byte-identical;
4. kill a pod under the socket backend: the failover ladder works the
   same when every hop is a real TCP frame;
5. read the observability snapshot (`repro cluster status` renders the
   same structure).

Run:  PYTHONPATH=src python examples/wire_protocol_tour.py
"""

from __future__ import annotations

from repro.client.batching import BatchPolicy
from repro.cluster import ClusterDeployment
from repro.corpus.synthetic import SyntheticCorpusConfig, generate_corpus
from repro.errors import ReproError, UnknownEndpointError
from repro.protocol import (
    FetchListsRequest,
    IndexServerService,
    InProcessTransport,
    InsertBatchRequest,
    decode_message,
    encode_message,
)
from repro.server.auth import AuthService
from repro.server.groups import GroupDirectory
from repro.server.index_server import IndexServer, InsertOp


def codec_on_the_wire() -> None:
    print("== 1. frames on the wire ==")
    auth = AuthService()
    credential = auth.register_user("alice")
    token = auth.issue_token("alice", credential)
    request = FetchListsRequest(token=token, pl_ids=(3, 7, 11))
    frame = encode_message(request)
    print(f"FetchListsRequest -> {len(frame)} bytes: {frame[:24].hex()}...")
    assert decode_message(frame) == request
    print(f"accounted §7.3 size (what benchmarks charge): "
          f"{request.wire_bytes()} bytes\n")


def protocol_by_hand() -> None:
    print("== 2. the protocol by hand ==")
    auth, groups = AuthService(), GroupDirectory()
    credential = auth.register_user("alice")
    token = auth.issue_token("alice", credential)
    groups.create_group(0, "alice")
    server = IndexServer(
        server_id="s0", x_coordinate=1, auth=auth, groups=groups
    )
    transport = InProcessTransport()
    transport.register("s0", IndexServerService.for_server(server))
    ack = transport.call("alice", "s0", InsertBatchRequest(
        token=token,
        operations=(InsertOp(pl_id=3, element_id=9, group_id=0, share_y=41),),
    ))
    print(f"insert acknowledged: {ack.count} op")
    response = transport.call(
        "alice", "s0", FetchListsRequest(token=token, pl_ids=(3,))
    )
    print(f"fetched share y={response.lists[0].records[0].share_y}")
    try:
        transport.call("alice", "ghost", FetchListsRequest(token, (3,)))
    except UnknownEndpointError as exc:
        print(f"unknown endpoint fails typed: {exc} "
              f"(endpoint={exc.endpoint!r})\n")


def both_backends() -> None:
    print("== 3-5. one cluster, two transports ==")
    corpus = generate_corpus(SyntheticCorpusConfig(
        num_documents=40, vocabulary_size=500, num_groups=2, seed=13
    ))
    terms = sorted(corpus.documents_in_group(0)[0].term_counts)[:3]

    def build(transport: str) -> ClusterDeployment:
        cluster = ClusterDeployment.bootstrap(
            corpus.term_probabilities(),
            heuristic="dfm", num_lists=32,
            num_pods=2, k=2, n=3, replication_factor=2,
            batch_policy=BatchPolicy(min_documents=4),
            transport=transport, seed=13,
        )
        for g in corpus.group_ids():
            cluster.create_group(g, coordinator=f"owner{g}")
        for document in corpus:
            cluster.share_document(f"owner{document.group_id}", document)
        cluster.flush_all()
        return cluster

    with build("in-process") as local, build("socket") as remote:
        host, port = remote.transport.address
        print(f"socket deployment listening on {host}:{port}")
        expected = local.search("owner0", terms, top_k=5)
        over_tcp = remote.search("owner0", terms, top_k=5)
        assert over_tcp == expected
        print(f"byte-identical over TCP: {len(over_tcp)} hits for {terms}")

        remote.kill_pod(0)
        searcher = remote.searcher("owner0", use_cache=False)
        degraded = searcher.search(terms, top_k=5, fetch_snippets=False)
        fresh_local = local.searcher("owner0", use_cache=False).search(
            terms, top_k=5, fetch_snippets=False
        )
        assert degraded == fresh_local
        diag = searcher.last_cluster_diagnostics
        print(f"pod 0 dead, still byte-identical "
              f"({diag.pod_failovers} pod failovers, "
              f"{diag.failovers} seat failovers, all over TCP)")

        try:
            remote.kill_pod(1)
            remote.searcher("owner0", use_cache=False).search(
                terms, top_k=5, fetch_snippets=False
            )
        except ReproError as exc:
            print(f"both pods dead -> loud degradation: "
                  f"{type(exc).__name__}")

        snap = remote.status_snapshot()
        print("status snapshot:")
        for pod in snap["pods"]:
            print(f"  {pod['name']}: {pod['live_seats']} live / "
                  f"{pod['dead_seats']} dead seats, "
                  f"{pod['hosted_lists']} lists")
    print("deployments closed: sockets, threads, and WALs reaped")


def main() -> None:
    codec_on_the_wire()
    protocol_by_hand()
    both_backends()


if __name__ == "__main__":
    main()
