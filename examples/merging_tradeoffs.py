#!/usr/bin/env python3
"""Exploring the confidentiality/efficiency dial of §6.

For an ODP-like corpus, sweeps the number of merged posting lists M and
prints, per heuristic (DFM / BFM / UDM):

- the resulting confidentiality value r (formula 7),
- the total workload cost versus an unmerged index (formula 6),
- the fraction of terms with their own (singleton) posting list,
- the size of the public mapping table once the §6.4 rare-term hash
  cutoff hides the long tail.

This is how an operator would pick M and r for a real deployment.

Run:  python examples/merging_tradeoffs.py
"""

from __future__ import annotations

from repro.core.mapping_table import MappingTable
from repro.core.merging.bfm import BreadthFirstMerging, bfm_r_for_list_count
from repro.core.merging.dfm import DepthFirstMerging
from repro.core.merging.udm import UniformDistributionMerging
from repro.corpus.querylog import QueryLogConfig, generate_query_log
from repro.corpus.synthetic import odp_like_statistics
from repro.invindex.costmodel import unmerged_workload_cost, workload_cost


def main() -> None:
    stats = odp_like_statistics(scale=0.01)
    probs = stats.term_probabilities()
    dfs = dict(stats.document_frequencies)
    qlog = generate_query_log(
        stats,
        QueryLogConfig(
            total_queries=40_000,
            distinct_query_terms=1_200,
            rank_noise=0.005,
            tail_fraction=0.2,
            seed=5,
        ),
    )
    qfs = qlog.frequencies()
    baseline = unmerged_workload_cost(dfs, qfs)
    print(f"corpus: {stats.num_documents} docs, "
          f"{stats.vocabulary_size} terms, "
          f"{stats.total_postings} postings")
    print(f"workload: {qlog.total_queries} queries over "
          f"{qlog.distinct_terms} terms; unmerged cost {baseline:.3e}\n")

    header = (f"{'M':>6} | {'heuristic':>9} | {'r':>10} | "
              f"{'workload x':>10} | {'singletons':>10} | {'table size':>10}")
    print(header)
    print("-" * len(header))
    for m in (16, 64, 256, 1024):
        target_r = bfm_r_for_list_count(probs, m)
        heuristics = {
            "DFM": DepthFirstMerging(m, target_r),
            "BFM": BreadthFirstMerging(target_r),
            "UDM": UniformDistributionMerging(m),
        }
        for name, algo in heuristics.items():
            merge = algo.merge(probs)
            r = merge.resulting_r(probs)
            cost = workload_cost(merge.lists, dfs, qfs)
            # Hide terms below the median probability via the §6.4 hash.
            cutoff = sorted(probs.values())[len(probs) // 2]
            table = MappingTable.from_merge(
                merge, term_probabilities=probs, rare_cutoff=cutoff
            )
            print(
                f"{m:>6} | {name:>9} | {r:>10.1f} | "
                f"{cost / baseline:>10.1f} | "
                f"{merge.singleton_lists():>10} | {table.table_size:>10}"
            )
        print("-" * len(header))

    print(
        "\nReading the dial: small M = strong confidentiality (small r) "
        "but heavy query cost; large M = fast queries, weaker r. "
        "BFM/DFM give the head its own lists (singletons) — UDM never "
        "does, protecting common terms at the tail's expense (Fig. 9/10)."
    )


if __name__ == "__main__":
    main()
