#!/usr/bin/env python3
"""Cluster tour: shard the index across pods, kill servers, keep answering.

Walks the sharded cluster engine end to end:

1. bootstrap a 3-pod cluster (each pod: 6 servers, any 3 reconstruct)
   over a synthetic corpus — merged posting lists are placed on pods by
   consistent hashing;
2. run batched multi-term queries: one lookup message per contacted
   server per query, not one per term;
3. watch the share cache absorb a repeated query (zero messages);
4. kill one server in every pod — failover keeps every answer
   byte-identical;
5. kill down to exactly k in one pod, then past it — the pod degrades
   loudly instead of answering wrong;
6. restart and verify the fleet is whole again;
7. rebuild with replication_factor=2, kill an *entire pod* — answers
   unchanged; write while it is dead, restart it, and watch the owner
   re-provision the writes it missed.

Run:  PYTHONPATH=src python examples/cluster_tour.py
"""

from __future__ import annotations

from repro.client.batching import BatchPolicy
from repro.cluster import ClusterDeployment
from repro.corpus.synthetic import SyntheticCorpusConfig, generate_corpus
from repro.errors import ClusterDegradedError

PODS, N, K = 3, 6, 3


def main() -> None:
    # 1. A corpus and a sharded deployment.
    corpus = generate_corpus(
        SyntheticCorpusConfig(
            num_documents=60, vocabulary_size=700, num_groups=2, seed=13
        )
    )
    cluster = ClusterDeployment.bootstrap(
        corpus.term_probabilities(),
        heuristic="dfm",
        num_lists=48,
        num_pods=PODS,
        k=K,
        n=N,
        batch_policy=BatchPolicy(min_documents=4),
        seed=13,
    )
    for g in corpus.group_ids():
        cluster.create_group(g, coordinator=f"owner{g}")
    for document in corpus:
        cluster.share_document(f"owner{document.group_id}", document)
    cluster.flush_all()
    shards = cluster.coordinator.shard_distribution(
        cluster.mapping_table.num_lists
    )
    print(f"{PODS} pods x {N} servers (k={K}); shard placement: {shards}")
    print(f"stored elements across the cluster: {cluster.total_elements()}")

    # 2. Batched multi-term query.
    doc = corpus.documents_in_group(0)[0]
    terms = sorted(doc.term_counts)[:3]
    searcher = cluster.searcher("owner0")
    results = searcher.search(terms, top_k=5)
    diagnostics = searcher.last_cluster_diagnostics
    print(f"\nowner0 queried {terms}: {len(results)} hits")
    print(f"  pods contacted: {diagnostics.pods_contacted}, "
          f"lookup messages: {diagnostics.lookup_messages} "
          "(one per server per query, not per term)")

    # 3. The share cache absorbs the repeat.
    repeated = searcher.search(terms, top_k=5)
    diagnostics = searcher.last_cluster_diagnostics
    assert repeated == results
    print(f"repeat query: {diagnostics.cache_hits} cache hits, "
          f"{diagnostics.lookup_messages} messages — free")

    # 4. Kill one server per pod; answers must not move.
    for pod in cluster.pods:
        print(f"killed {cluster.kill_server(pod.index, pod.index)}")
    survivor = cluster.searcher("owner0", use_cache=False)
    degraded = survivor.search(terms, top_k=5)
    assert degraded == results
    print(f"after kills: identical results "
          f"({survivor.last_cluster_diagnostics.failovers} failovers)")

    # 5. Degrade pod 0 to exactly k, then past it.
    for slot_index in range(N):
        if len(cluster.pods[0].live_slots()) == K:
            break
        if cluster.pods[0].slots[slot_index].alive:
            cluster.kill_server(0, slot_index)
    at_k = cluster.searcher("owner0", use_cache=False).search(terms, top_k=5)
    assert at_k == results
    print(f"\npod0 down to exactly k={K} servers: still identical")
    victim = next(s for s in cluster.pods[0].slots if s.alive)
    cluster.kill_server(0, victim.slot_index)
    try:
        cluster.searcher("owner0", use_cache=False).search(terms, top_k=5)
        raise AssertionError("expected degradation")
    except ClusterDegradedError as exc:
        print(f"one more kill: {exc}")

    # 6. Restart everything; the fleet is whole again.
    for pod in cluster.pods:
        for slot in pod.slots:
            if not slot.alive:
                cluster.restart_server(pod.index, slot.slot_index)
    final = cluster.searcher("owner0", use_cache=False).search(terms, top_k=5)
    assert final == results
    print(f"\nall servers restarted: {len(cluster.coordinator.live_servers())}"
          f"/{PODS * N} live, answers unchanged")

    # 7. Replication: an entire pod can die without moving an answer.
    replicated = ClusterDeployment.bootstrap(
        corpus.term_probabilities(),
        heuristic="dfm",
        num_lists=48,
        num_pods=PODS,
        k=K,
        n=N,
        replication_factor=2,
        batch_policy=BatchPolicy(min_documents=4),
        seed=13,
    )
    for g in corpus.group_ids():
        replicated.create_group(g, coordinator=f"owner{g}")
    for document in corpus:
        replicated.share_document(f"owner{document.group_id}", document)
    replicated.flush_all()
    baseline = replicated.searcher("owner0", use_cache=False).search(
        terms, top_k=5
    )
    print(f"\nreplication_factor=2: every list on 2 pods "
          f"({replicated.total_elements()} stored elements, "
          "2x the single-replica footprint)")
    replicated.kill_pod(0)
    survivor = replicated.searcher("owner0", use_cache=False)
    assert survivor.search(terms, top_k=5) == baseline
    print("killed ALL of pod0: answers unchanged — rebalance-free pod loss")
    late = corpus.documents_in_group(0)[-1]
    replicated.share_document("owner0", late)
    replicated.flush_all()
    coordinator = replicated.coordinator
    print(f"re-shared a document with pod0 dead: "
          f"{coordinator.outstanding_write_routes} write routes dropped "
          "(ledgered per seat)")
    replicated.restart_pod(0)
    repaired = replicated.reprovision_dropped_writes()
    assert coordinator.outstanding_write_routes == 0
    assert replicated.searcher("owner0", use_cache=False).search(
        terms, top_k=5
    ) == baseline
    print(f"pod0 restarted; owner re-provisioned {repaired} missed "
          "operations — fleet whole again, answers unchanged — done.")


if __name__ == "__main__":
    main()
