#!/usr/bin/env python3
"""Compromise drill: what do attackers actually get out of Zerber? (§4, §7.1)

Plays the paper's threat model end to end:

1. an industrial-espionage corpus is indexed (chemical compounds, §1's
   example of what posting-list lengths can betray);
2. Alice takes over ONE index server and runs the statistical playbook —
   her amplification is measured against the configured r;
3. she watches the update stream — batching defeats her correlation
   attack;
4. she colludes with a second admin to reach k servers — and only then
   does anything decrypt;
5. proactive refresh rotates the shares, making her stolen share useless.

Run:  python examples/compromise_drill.py
"""

from __future__ import annotations

import random

from repro.attacks.adversary import BackgroundKnowledge
from repro.attacks.collusion import (
    attempt_reconstruction,
    consistent_with_every_secret,
)
from repro.attacks.correlation import CorrelationAttack
from repro.attacks.statistical import StatisticalAttack
from repro.client.batching import BatchPolicy
from repro.core.zerber_index import ZerberDeployment
from repro.corpus.synthetic import SyntheticCorpusConfig, generate_corpus
from repro.errors import InsufficientSharesError
from repro.secretsharing.proactive import refresh_shares
from repro.secretsharing.shamir import Share


def main() -> None:
    corpus = generate_corpus(
        SyntheticCorpusConfig(
            num_documents=48,
            vocabulary_size=800,
            num_groups=3,
            mean_document_length=50,
            topic_concentration=0.5,
            seed=1944,
        )
    )
    probs = corpus.term_probabilities()
    deployment = ZerberDeployment.bootstrap(
        probs,
        heuristic="dfm",
        num_lists=32,
        k=2,
        n=3,
        batch_policy=BatchPolicy(min_documents=8),
        seed=3,
    )
    for g in corpus.group_ids():
        deployment.create_group(g, coordinator=f"owner{g}")
    for document in corpus:
        deployment.share_document(f"owner{document.group_id}", document)
    deployment.flush_all()
    r = deployment.merge_result.resulting_r(probs)
    print(f"deployment: k=2 of n=3, M={deployment.mapping_table.num_lists} "
          f"merged lists, configured r={r:.1f}\n")

    # -- 1+2: Alice owns index-server-0 and runs statistics ----------------
    view = deployment.servers[0].compromise()
    members = {
        i: list(ms) for i, ms in enumerate(deployment.merge_result.lists)
    }
    alice = StatisticalAttack(view, members, BackgroundKnowledge(probs))
    report = alice.report(corpus.document_frequencies())
    print("[statistical attack from one server]")
    print(f"  merged list lengths visible: "
          f"{sorted(view.merged_list_lengths().values(), reverse=True)[:8]}...")
    print(f"  max amplification achieved: {report.max_amplification:.1f} "
          f"(bound r={r:.1f})")
    print(f"  DF estimation error forced on her: "
          f"{100 * report.df_estimate_error:.0f}%")
    assert report.max_amplification <= r * (1 + 1e-9)

    # -- 3: update watching --------------------------------------------------
    attack = CorrelationAttack(view)
    truth = {}
    for g in corpus.group_ids():
        owner = deployment.owner(f"owner{g}")
        for doc_id in owner.shared_documents:
            for _pl, element_id in owner.elements_of(doc_id):
                truth[element_id] = doc_id
    corr = attack.score(truth)
    print("\n[correlation attack on the update stream]")
    print(f"  batches observed: {attack.batches_observed}")
    print(f"  co-occurrence guess precision: {corr.precision:.3f} "
          "(8-document batches dilute her)")

    # -- 4: collusion ----------------------------------------------------------
    print("\n[collusion]")
    pl_id, records = next(
        (pl, rs) for pl, rs in view.posting_store.items() if rs
    )
    record = records[0]
    share0 = Share(x=view.x_coordinate, y=record.share_y)
    try:
        attempt_reconstruction([share0], k=2, field=deployment.field)
    except InsufficientSharesError:
        print("  1 server (k-1): reconstruction impossible — "
              "InsufficientSharesError")
    candidates = [0, 42, deployment.field.p - 1, random.Random(5).getrandbits(60)]
    assert consistent_with_every_secret(
        [share0], 2, deployment.field, candidates
    )
    print("  her share is consistent with EVERY candidate secret "
          "(perfect secrecy below k)")

    view1 = deployment.servers[1].compromise()
    record1 = next(
        rec
        for rec in view1.posting_store.get(pl_id, [])
        if rec.element_id == record.element_id
    )
    share1 = Share(x=view1.x_coordinate, y=record1.share_y)
    secret = attempt_reconstruction([share0, share1], 2, deployment.field)
    element = deployment.codec.unpack(secret)
    term = deployment.dictionary.term_of(element.term_id)
    print(f"  2 servers (k): decryption works — element is "
          f"(doc={element.doc_id}, term={term!r}, tf={element.tf:.3f})")

    # -- 5: proactive refresh ---------------------------------------------------
    print("\n[proactive refresh]")
    fresh = refresh_shares(
        [share0, share1, Share(x=deployment.scheme.x_of(2), y=0)],
        k=2,
        field=deployment.field,
        rng=random.Random(99),
    )
    stale_plus_fresh = [share0, fresh[1]]
    mixed = attempt_reconstruction(stale_plus_fresh, 2, deployment.field)
    print(f"  Alice's stolen share + a refreshed share reconstructs "
          f"{mixed} != {secret} — her loot expired.")
    assert mixed != secret


if __name__ == "__main__":
    main()
