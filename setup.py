"""Setuptools shim.

The execution environment is offline and its setuptools (65.5) lacks the
``wheel`` package that PEP 660 editable installs require, so ``pip install
-e .`` falls back to this legacy path (``setup.py develop``). All real
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
