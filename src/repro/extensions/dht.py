"""DHT-distributed posting lists (future work, §3 / §8).

"Zerber distributes complete instances of an encrypted index to multiple
servers for security reasons, while in DHTs each peer typically stores
only a fraction of the index. The extension of r-confidential indexing to
a DHT-based infrastructure is an interesting area for future research."

This module explores that direction: a consistent-hash ring places each
*merged posting list* on ``replicas`` peers. Every peer now stores only a
fraction of the index, so a single compromised peer sees only the lists it
hosts — :meth:`DHTPlacement.peer_confidentiality` computes the r-value of
that restricted view, which is never worse (and usually no better: r is a
per-list property) than the full-replica deployment, while churn costs
shrink from whole-index copies to per-list transfers
(:meth:`DHTPlacement.rebalance_cost` /
:meth:`DHTPlacement.rebalance_cost_leave`).

The sharded cluster engine rides directly on :class:`ConsistentHashRing`:
:class:`~repro.cluster.coordinator.ClusterCoordinator` asks
``owners(f"pl:{pl_id}", replicas=replication_factor)`` for each list's
replica pods, so ring-membership guarantees pinned in
``tests/test_dht_rebalancing.py`` (minimal key movement, duplicate-free
owner sets) are exactly the guarantees pod joins and retirements lean on.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Mapping, Sequence

from repro.core.merging.base import MergeResult
from repro.errors import ReproError


def _hash64(value: str) -> int:
    return int.from_bytes(
        hashlib.sha256(value.encode("utf-8")).digest()[:8], "big"
    )


class ConsistentHashRing:
    """Classic consistent hashing with virtual nodes."""

    def __init__(self, peers: Sequence[str], virtual_nodes: int = 64) -> None:
        """Args:
        peers: initial peer names (must be non-empty, unique).
        virtual_nodes: ring points per peer; more = smoother balance.
        """
        if not peers:
            raise ReproError("ring needs at least one peer")
        if len(set(peers)) != len(peers):
            raise ReproError("duplicate peer names")
        if virtual_nodes < 1:
            raise ReproError("need at least one virtual node per peer")
        self._virtual_nodes = virtual_nodes
        self._ring: list[tuple[int, str]] = []
        self._peers: set[str] = set()
        for peer in peers:
            self._insert_peer(peer)

    def _insert_peer(self, peer: str) -> None:
        self._peers.add(peer)
        for v in range(self._virtual_nodes):
            point = _hash64(f"{peer}#{v}")
            bisect.insort(self._ring, (point, peer))

    # -- membership ------------------------------------------------------------

    @property
    def peers(self) -> list[str]:
        return sorted(self._peers)

    def add_peer(self, peer: str) -> None:
        if peer in self._peers:
            raise ReproError(f"peer {peer!r} already on the ring")
        self._insert_peer(peer)

    def remove_peer(self, peer: str) -> None:
        if peer not in self._peers:
            raise ReproError(f"peer {peer!r} not on the ring")
        self._peers.discard(peer)
        self._ring = [(pt, p) for pt, p in self._ring if p != peer]
        if not self._ring:
            raise ReproError("cannot remove the last peer")

    # -- placement -----------------------------------------------------------------

    def owners(self, key: str, replicas: int = 1) -> list[str]:
        """The ``replicas`` distinct peers responsible for ``key``."""
        if replicas < 1:
            raise ReproError("need at least one replica")
        if replicas > len(self._peers):
            raise ReproError(
                f"asked for {replicas} replicas with {len(self._peers)} peers"
            )
        point = _hash64(key)
        start = bisect.bisect_right(self._ring, (point, "￿"))
        owners: list[str] = []
        i = start
        while len(owners) < replicas:
            _, peer = self._ring[i % len(self._ring)]
            if peer not in owners:
                owners.append(peer)
            i += 1
        return owners


class DHTPlacement:
    """Placement of a merge's posting lists onto a ring, with analysis."""

    def __init__(
        self,
        ring: ConsistentHashRing,
        merge: MergeResult,
        replicas: int = 2,
    ) -> None:
        self._ring = ring
        self._merge = merge
        self._replicas = replicas
        self._placement: dict[int, list[str]] = {
            pl_id: ring.owners(f"pl:{pl_id}", replicas)
            for pl_id in range(merge.num_lists)
        }

    # -- views ------------------------------------------------------------------

    def peers_for(self, pl_id: int) -> list[str]:
        if pl_id not in self._placement:
            raise ReproError(f"unknown posting list {pl_id}")
        return list(self._placement[pl_id])

    def lists_on(self, peer: str) -> list[int]:
        """The fraction of the index one peer hosts."""
        return sorted(
            pl_id
            for pl_id, owners in self._placement.items()
            if peer in owners
        )

    def load_distribution(self) -> dict[str, int]:
        """peer -> hosted list count (balance diagnostics)."""
        return {peer: len(self.lists_on(peer)) for peer in self._ring.peers}

    # -- confidentiality accounting -------------------------------------------------

    def peer_confidentiality(
        self, peer: str, term_probabilities: Mapping[str, float]
    ) -> float:
        """The r-value of one compromised peer's *restricted* view.

        r is governed by the weakest merged list the peer can see —
        formula (7) restricted to its hosted lists. Hosting fewer lists
        can only drop weak lists from the min, so per-peer r <= fleet r.
        """
        hosted = self.lists_on(peer)
        if not hosted:
            return 1.0  # sees nothing beyond background knowledge
        min_mass = min(
            sum(term_probabilities[t] for t in self._merge.lists[pl_id])
            for pl_id in hosted
        )
        return 1.0 / min_mass

    def rebalance_cost(self, new_peer: str) -> int:
        """Posting lists that move when ``new_peer`` joins.

        The DHT's operational win over full replication: joins shuffle
        only the lists whose ownership changed, not the whole index.
        """
        before = {
            pl_id: tuple(owners) for pl_id, owners in self._placement.items()
        }
        self._ring.add_peer(new_peer)
        return self._replace_placement(before)

    def rebalance_cost_leave(self, peer: str) -> int:
        """Posting lists that move when ``peer`` leaves the ring.

        Symmetric to :meth:`rebalance_cost`: a departure re-homes only
        the lists the peer owned (each surviving replica set gains one
        successor), never the whole index.
        """
        before = {
            pl_id: tuple(owners) for pl_id, owners in self._placement.items()
        }
        self._ring.remove_peer(peer)
        return self._replace_placement(before)

    def _replace_placement(self, before: Mapping[int, tuple[str, ...]]) -> int:
        moved = 0
        for pl_id in before:
            after = self._ring.owners(f"pl:{pl_id}", self._replicas)
            if tuple(after) != before[pl_id]:
                moved += 1
            self._placement[pl_id] = after
        return moved
