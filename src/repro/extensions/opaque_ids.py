"""Opaque user IDs (future work, §7.1).

"If Alice takes over a server, she can learn who sends each new
query/update to that server; to prevent this, one would need to extend
Zerber to include only opaque user IDs in requests and in the user-group
mapping."

:class:`OpaqueIdMapper` derives a stable pseudonym per principal with a
keyed HMAC held by the enterprise identity provider (not by the index
servers), and :class:`PseudonymizedGroupDirectory` is a drop-in
:class:`~repro.server.groups.GroupDirectory` whose tables only ever contain
pseudonyms — a compromised server learns *that* some principal queried,
but not *who*.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets

from repro.errors import AuthError
from repro.server.groups import GroupDirectory


class OpaqueIdMapper:
    """Keyed pseudonymization of principal names.

    The mapping key lives with the identity provider; index servers only
    ever see outputs. Pseudonyms are stable (same user -> same opaque ID)
    so group tables and query ACLs keep working unchanged.
    """

    def __init__(self, key: bytes | None = None) -> None:
        """Args:
        key: the HMAC key; a fresh random key is drawn when omitted
            (tests inject a fixed key for determinism).
        """
        self._key = key if key is not None else secrets.token_bytes(32)
        if len(self._key) < 16:
            raise AuthError("pseudonymization key too short")

    def opaque(self, user_id: str) -> str:
        """The stable pseudonym of ``user_id``."""
        if not user_id:
            raise AuthError("empty user id")
        digest = hmac.new(
            self._key, user_id.encode("utf-8"), hashlib.sha256
        ).hexdigest()
        return f"opaque:{digest[:24]}"

    def is_opaque(self, value: str) -> bool:
        return value.startswith("opaque:")


class PseudonymizedGroupDirectory(GroupDirectory):
    """A group directory whose stored principals are pseudonyms only.

    All mutation and lookup methods accept *real* user IDs and translate
    them at the boundary, so client code is unchanged, but
    :meth:`snapshot` (what a compromised server dumps) contains nothing
    linkable without the mapper's key.
    """

    def __init__(self, mapper: OpaqueIdMapper) -> None:
        super().__init__()
        self._mapper = mapper

    def _as_opaque(self, user_id: str | None) -> str | None:
        """Map a real ID to its pseudonym; pass pseudonyms through."""
        if user_id is None or self._mapper.is_opaque(user_id):
            return user_id
        return self._mapper.opaque(user_id)

    def create_group(self, group_id: int, coordinator: str) -> None:
        super().create_group(group_id, self._as_opaque(coordinator))

    def add_member(
        self, group_id: int, user_id: str, actor: str | None = None
    ) -> None:
        super().add_member(
            group_id, self._as_opaque(user_id), actor=self._as_opaque(actor)
        )

    def remove_member(
        self, group_id: int, user_id: str, actor: str | None = None
    ) -> None:
        super().remove_member(
            group_id, self._as_opaque(user_id), actor=self._as_opaque(actor)
        )

    def groups_of(self, user_id: str) -> frozenset[int]:
        # Accept either form so index servers (which authenticate real
        # principals) can resolve without holding the key themselves —
        # they call through this directory, which embeds the mapper.
        return super().groups_of(self._as_opaque(user_id))

    def is_member(self, user_id: str, group_id: int) -> bool:
        return super().is_member(self._as_opaque(user_id), group_id)
