"""Server-side top-K with bucketized scores (future work, §5.4.2 / §8).

"Servers can process queries much faster if they can quickly determine
which search results may be in the top-K ... However, document ranking is
typically based on term frequencies, and our servers should not be able to
see these frequencies. ... Confidentiality-preserving server-side top-K
ranking is an interesting topic for future work."

The design implemented here is the natural first step the paper gestures
at: the owner attaches a *coarse relevance bucket* (tf quantized to ``b``
levels) in plaintext next to each share. A server can then serve elements
bucket-by-bucket, best first, and stop after a client-requested element
budget — cutting response bandwidth for long lists — while the adversary
learns only ``log2(b)`` bits about each element's tf instead of the full
frequency. :func:`bucket_leakage_bits` makes that trade explicit so
deployments can choose ``b`` consciously.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import ReproError


@dataclass(frozen=True, slots=True)
class BucketedRecord:
    """One share annotated with its public coarse-relevance bucket.

    Attributes:
        element_id: global element ID (join key across servers).
        group_id: readable group.
        share_y: the Shamir share.
        bucket: coarse relevance in ``[0, num_buckets)``; higher = more
            relevant. Public by design — this is the leaked quantity.
    """

    element_id: int
    group_id: int
    share_y: int
    bucket: int


def bucket_of(tf: float, num_buckets: int) -> int:
    """Quantize a tf in (0, 1] to a coarse bucket.

    Buckets are log-spaced: term frequencies are heavily skewed toward
    small values, so linear buckets would collapse almost everything into
    bucket 0 and destroy the top-K usefulness.
    """
    if not 0.0 < tf <= 1.0:
        raise ReproError(f"tf {tf} outside (0, 1]")
    if num_buckets < 2:
        raise ReproError("need at least 2 buckets")
    # Map tf in (0,1] via log scale onto [0, num_buckets).
    floor_tf = 1e-4
    scaled = (math.log(max(tf, floor_tf)) - math.log(floor_tf)) / -math.log(
        floor_tf
    )
    return min(num_buckets - 1, int(scaled * num_buckets))


class BucketedTopKStore:
    """A per-server posting store that can answer bucket-pruned lookups."""

    def __init__(self, num_buckets: int = 8) -> None:
        if num_buckets < 2:
            raise ReproError("need at least 2 buckets")
        self.num_buckets = num_buckets
        self._store: dict[int, dict[int, BucketedRecord]] = defaultdict(dict)

    def insert(self, pl_id: int, record: BucketedRecord) -> None:
        if not 0 <= record.bucket < self.num_buckets:
            raise ReproError(
                f"bucket {record.bucket} outside [0, {self.num_buckets})"
            )
        plist = self._store[pl_id]
        if record.element_id in plist:
            raise ReproError(
                f"element {record.element_id} already in list {pl_id}"
            )
        plist[record.element_id] = record

    def lookup_pruned(
        self,
        pl_ids: Sequence[int],
        user_groups: frozenset[int],
        max_elements: int,
    ) -> list[tuple[int, BucketedRecord]]:
        """Best-bucket-first lookup stopping at ``max_elements``.

        Returns (pl_id, record) pairs. Serving whole buckets (never
        splitting one) keeps the cut deterministic across servers, so the
        client still receives matching share sets for every element that
        any server returned.
        """
        if max_elements < 1:
            raise ReproError("max_elements must be >= 1")
        accessible: list[tuple[int, BucketedRecord]] = [
            (pl_id, record)
            for pl_id in pl_ids
            for record in self._store.get(pl_id, {}).values()
            if record.group_id in user_groups
        ]
        by_bucket: dict[int, list[tuple[int, BucketedRecord]]] = defaultdict(list)
        for item in accessible:
            by_bucket[item[1].bucket].append(item)
        out: list[tuple[int, BucketedRecord]] = []
        for bucket in sorted(by_bucket, reverse=True):
            batch = sorted(
                by_bucket[bucket], key=lambda it: (it[0], it[1].element_id)
            )
            out.extend(batch)
            if len(out) >= max_elements:
                break
        return out

    def bucket_histogram(self, pl_id: int) -> dict[int, int]:
        """What a compromised server learns: bucket -> element count."""
        hist: dict[int, int] = defaultdict(int)
        for record in self._store.get(pl_id, {}).values():
            hist[record.bucket] += 1
        return dict(hist)


def bucket_leakage_bits(
    bucket_histogram: Mapping[int, int]
) -> float:
    """Information (bits) the bucket annotation leaks per element.

    The adversary learns each element's bucket; the per-element leakage is
    the entropy of the bucket distribution, at most ``log2(num_buckets)``.
    Plain Zerber leaks 0 bits here; a full plaintext tf would leak the
    entropy of the tf distribution (≈ 12 bits at our packing resolution).
    """
    total = sum(bucket_histogram.values())
    if total <= 0:
        raise ReproError("empty histogram")
    entropy = 0.0
    for count in bucket_histogram.values():
        if count > 0:
            p = count / total
            entropy -= p * math.log2(p)
    return entropy
