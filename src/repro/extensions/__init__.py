"""Implementations of the paper's future-work directions (§3, §7.1, §8).

- :mod:`repro.extensions.topk_server` — "A challenging extension is to
  support top-K processing on the server side, while maintaining the
  confidentiality properties": coarse relevance buckets stored in plain
  next to each share, with the induced leakage quantified rather than
  hidden;
- :mod:`repro.extensions.dht` — "The extension of r-confidential indexing
  to a DHT-based infrastructure is an interesting area for future
  research": a consistent-hash ring spreading merged posting lists over
  peers, with per-peer confidentiality accounting;
- :mod:`repro.extensions.opaque_ids` — "to prevent this, one would need to
  extend Zerber to include only opaque user IDs in requests and in the
  user-group mapping": HMAC pseudonymization of principals;
- :mod:`repro.extensions.mixnet` — "we recommend the use of MIX networks
  and other standard techniques from network security that foil traffic
  analysis attacks": a threshold-batch mix relay with shuffling and
  size padding.
"""

from repro.extensions.topk_server import BucketedTopKStore, bucket_leakage_bits
from repro.extensions.dht import ConsistentHashRing, DHTPlacement
from repro.extensions.mixnet import MixMessage, MixRelay
from repro.extensions.opaque_ids import OpaqueIdMapper, PseudonymizedGroupDirectory

__all__ = [
    "BucketedTopKStore",
    "bucket_leakage_bits",
    "ConsistentHashRing",
    "DHTPlacement",
    "MixMessage",
    "MixRelay",
    "OpaqueIdMapper",
    "PseudonymizedGroupDirectory",
]
