"""A MIX-network relay for update/query anonymity (paper §4, §5.4.1).

"If no one should be able to tell that a particular user sent a request
to an index server, we recommend the use of MIX networks" and "Bob can
also pool his updates with other people's, or send his through a MIX
network, to give himself anonymity and improve index freshness."

This is a single-hop mix in the classic Chaum mold, adapted to Zerber's
trust model: the mix is *honest-but-curious-tolerant* because everything
passing through it is already secret-shared — the mix only ever handles
opaque payloads. What the mix adds is **unlinkability**: it collects
messages from many senders, waits for a threshold batch, shuffles, and
forwards them under its own sender identity with padded, uniform sizes.

A compromised index server downstream of the mix sees batches arriving
from "the mix" and cannot attribute individual updates to users — which
also upgrades the §5.4.1 batching defence from per-owner to cross-owner
mixing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import TransportError


@dataclass(frozen=True)
class MixMessage:
    """One message queued at the mix.

    Attributes:
        destination: final endpoint (an index server).
        kind: message kind forwarded verbatim ("insert" / "delete" / ...).
        payload: the opaque payload (already secret-shared content).
        payload_bytes: wire size for padding and accounting.
    """

    destination: str
    kind: str
    payload: Any
    payload_bytes: int


class MixRelay:
    """Threshold-batch mix: collect, shuffle, pad, forward.

    Args:
        forward: transport function
            ``forward(destination, kind, payload, padded_bytes)``.
        batch_threshold: messages required before a flush fires.
        rng: shuffle randomness (seeded in tests).
        pad_to_multiple: every forwarded message's accounted size is
            rounded up to this multiple so length fingerprinting across
            senders fails.
    """

    def __init__(
        self,
        forward: Callable[[str, str, Any, int], Any],
        batch_threshold: int = 8,
        rng: random.Random | None = None,
        pad_to_multiple: int = 1024,
    ) -> None:
        if batch_threshold < 1:
            raise TransportError("batch threshold must be >= 1")
        if pad_to_multiple < 1:
            raise TransportError("padding multiple must be >= 1")
        self._forward = forward
        self._threshold = batch_threshold
        self._rng = rng or random.Random()
        self._pad = pad_to_multiple
        self._pending: list[MixMessage] = []
        #: (sender count, message count) per flushed batch — the mix's
        #: own audit trail; note it never records *which* sender sent what.
        self.flush_history: list[tuple[int, int]] = []
        self._pending_senders: set[str] = set()

    # -- ingress ------------------------------------------------------------

    def submit(self, sender: str, message: MixMessage) -> bool:
        """Queue a message; returns True if this submission flushed a batch.

        The sender identity is used ONLY for the threshold heuristic
        (a batch from a single sender mixes nothing) and is discarded at
        flush time.
        """
        if message.payload_bytes < 0:
            raise TransportError("negative payload size")
        self._pending.append(message)
        self._pending_senders.add(sender)
        if (
            len(self._pending) >= self._threshold
            and len(self._pending_senders) >= min(2, self._threshold)
        ):
            self.flush()
            return True
        return False

    @property
    def pending_messages(self) -> int:
        return len(self._pending)

    # -- egress -------------------------------------------------------------

    def padded_size(self, payload_bytes: int) -> int:
        """Size after padding to the configured multiple."""
        blocks = (payload_bytes + self._pad - 1) // self._pad
        return max(1, blocks) * self._pad

    def flush(self) -> int:
        """Shuffle and forward everything pending; returns messages sent."""
        if not self._pending:
            return 0
        batch = self._pending
        senders = len(self._pending_senders)
        self._pending = []
        self._pending_senders = set()
        self._rng.shuffle(batch)
        for message in batch:
            self._forward(
                message.destination,
                message.kind,
                message.payload,
                self.padded_size(message.payload_bytes),
            )
        self.flush_history.append((senders, len(batch)))
        return len(batch)
