"""The Zerber deployment facade — the library's top-level public API (§5).

A :class:`ZerberDeployment` wires together everything a working Zerber
installation needs:

- a :class:`~repro.secretsharing.shamir.ShamirScheme` with the public
  (p, x_i) parameters;
- n :class:`~repro.server.index_server.IndexServer` boxes, each holding one
  share of every element ("Each index server should be owned and managed by
  a different part of the enterprise");
- the enterprise :class:`~repro.server.auth.AuthService` and the replicated
  :class:`~repro.server.groups.GroupDirectory`;
- the public :class:`~repro.core.mapping_table.MappingTable` and
  :class:`~repro.core.dictionary.TermDictionary`;
- an optional :class:`~repro.server.transport.SimulatedNetwork` that
  accounts every byte for the §7.3 experiments;
- a :class:`~repro.client.snippets.SnippetService` registry of hosting peers.

Typical use (see ``examples/quickstart.py``)::

    stats = odp_like_statistics(scale=0.01)
    deployment = ZerberDeployment.bootstrap(
        stats.term_probabilities(), k=2, n=3, num_lists=256)
    deployment.create_group(1, coordinator="alice")
    owner = deployment.owner("alice")
    owner.share_document(doc)
    owner.flush_updates()
    results = deployment.searcher("alice").search(["budget"], top_k=10)
"""

from __future__ import annotations

import random
from typing import Mapping, Sequence

from repro.client.batching import BatchPolicy
from repro.client.owner import DocumentOwner
from repro.client.searcher import SearchClient, SearchResult
from repro.client.snippets import SnippetService
from repro.core.dictionary import TermDictionary
from repro.core.mapping_table import MappingTable
from repro.core.merging.base import MergingHeuristic
from repro.core.merging.bfm import BreadthFirstMerging, bfm_r_for_list_count
from repro.core.merging.dfm import DepthFirstMerging
from repro.core.merging.udm import UniformDistributionMerging
from repro.core.posting import PackingSpec, PostingElementCodec
from repro.errors import ReproError
from repro.protocol.service import (
    IndexServerService,
    SnippetHostService,
    fleet_resolver,
)
from repro.protocol.transport import (
    InProcessTransport,
    SocketServer,
    SocketTransport,
    Transport,
)
from repro.secretsharing.field import DEFAULT_PRIME, PrimeField
from repro.secretsharing.shamir import ShamirScheme
from repro.server.auth import AuthService, AuthToken
from repro.server.groups import GroupDirectory
from repro.server.index_server import IndexServer
from repro.server.transport import LinkSpec, SimulatedNetwork, WLAN_55_MBPS

#: Re-export under the name the core package advertises.
ZerberSearchResult = SearchResult


def build_mapping_table(
    term_probabilities: Mapping[str, float],
    heuristic: MergingHeuristic | str = "dfm",
    num_lists: int | None = None,
    target_r: float | None = None,
    rare_cutoff: float = 0.0,
    hash_salt: str = "zerber",
):
    """Run a §6 merging heuristic and build the public mapping table.

    Shared by :meth:`ZerberDeployment.bootstrap` and the cluster
    deployment's bootstrap — the merge is deployment-shape-agnostic.

    Args:
        term_probabilities: formula-(2) probabilities from training data.
        heuristic: a configured heuristic instance, or "dfm" / "bfm" /
            "udm" to be configured from ``num_lists`` / ``target_r``.
        num_lists: M for DFM/UDM (and BFM calibration).
        target_r: r for DFM/BFM; derived by BFM-calibration when omitted
            for DFM (the §7.5 procedure).
        rare_cutoff: §6.4 cutoff below which terms are hash-routed.
        hash_salt: public salt of the rare-term hash function.

    Returns:
        ``(mapping_table, merge_result)``.
    """
    if isinstance(heuristic, str):
        name = heuristic.lower()
        if name == "bfm":
            if target_r is None:
                if num_lists is None:
                    raise ReproError(
                        "BFM needs target_r or num_lists to calibrate"
                    )
                target_r = bfm_r_for_list_count(term_probabilities, num_lists)
            heuristic = BreadthFirstMerging(target_r)
        elif name == "dfm":
            if num_lists is None:
                raise ReproError("DFM needs num_lists")
            if target_r is None:
                target_r = bfm_r_for_list_count(term_probabilities, num_lists)
            heuristic = DepthFirstMerging(num_lists, target_r)
        elif name == "udm":
            if num_lists is None:
                raise ReproError("UDM needs num_lists")
            heuristic = UniformDistributionMerging(num_lists)
        else:
            raise ReproError(f"unknown heuristic {heuristic!r}")
    merge = heuristic.merge(term_probabilities)
    table = MappingTable.from_merge(
        merge,
        term_probabilities=term_probabilities,
        rare_cutoff=rare_cutoff,
        hash_salt=hash_salt,
    )
    return table, merge


class ZerberDeployment:
    """A complete, running Zerber installation.

    A deployment is also a context manager: ``close()`` (or leaving a
    ``with`` block) releases the transport — which matters once
    ``transport="socket"`` puts real listener threads and TCP
    connections behind the API.
    """

    def __init__(
        self,
        mapping_table: MappingTable,
        k: int = 2,
        n: int = 3,
        field: PrimeField | None = None,
        packing: PackingSpec | None = None,
        use_network: bool = True,
        batch_policy: BatchPolicy | None = None,
        seed: int = 0x2E4B,
        transport: str = "in-process",
        socket_host: str = "127.0.0.1",
        socket_port: int = 0,
    ) -> None:
        """Args:
        mapping_table: the public term -> posting-list table (build one
            with :meth:`bootstrap` if starting from corpus statistics).
        k: Shamir reconstruction threshold (paper default 2).
        n: number of index servers (paper default 3).
        field: the Z_p field; defaults to the 64-bit+ prime.
        packing: posting-element bit layout.
        use_network: charge client/server traffic against a
            :class:`SimulatedNetwork` (55 Mb/s client links, 100 Mb/s
            server links per §7.3) and account every byte. Only affects
            the in-process transport; the socket backend moves real
            bytes.
        batch_policy: default owner batching policy.
        seed: master seed for all deployment randomness.
        transport: ``"in-process"`` (default) dispatches protocol
            messages to the servers in this process; ``"socket"``
            serves them over loopback TCP (a :class:`SocketServer` is
            embedded and every client speaks real frames through a
            :class:`SocketTransport`). Results are byte-identical
            either way — CI gates it.
        socket_host / socket_port: the ``"socket"`` listener address
            (port 0 picks a free port; see ``self.transport.address``).
        """
        self._rng = random.Random(seed)
        self.field = field or PrimeField(DEFAULT_PRIME)
        self.scheme = ShamirScheme(k=k, n=n, field=self.field, rng=self._rng)
        self.mapping_table = mapping_table
        self.dictionary = TermDictionary()
        self.packing = packing or PackingSpec()
        self.codec = PostingElementCodec(self.packing)
        self.auth = AuthService()
        self.groups = GroupDirectory()
        self._batch_policy = batch_policy or BatchPolicy()
        share_bytes = (self.field.p.bit_length() + 7) // 8
        self._share_bytes = share_bytes
        self.servers: list[IndexServer] = [
            IndexServer(
                server_id=f"index-server-{i}",
                x_coordinate=self.scheme.x_of(i),
                auth=self.auth,
                groups=self.groups,
                share_bytes=share_bytes,
            )
            for i in range(n)
        ]
        self.network: SimulatedNetwork | None = None
        if use_network:
            self.network = SimulatedNetwork(
                default_link=LinkSpec(bandwidth_bps=WLAN_55_MBPS)
            )
        # The registry resolves against the *live* server list as a
        # fallback, so operators who splice a replacement box into
        # ``deployment.servers`` (see examples/operations_tour.py) stay
        # addressable without re-wiring — the old direct-dispatch
        # semantics, kept at the transport layer.
        self.registry = InProcessTransport(
            network=self.network,
            share_bytes=share_bytes,
            resolver=fleet_resolver(self.servers),
        )
        for server in self.servers:
            self.registry.register(
                server.server_id, IndexServerService.for_server(server)
            )
        self._socket_server: SocketServer | None = None
        self.transport: Transport = self.registry
        if transport == "socket":
            self._socket_server = SocketServer(
                self.registry, host=socket_host, port=socket_port
            )
            self.transport = SocketTransport(
                self._socket_server.address, share_bytes=share_bytes
            )
        elif transport != "in-process":
            raise ReproError(
                f"unknown transport {transport!r}; "
                "expected 'in-process' or 'socket'"
            )
        self._closed = False
        self.snippets = SnippetService(self.groups)
        self._tokens: dict[str, AuthToken] = {}
        self._owners: dict[str, DocumentOwner] = {}

    # -- construction from corpus statistics --------------------------------------

    @classmethod
    def bootstrap(
        cls,
        term_probabilities: Mapping[str, float],
        heuristic: MergingHeuristic | str = "dfm",
        num_lists: int | None = None,
        target_r: float | None = None,
        rare_cutoff: float = 0.0,
        **kwargs,
    ) -> "ZerberDeployment":
        """Build a deployment by running a §6 merging heuristic.

        Args:
            term_probabilities: formula-(2) probabilities learned from a
                training sub-collection (§7.5 uses the first 30%).
            heuristic: a configured heuristic instance, or one of "dfm" /
                "bfm" / "udm" to be configured from ``num_lists`` /
                ``target_r``.
            num_lists: M for DFM/UDM (and BFM calibration).
            target_r: r for DFM/BFM; when omitted for DFM it is derived by
                BFM-calibration at ``num_lists`` (the §7.5 procedure).
            rare_cutoff: §6.4 probability cutoff below which terms stay out
                of the public table and are hash-routed.
            **kwargs: forwarded to the constructor (k, n, seed, ...).
        """
        table, merge = build_mapping_table(
            term_probabilities,
            heuristic=heuristic,
            num_lists=num_lists,
            target_r=target_r,
            rare_cutoff=rare_cutoff,
        )
        deployment = cls(mapping_table=table, **kwargs)
        deployment.merge_result = merge
        return deployment

    # -- principals ---------------------------------------------------------------

    def enroll_user(self, user_id: str) -> AuthToken:
        """Provision a user with the enterprise and cache their ticket."""
        if user_id in self._tokens:
            return self._tokens[user_id]
        credential = self.auth.register_user(user_id)
        token = self.auth.issue_token(user_id, credential)
        self._tokens[user_id] = token
        return token

    def create_group(self, group_id: int, coordinator: str) -> None:
        """Create a collaboration group; enrolls the coordinator if needed."""
        self.enroll_user(coordinator)
        self.groups.create_group(group_id, coordinator)

    def add_member(
        self, group_id: int, user_id: str, actor: str | None = None
    ) -> None:
        self.enroll_user(user_id)
        self.groups.add_member(group_id, user_id, actor=actor)

    def remove_member(
        self, group_id: int, user_id: str, actor: str | None = None
    ) -> None:
        self.groups.remove_member(group_id, user_id, actor=actor)

    # -- clients ---------------------------------------------------------------------

    def owner(
        self, owner_id: str, batch_policy: BatchPolicy | None = None
    ) -> DocumentOwner:
        """The (cached) owner client for a principal."""
        if owner_id not in self._owners:
            token = self.enroll_user(owner_id)
            self._owners[owner_id] = DocumentOwner(
                owner_id=owner_id,
                token=token,
                scheme=self.scheme,
                mapping_table=self.mapping_table,
                dictionary=self.dictionary,
                servers=self.servers,
                codec=self.codec,
                network=self.network,
                batch_policy=batch_policy or self._batch_policy,
                rng=random.Random(self._rng.getrandbits(64)),
                transport=self.transport,
            )
        return self._owners[owner_id]

    def searcher(self, user_id: str, **kwargs) -> SearchClient:
        """A fresh search client for a principal."""
        token = self.enroll_user(user_id)
        kwargs.setdefault("transport", self.transport)
        return SearchClient(
            user_id=user_id,
            token=token,
            scheme=self.scheme,
            mapping_table=self.mapping_table,
            dictionary=self.dictionary,
            servers=self.servers,
            codec=self.codec,
            network=self.network,
            snippet_service=self.snippets,
            **kwargs,
        )

    # -- convenience -------------------------------------------------------------------

    def share_document(self, owner_id: str, document) -> int:
        """Share one document and host it for snippet requests."""
        owner = self.owner(owner_id)
        count = owner.share_document(document)
        self.snippets.host_document(document)
        if not self.registry.has_endpoint(document.host):
            self.registry.register(
                document.host, SnippetHostService(self.snippets)
            )
        return count

    def search(
        self, user_id: str, terms: Sequence[str], top_k: int = 10
    ) -> list[SearchResult]:
        """One-shot search for a principal."""
        return self.searcher(user_id).search(terms, top_k=top_k)

    def flush_all(self) -> int:
        """Flush every owner's pending batches (test/bench convenience)."""
        return sum(owner.flush_updates() for owner in self._owners.values())

    # -- fleet extension (§5.1) -----------------------------------------------------------

    def add_server(self) -> IndexServer:
        """Dynamically add an (n+1)-th index server.

        Mints a fresh x-coordinate on the existing polynomials
        (:meth:`ShamirScheme.extend`), stands the server up, and has every
        known owner provision it with shares of their existing elements —
        no re-encryption, no new element IDs, queries immediately may use
        the new box as one of their k sources.

        Returns:
            The new, fully provisioned server.
        """
        new_x = self.scheme.extend(1)[0]
        index = len(self.servers)
        share_bytes = (self.field.p.bit_length() + 7) // 8
        server = IndexServer(
            server_id=f"index-server-{index}",
            x_coordinate=new_x,
            auth=self.auth,
            groups=self.groups,
            share_bytes=share_bytes,
        )
        self.servers.append(server)
        self.registry.register(
            server.server_id, IndexServerService.for_server(server)
        )
        for owner in self._owners.values():
            owner.provision_new_server(index)
        return server

    # -- lifecycle ------------------------------------------------------------------------

    def close(self) -> None:
        """Shut the deployment down (idempotent).

        Closes the client transport and the embedded socket server (when
        ``transport="socket"``); the in-process registry holds no OS
        resources but is closed for symmetry.
        """
        if self._closed:
            return
        self._closed = True
        if self.transport is not self.registry:
            self.transport.close()
        if self._socket_server is not None:
            self._socket_server.close()
        self.registry.close()

    def __enter__(self) -> "ZerberDeployment":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- fleet statistics ---------------------------------------------------------------

    def total_elements(self) -> int:
        """Posting elements currently stored, summed over servers."""
        return sum(server.num_elements for server in self.servers)

    def storage_bytes(self) -> int:
        """Total wire-encoded storage across the n replicas (§7.2's 1.5n)."""
        return sum(server.storage_bytes() for server in self.servers)
