"""The r-confidentiality measure (paper §4 Definition 1; §5.2 formulas 2–5; §6.3 formula 7).

Definition 1: an indexing scheme is r-confidential iff

    P(X | B, I) / P(X | B)  <=  r

for every fact X of the form "term t is / is not in document d", where B is
the adversary's background knowledge and I the index she can inspect.

For Zerber's merged posting lists the relevant computations are:

- formula (2): a term's occurrence probability ``p_t`` is its normalized
  document frequency;
- formula (3): given an element of a merged list with member set S, the
  posterior that it belongs to term ``t_u`` is ``p_u / sum_{i in S} p_i``;
- formula (4)/(5): the list is r-confidential iff ``sum_{i in S} p_i >= 1/r``;
- formula (7): the r delivered by a whole index is governed by its *weakest*
  list: ``1/r = min_L sum_{u in L} p_u``.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

from repro.errors import ConfidentialityError


def _validate_probabilities(probabilities: Iterable[float]) -> list[float]:
    probs = list(probabilities)
    if not probs:
        raise ConfidentialityError("empty term set")
    if any(p <= 0.0 or p > 1.0 for p in probs):
        raise ConfidentialityError(
            "term probabilities must lie in (0, 1]"
        )
    return probs


def merged_term_probability(
    term_probability: float, member_probabilities: Iterable[float]
) -> float:
    """Formula (3): posterior that a merged-list element is a given term.

    Args:
        term_probability: ``p_u`` of the candidate term (must be a member).
        member_probabilities: ``p_i`` for every term merged into the list.

    Returns:
        ``p_u / sum_i p_i``.
    """
    members = _validate_probabilities(member_probabilities)
    if term_probability <= 0.0:
        raise ConfidentialityError("candidate probability must be positive")
    total = sum(members)
    if term_probability > total + 1e-12:
        raise ConfidentialityError(
            "candidate term is not among the merged members"
        )
    return term_probability / total


def amplification(
    term_probability: float, member_probabilities: Iterable[float]
) -> float:
    """The probability amplification ``P(X|B,I) / P(X|B)`` for one term.

    By formulas (3)/(4) this is ``1 / sum_i p_i`` regardless of which member
    term is asked about — merging amplifies every member's posterior by the
    same factor.
    """
    posterior = merged_term_probability(
        term_probability, member_probabilities
    )
    return posterior / term_probability


def absence_amplification(
    term_probability: float, member_probabilities: Iterable[float]
) -> float:
    """Amplification for the *absence* fact "t is not in d" (§5.2).

    Given an element of the merged list, the probability it is **not** the
    candidate term is ``1 - p_u / sum p_i``, versus the prior ``1 - p_u``.
    The paper notes this ratio is below 1 ("smaller than the original
    probability"), i.e. absence claims are never amplified by merging.
    """
    members = _validate_probabilities(member_probabilities)
    if not 0.0 < term_probability < 1.0:
        raise ConfidentialityError(
            "absence amplification needs p_u strictly inside (0, 1)"
        )
    posterior_absent = 1.0 - term_probability / sum(members)
    return posterior_absent / (1.0 - term_probability)


def is_r_confidential(
    member_probabilities: Iterable[float], r: float
) -> bool:
    """Formula (5): the merged list satisfies r iff ``sum_i p_i >= 1/r``."""
    if r < 1.0:
        raise ConfidentialityError(
            f"r must be >= 1 (r=1 is maximal protection), got {r}"
        )
    members = _validate_probabilities(member_probabilities)
    return sum(members) >= (1.0 / r) - 1e-15


def required_probability_mass(r: float) -> float:
    """The minimum aggregate probability ``1/r`` a merged list must carry."""
    if r < 1.0:
        raise ConfidentialityError(f"r must be >= 1, got {r}")
    return 1.0 / r


def list_confidentiality(member_probabilities: Iterable[float]) -> float:
    """The r-value delivered by a single merged list: ``1 / sum_i p_i``.

    A list whose members' probabilities sum to >= 1 delivers r <= 1, i.e.
    the index adds *nothing* beyond background knowledge for those terms.
    """
    members = _validate_probabilities(member_probabilities)
    return 1.0 / sum(members)


def resulting_r(
    lists: Sequence[Sequence[str]],
    term_probabilities: Mapping[str, float],
) -> float:
    """Formula (7): the index-wide r, governed by the weakest merged list.

    ``1/r = min over lists L of sum_{u in L} p_u``.

    Args:
        lists: the merged posting lists (term partitions).
        term_probabilities: formula-(2) probabilities for every term.

    Returns:
        The resulting confidentiality value r (>= 0; smaller is better,
        r = 1 is maximal protection).
    """
    if not lists:
        raise ConfidentialityError("an index needs at least one posting list")
    min_mass = math.inf
    for members in lists:
        if not members:
            raise ConfidentialityError("empty merged posting list")
        mass = 0.0
        for term in members:
            p = term_probabilities.get(term)
            if p is None:
                raise ConfidentialityError(f"no probability for term {term!r}")
            if p <= 0.0:
                raise ConfidentialityError(
                    f"non-positive probability for term {term!r}"
                )
            mass += p
        min_mass = min(min_mass, mass)
    return 1.0 / min_mass


def uniform_distribution_r(num_lists: int) -> float:
    """§6's closed form: under a *uniform* term distribution, r equals the
    number of merged posting lists M.

    "If all terms are merged into one posting list, then r = 1 ... With two
    posting lists, r = 2 and we have half as much confidentiality."
    """
    if num_lists < 1:
        raise ConfidentialityError("need at least one posting list")
    return float(num_lists)
