"""The public term dictionary: term ↔ term_id.

Posting elements carry "an additional encoding ... stored with each element
to identify the term for that element" (§5.2). That encoding — the term ID —
must be assigned consistently across all document owners so that a querying
user can recognize her terms after decryption. Like the mapping table and
the Shamir public parameters, the dictionary is public shared
infrastructure: it reveals which terms exist in the *language*, not which
appear in any document (rare terms can be pre-registered wholesale, and the
§6.4 hash path never consults it for list routing).
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import PackingError


class TermDictionary:
    """Monotone public registry assigning dense integer IDs to terms."""

    def __init__(self, max_term_id: int = (1 << 22) - 1) -> None:
        """Args:
        max_term_id: capacity bound, defaulting to the 22-bit term_id
            field of the standard :class:`~repro.core.posting.PackingSpec`.
        """
        if max_term_id < 0:
            raise PackingError("max_term_id must be non-negative")
        self._max_term_id = max_term_id
        self._id_of: dict[str, int] = {}
        self._term_of: list[str] = []

    def __len__(self) -> int:
        return len(self._id_of)

    def __contains__(self, term: str) -> bool:
        return term in self._id_of

    def get_or_assign(self, term: str) -> int:
        """The term's ID, minting the next dense ID on first sight.

        Raises:
            PackingError: dictionary capacity (the term_id field) exhausted.
        """
        existing = self._id_of.get(term)
        if existing is not None:
            return existing
        new_id = len(self._term_of)
        if new_id > self._max_term_id:
            raise PackingError(
                f"term dictionary full ({self._max_term_id + 1} terms)"
            )
        self._id_of[term] = new_id
        self._term_of.append(term)
        return new_id

    def assign_all(self, terms: Iterable[str]) -> dict[str, int]:
        """Bulk registration (deployment bootstrap); returns term -> id."""
        return {term: self.get_or_assign(term) for term in terms}

    def id_of(self, term: str) -> int | None:
        """Lookup without assignment (None if never registered)."""
        return self._id_of.get(term)

    def term_of(self, term_id: int) -> str | None:
        """Reverse lookup (None for unknown IDs)."""
        if 0 <= term_id < len(self._term_of):
            return self._term_of[term_id]
        return None
