"""Zerber posting elements and their wire encoding (paper §5.2, §7.2–7.3).

"An unencrypted element hence contains three fields:
``secret = [document_ID, term_ID, tf]``." The element is what gets split
with Shamir's scheme, so it must pack into one field secret; §7.3 assumes
"each posting element is encoded using 64 bits". We adopt the layout

    ``doc_id:30 | term_id:22 | tf:12``  (configurable via PackingSpec)

with ``tf`` stored as a 12-bit fixed-point fraction of 1. §7.2's observation
that "Zerber posting elements include additional fields to identify the term
in the merged set and the global element ID, which increases element size by
about 50%" is captured by :meth:`PackingSpec.zerber_element_bits`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import PackingError


@dataclass(frozen=True)
class PackingSpec:
    """Bit layout of the packed ``[doc_id, term_id, tf]`` secret.

    Attributes:
        doc_id_bits: width of the document-ID field (identifies host + doc).
        term_id_bits: width of the term-ID field ("an additional encoding
            ... stored with each element to identify the term", §5.2).
        tf_bits: width of the fixed-point term-frequency field.
        element_id_bits: width of the *unencrypted* global element ID that
            accompanies each share on the wire (§5.4.1).
    """

    doc_id_bits: int = 30
    term_id_bits: int = 22
    tf_bits: int = 12
    element_id_bits: int = 32

    def __post_init__(self) -> None:
        if min(self.doc_id_bits, self.term_id_bits, self.tf_bits) < 1:
            raise PackingError("all packed fields need at least one bit")
        if self.element_id_bits < 16:
            raise PackingError("element IDs need at least 16 bits")

    @property
    def secret_bits(self) -> int:
        """Total bits of the packed secret (the paper's 64)."""
        return self.doc_id_bits + self.term_id_bits + self.tf_bits

    @property
    def max_doc_id(self) -> int:
        return (1 << self.doc_id_bits) - 1

    @property
    def max_term_id(self) -> int:
        return (1 << self.term_id_bits) - 1

    @property
    def tf_scale(self) -> int:
        """Fixed-point denominator for the tf field."""
        return (1 << self.tf_bits) - 1

    @property
    def plain_element_bits(self) -> int:
        """Bits of an *ordinary* index element.

        A conventional posting is the same fixed-width record minus the
        term encoding: since the plain index keys posting lists by term, the
        ``term_id_bits`` are repurposed for a wider document ID, keeping the
        record at ``secret_bits`` (64 by default — the paper's §7.3 element
        size). Zerber's extra cost is then exactly the global element ID.
        """
        return self.secret_bits

    @property
    def zerber_element_bits(self) -> int:
        """Bits of a Zerber wire element: packed secret share + element ID.

        With the default layout this is 64 + 32 = 96 bits against a 64-bit
        plain element — §7.2's "increases element size by about 50%".
        """
        return self.secret_bits + self.element_id_bits


@dataclass(frozen=True, slots=True)
class PostingElement:
    """One plaintext Zerber posting element (the secret's three fields).

    Attributes:
        doc_id: document identifier (host + local id packed upstream).
        term_id: dictionary ID of the term, needed to filter false positives
            out of merged lists after decryption (§5.4.2).
        tf: normalized term frequency in (0, 1].
    """

    doc_id: int
    term_id: int
    tf: float

    def __post_init__(self) -> None:
        if self.doc_id < 0 or self.term_id < 0:
            raise PackingError("doc_id and term_id must be non-negative")
        if not 0.0 < self.tf <= 1.0:
            raise PackingError(f"tf {self.tf} outside (0, 1]")


class PostingElementCodec:
    """Packs :class:`PostingElement` triples into field secrets and back.

    The codec is lossless on ``doc_id`` / ``term_id`` and quantizes ``tf``
    to ``tf_bits`` of fixed point (quantization error <= 1/tf_scale, far
    below what ranking can distinguish).
    """

    def __init__(self, spec: PackingSpec | None = None) -> None:
        self.spec = spec or PackingSpec()

    def pack(self, element: PostingElement) -> int:
        """Encode ``element`` as an integer < 2**secret_bits.

        Raises:
            PackingError: if an ID exceeds its configured field width.
        """
        spec = self.spec
        if element.doc_id > spec.max_doc_id:
            raise PackingError(
                f"doc_id {element.doc_id} exceeds {spec.doc_id_bits}-bit field"
            )
        if element.term_id > spec.max_term_id:
            raise PackingError(
                f"term_id {element.term_id} exceeds {spec.term_id_bits}-bit field"
            )
        quantized_tf = round(element.tf * spec.tf_scale)
        quantized_tf = min(max(quantized_tf, 1), spec.tf_scale)
        packed = element.doc_id
        packed = (packed << spec.term_id_bits) | element.term_id
        packed = (packed << spec.tf_bits) | quantized_tf
        return packed

    def unpack(self, secret: int) -> PostingElement:
        """Decode a packed secret back into its three fields.

        Raises:
            PackingError: if the value does not fit ``secret_bits`` (e.g. a
                corrupted reconstruction from mismatched shares).
        """
        spec = self.spec
        if secret < 0 or secret >= (1 << spec.secret_bits):
            raise PackingError(
                f"packed value does not fit {spec.secret_bits} bits"
            )
        quantized_tf = secret & spec.tf_scale
        secret >>= spec.tf_bits
        term_id = secret & spec.max_term_id
        secret >>= spec.term_id_bits
        doc_id = secret
        if quantized_tf == 0:
            raise PackingError("tf field decoded to zero — corrupt element")
        return PostingElement(
            doc_id=doc_id, term_id=term_id, tf=quantized_tf / spec.tf_scale
        )


def new_element_id(rng: random.Random, bits: int = 32) -> int:
    """Mint a global element ID, "globally unique within its posting list".

    IDs are drawn uniformly at random from ``bits`` bits by the document
    owner (§5.4.1); uniqueness within a posting list is enforced at insert
    time by the index servers. Clients use the ID to match the shares of
    one element across servers.
    """
    return rng.getrandbits(bits)
