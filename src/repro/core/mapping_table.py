"""The public term → posting-list mapping table (paper §6, Figure 4).

"During merging, we create a publicly available mapping table that maps a
term to the ID of its posting list." The table is public by design — it
reveals only which *merged* list a frequent term lives in, and §6.4's
hash-based assignment keeps rare terms out of it entirely, so inspecting
the table proves nothing about whether a rare term is indexed anywhere.

Both document owners (indexing) and querying users (lookup) resolve terms
through the same table; unknown and rare terms fall through to the shared
public :class:`~repro.core.merging.hashed.HashMerger`.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.core.merging.base import MergeResult
from repro.core.merging.hashed import HashMerger
from repro.errors import MergingError


class MappingTable:
    """Public, immutable-by-convention term → posting-list-ID resolver."""

    def __init__(
        self,
        assignments: Mapping[str, int],
        num_lists: int,
        hash_salt: str = "zerber",
    ) -> None:
        """Args:
        assignments: explicit table entries (frequent terms only).
        num_lists: M; explicit and hashed assignments must land in
            ``[0, M)``.
        hash_salt: public salt of the rare-term hash function.
        """
        if num_lists < 1:
            raise MergingError(f"M must be >= 1, got {num_lists}")
        bad = [t for t, lid in assignments.items() if not 0 <= lid < num_lists]
        if bad:
            raise MergingError(
                f"assignments out of range [0, {num_lists}): {bad[:3]}"
            )
        self._assignments = dict(assignments)
        self._hash = HashMerger(num_lists, salt=hash_salt)
        self.num_lists = num_lists

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_merge(
        cls,
        merge: MergeResult,
        term_probabilities: Mapping[str, float] | None = None,
        rare_cutoff: float = 0.0,
        hash_salt: str = "zerber",
    ) -> "MappingTable":
        """Build the table from a merge, optionally hiding rare terms.

        Args:
            merge: a §6 heuristic's output.
            term_probabilities: needed when ``rare_cutoff > 0`` to decide
                which terms are rare.
            rare_cutoff: terms with probability strictly below this never
                enter the table; they resolve through the hash instead
                (§6.4). 0.0 disables hash-hiding.
            hash_salt: public hash salt.
        """
        assignments = merge.assignments()
        if rare_cutoff > 0.0:
            if term_probabilities is None:
                raise MergingError(
                    "rare_cutoff requires term probabilities"
                )
            assignments = {
                term: list_id
                for term, list_id in assignments.items()
                if term_probabilities.get(term, 0.0) >= rare_cutoff
            }
            if not assignments:
                raise MergingError(
                    "rare_cutoff hides the entire mapping table"
                )
        return cls(assignments, merge.num_lists, hash_salt=hash_salt)

    # -- resolution ---------------------------------------------------------------

    def lookup(self, term: str) -> int:
        """Posting-list ID for ``term``: table entry or public hash."""
        explicit = self._assignments.get(term)
        if explicit is not None:
            return explicit
        return self._hash.list_for(term)

    def lookup_many(self, terms: Iterable[str]) -> dict[str, int]:
        """Resolve a whole query's terms at once."""
        return {term: self.lookup(term) for term in terms}

    def is_tabled(self, term: str) -> bool:
        """Whether ``term`` appears explicitly (False ⇒ hash-resolved)."""
        return term in self._assignments

    # -- introspection (what an adversary inspecting the table sees) ----------

    @property
    def table_size(self) -> int:
        """Number of explicit entries."""
        return len(self._assignments)

    def visible_terms(self) -> list[str]:
        """The terms an adversary can read out of the public table."""
        return sorted(self._assignments)

    def entries(self) -> dict[str, int]:
        """A copy of the explicit table (public data)."""
        return dict(self._assignments)
