"""Breadth First Merging — Algorithm 4 (paper §6.2).

"The Breadth First Merging heuristic sorts terms on document frequency,
then assigns successive terms to the first posting list until the
r-condition is met. Then BFM moves to the second posting list, and so on
until all terms are assigned to a list. BFM does not require us to
predetermine M." If the final list cannot reach the 1/r mass ("there are
not enough terms left to reach a good r-value for this list"), it is deleted
and its terms are randomly distributed among the other lists.

:func:`bfm_r_for_list_count` reproduces the calibration of §7.5: "We tweaked
the input value of r given to the BFM algorithm so that it would also
produce the same number of lists" as DFM/UDM.
"""

from __future__ import annotations

import random
from typing import Mapping

from repro.core.merging.base import (
    MergeResult,
    MergingHeuristic,
    sort_terms_by_probability,
)
from repro.errors import MergingError


class BreadthFirstMerging(MergingHeuristic):
    """Algorithm 4: fill lists one at a time to the 1/r mass."""

    name = "BFM"

    def __init__(self, target_r: float, seed: int = 0xBF4) -> None:
        """Args:
        target_r: the r-value to satisfy; each list accumulates terms
            while its probability mass is below ``1/target_r``.
        seed: randomness for the final-list redistribution step.
        """
        if target_r < 1.0:
            raise MergingError(f"target r must be >= 1, got {target_r}")
        self.target_r = target_r
        self._seed = seed

    def merge(self, term_probabilities: Mapping[str, float]) -> MergeResult:
        terms = sort_terms_by_probability(term_probabilities)
        required_mass = 1.0 / self.target_r
        lists: list[list[str]] = []
        masses: list[float] = []
        current: list[str] = []
        current_mass = 0.0
        for term in terms:
            # Algorithm 4 line 5: keep assigning while mass < 1/r.
            current.append(term)
            current_mass += term_probabilities[term]
            if current_mass >= required_mass:
                lists.append(current)
                masses.append(current_mass)
                current = []
                current_mass = 0.0
        if current:
            # Algorithm 4 lines 7-8: the leftover list missed the
            # r-condition; delete it and randomly spread its terms.
            if lists:
                rng = random.Random(self._seed)
                for term in current:
                    lists[rng.randrange(len(lists))].append(term)
            else:
                # The whole vocabulary cannot reach 1/r: one list is the
                # best (and most confidential) partition available.
                lists.append(current)
        return MergeResult(
            lists=tuple(tuple(members) for members in lists),
            heuristic=self.name,
            target_r=self.target_r,
        )


def bfm_r_for_list_count(
    term_probabilities: Mapping[str, float],
    num_lists: int,
    max_iterations: int = 80,
) -> float:
    """Find an input r for which BFM yields exactly ``num_lists`` lists.

    Binary-searches the target r (equivalently the per-list mass 1/r).
    Larger r (smaller mass) produces more lists, so the relation is
    monotone — but not every count is reachable: the final-list
    redistribution step (Algorithm 4 lines 7-8) can skip individual
    counts. When the exact count is unreachable the closest achievable
    r is returned (the §7.5 calibration only needs "the same number of
    lists" up to that granularity).

    Args:
        term_probabilities: formula-(2) probabilities.
        num_lists: desired M.
        max_iterations: bisection budget.

    Returns:
        A target r for which BFM yields ``num_lists`` lists, or the
        nearest reachable count if the exact value is skipped.

    Raises:
        MergingError: if ``num_lists`` exceeds the vocabulary size.
    """
    vocab = len(term_probabilities)
    if not 1 <= num_lists <= vocab:
        raise MergingError(
            f"cannot produce {num_lists} lists from {vocab} terms"
        )
    total_mass = sum(term_probabilities.values())
    lo = 1.0 / total_mass  # r producing a single all-terms list
    hi = 4.0 / min(term_probabilities.values())  # r beyond one-term lists
    result_for: dict[float, int] = {}

    def count_for(r: float) -> int:
        if r not in result_for:
            result_for[r] = BreadthFirstMerging(max(1.0, r)).merge(
                term_probabilities
            ).num_lists
        return result_for[r]

    if count_for(max(1.0, lo)) == num_lists:
        return max(1.0, lo)
    for _ in range(max_iterations):
        mid = (lo * hi) ** 0.5  # geometric midpoint: r spans decades
        count = count_for(mid)
        if count == num_lists:
            return mid
        if count < num_lists:
            lo = mid
        else:
            hi = mid
    # Exact count unreachable (redistribution skipped it): closest wins.
    return min(
        result_for,
        key=lambda r: (abs(result_for[r] - num_lists), r),
    )
