"""Shared machinery for the §6 merging heuristics."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Mapping

from repro.core.confidentiality import resulting_r
from repro.errors import MergingError


def sort_terms_by_probability(
    term_probabilities: Mapping[str, float]
) -> list[str]:
    """Terms in descending probability order, ties broken lexicographically.

    Every §6 heuristic starts with "Sort terms into descending order, based
    on p_t"; the deterministic tie-break keeps merges reproducible.
    """
    if not term_probabilities:
        raise MergingError("cannot merge an empty vocabulary")
    bad = [t for t, p in term_probabilities.items() if p <= 0]
    if bad:
        raise MergingError(f"non-positive probability for terms {bad[:3]}")
    return sorted(
        term_probabilities, key=lambda t: (-term_probabilities[t], t)
    )


@dataclass(frozen=True)
class MergeResult:
    """The outcome of one merging run: a partition of the vocabulary.

    Attributes:
        lists: merged posting lists; index in this sequence is the
            posting-list ID used by the mapping table and the servers.
        heuristic: name of the producing heuristic ("DFM" / "BFM" / "UDM").
        target_r: the input r-value, when the heuristic takes one.
    """

    lists: tuple[tuple[str, ...], ...]
    heuristic: str
    target_r: float | None = None

    def __post_init__(self) -> None:
        if not self.lists:
            raise MergingError("merge produced no posting lists")
        if any(not members for members in self.lists):
            raise MergingError("merge produced an empty posting list")

    @property
    def num_lists(self) -> int:
        """M — the number of merged posting lists."""
        return len(self.lists)

    @property
    def num_terms(self) -> int:
        return sum(len(members) for members in self.lists)

    def assignments(self) -> dict[str, int]:
        """term -> posting-list ID (the mapping-table payload, Fig. 4)."""
        table: dict[str, int] = {}
        for list_id, members in enumerate(self.lists):
            for term in members:
                if term in table:
                    raise MergingError(
                        f"term {term!r} assigned to two posting lists"
                    )
                table[term] = list_id
        return table

    def masses(
        self, term_probabilities: Mapping[str, float]
    ) -> list[float]:
        """Aggregate probability mass of every list (formula (5)'s lhs)."""
        return [
            sum(term_probabilities[t] for t in members)
            for members in self.lists
        ]

    def resulting_r(self, term_probabilities: Mapping[str, float]) -> float:
        """Formula (7): the r delivered by this merge on these statistics."""
        return resulting_r(self.lists, term_probabilities)

    def list_lengths(
        self, document_frequencies: Mapping[str, int]
    ) -> list[int]:
        """Element count of every merged list — sum of member DFs (Fig. 12)."""
        return [
            sum(document_frequencies.get(t, 0) for t in members)
            for members in self.lists
        ]

    def singleton_lists(self) -> int:
        """How many lists hold exactly one term (the unmerged head, §7.5)."""
        return sum(1 for members in self.lists if len(members) == 1)


class MergingHeuristic(abc.ABC):
    """Interface of the §6 heuristics: probabilities in, partition out."""

    #: short display name used in experiment tables.
    name: str = "abstract"

    @abc.abstractmethod
    def merge(
        self, term_probabilities: Mapping[str, float]
    ) -> MergeResult:
        """Partition the vocabulary into merged posting lists.

        Args:
            term_probabilities: formula-(2) occurrence probability of every
                term (``TermStatistics.term_probabilities()``).

        Returns:
            A :class:`MergeResult` covering every input term exactly once.
        """
