"""Uniform Distribution Merging — UDM (paper §6.3).

"UDM is a variation on DFM in which terms are assigned to lists in rounds
as in Algorithm 3, but without considering the resulting accumulated
probability value. Once all terms are assigned to posting lists, we
calculate the resulting confidentiality value" via formula (7).

UDM is the only heuristic that merges even the most frequent terms ("UDM
merges even these most popular terms", §7.6), which gives the head of the
vocabulary extra protection at the price of slowing queries on rare terms
(Fig. 10) and a worse average r (Table 1).
"""

from __future__ import annotations

from typing import Mapping

from repro.core.merging.base import (
    MergeResult,
    MergingHeuristic,
    sort_terms_by_probability,
)
from repro.errors import MergingError


class UniformDistributionMerging(MergingHeuristic):
    """Round-robin dealing of frequency-sorted terms into M lists."""

    name = "UDM"

    def __init__(self, num_lists: int) -> None:
        """Args:
        num_lists: M, the predetermined mapping-table size.
        """
        if num_lists < 1:
            raise MergingError(f"M must be >= 1, got {num_lists}")
        self.num_lists = num_lists

    def merge(self, term_probabilities: Mapping[str, float]) -> MergeResult:
        terms = sort_terms_by_probability(term_probabilities)
        m = min(self.num_lists, len(terms))
        lists: list[list[str]] = [[] for _ in range(m)]
        for rank, term in enumerate(terms):
            lists[rank % m].append(term)
        return MergeResult(
            lists=tuple(tuple(members) for members in lists),
            heuristic=self.name,
            target_r=None,
        )
