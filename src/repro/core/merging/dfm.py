"""Depth First Merging — Algorithm 3 (paper §6.1).

"DFM assigns the most frequent terms to separate posting lists, using a
predetermined value of M (the number of merged posting lists) as the table
size. This exploits the fact that frequently occurring terms are also
queried more often. DFM fills the cells of the table from top to bottom with
terms sorted by document frequency in rounds until the r-condition in each
cell is satisfied."

The first dealing round therefore gives each of the M most frequent terms
its own list; later rounds skip lists whose accumulated probability mass
already exceeds ``1/r``.

One practical completion the paper leaves implicit: if every list reaches
its 1/r mass while terms remain unassigned, Algorithm 3's loop would never
terminate. We keep dealing the remaining terms round-robin across all lists
— extra mass can only *increase* each list's aggregate probability, so the
r-condition is never weakened by this completion.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.merging.base import (
    MergeResult,
    MergingHeuristic,
    sort_terms_by_probability,
)
from repro.errors import MergingError


class DepthFirstMerging(MergingHeuristic):
    """Algorithm 3 with a predetermined list count M and target r."""

    name = "DFM"

    def __init__(self, num_lists: int, target_r: float) -> None:
        """Args:
        num_lists: M, the mapping-table size (predetermined, §6.1).
        target_r: the r-value whose 1/r mass marks a list as filled.
        """
        if num_lists < 1:
            raise MergingError(f"M must be >= 1, got {num_lists}")
        if target_r < 1.0:
            raise MergingError(f"target r must be >= 1, got {target_r}")
        self.num_lists = num_lists
        self.target_r = target_r

    def merge(self, term_probabilities: Mapping[str, float]) -> MergeResult:
        terms = sort_terms_by_probability(term_probabilities)
        m = min(self.num_lists, len(terms))
        if m < self.num_lists:
            # Fewer terms than cells: every term gets its own list; empty
            # cells cannot exist in a valid index (§6.4).
            return MergeResult(
                lists=tuple((t,) for t in terms),
                heuristic=self.name,
                target_r=self.target_r,
            )
        required_mass = 1.0 / self.target_r
        lists: list[list[str]] = [[] for _ in range(m)]
        masses = [0.0] * m
        filled = [False] * m
        unfilled_remaining = m
        cursor = 0
        for term in terms:
            if unfilled_remaining > 0:
                # Walk to the next unfilled cell, marking satisfied cells
                # as filled along the way (Algorithm 3 lines 5-7).
                while filled[cursor] or masses[cursor] > required_mass:
                    if not filled[cursor]:
                        filled[cursor] = True
                        unfilled_remaining -= 1
                        if unfilled_remaining == 0:
                            break
                    cursor = (cursor + 1) % m
                if unfilled_remaining == 0:
                    # Fall through to the round-robin completion below.
                    lists[cursor].append(term)
                    masses[cursor] += term_probabilities[term]
                    cursor = (cursor + 1) % m
                    continue
            lists[cursor].append(term)
            masses[cursor] += term_probabilities[term]
            cursor = (cursor + 1) % m
        return MergeResult(
            lists=tuple(tuple(members) for members in lists),
            heuristic=self.name,
            target_r=self.target_r,
        )
