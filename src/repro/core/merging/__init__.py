"""Posting-list merging heuristics (paper §6).

"An efficient posting list merging heuristic must satisfy the r-constraint
and minimize the expected workload cost ... This problem can be shown to be
NP-complete by reduction from the minimum sum of squares. Thus we look for
merging heuristics that are good in practice."

- :class:`DepthFirstMerging` (DFM, Algorithm 3) — round-robin dealing of
  frequency-sorted terms into a predetermined number M of lists, skipping
  lists whose probability mass already satisfies the r-condition;
- :class:`BreadthFirstMerging` (BFM, Algorithm 4) — fill one list at a time
  until its mass reaches 1/r; M emerges from the data;
- :class:`UniformDistributionMerging` (UDM, §6.3) — DFM's round-robin
  without the mass check; r is computed after the fact via formula (7);
- :func:`bfm_r_for_list_count` — the §7.5 calibration step ("we tweaked the
  input value of r given to the BFM algorithm so that it would also produce
  the same number of lists").
"""

from repro.core.merging.base import MergeResult, MergingHeuristic
from repro.core.merging.dfm import DepthFirstMerging
from repro.core.merging.bfm import BreadthFirstMerging, bfm_r_for_list_count
from repro.core.merging.udm import UniformDistributionMerging
from repro.core.merging.hashed import HashMerger

__all__ = [
    "MergeResult",
    "MergingHeuristic",
    "DepthFirstMerging",
    "BreadthFirstMerging",
    "bfm_r_for_list_count",
    "UniformDistributionMerging",
    "HashMerger",
]
