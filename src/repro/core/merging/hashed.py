"""Hash-based merging for rare terms (paper §6.4).

"An adversary can inspect the mapping table and see whether a term is not
included in any indexed site. Also, if a rare term is subsequently added to
the mapping table, an adversary who has taken over a server can see which
site requested the term's inclusion. To avoid this, we use hash-based
merging for rare terms ... rare terms never appear in the mapping table.
Therefore by inspecting the mapping table an adversary cannot find out
whether a rare term appears at any indexed site or not."

The hash function must be *public* (owners and queriers independently map
the same term to the same list) and stable across processes, so we use
SHA-256 of a salted term, reduced mod M — never Python's randomized
``hash()``.
"""

from __future__ import annotations

import hashlib
from typing import Mapping

from repro.errors import MergingError


class HashMerger:
    """Public hash-assignment of terms to posting lists.

    Used (a) for rare terms below the §6.4 probability cutoff, and (b) "to
    distribute the new terms randomly over the index" — terms coined after
    the mapping table was built.
    """

    def __init__(self, num_lists: int, salt: str = "zerber") -> None:
        """Args:
        num_lists: M, the number of posting lists the hash maps into.
        salt: public domain-separation string (all participants share it).
        """
        if num_lists < 1:
            raise MergingError(f"M must be >= 1, got {num_lists}")
        self.num_lists = num_lists
        self.salt = salt

    def list_for(self, term: str) -> int:
        """The posting-list ID that ``term`` hashes to (deterministic)."""
        digest = hashlib.sha256(
            f"{self.salt}\x00{term}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") % self.num_lists

    def assign(self, terms: Mapping[str, float] | list[str]) -> dict[str, int]:
        """Hash-assign a batch of terms; returns term -> list ID."""
        return {term: self.list_for(term) for term in terms}

    def split_by_cutoff(
        self, term_probabilities: Mapping[str, float], cutoff: float
    ) -> tuple[dict[str, float], list[str]]:
        """Partition vocabulary into (table-eligible, hash-assigned) terms.

        "We consider a term rare if its original probability was below a
        certain cut-off threshold." Rare terms "do not significantly change
        the total probability mass for a specific posting list", so their
        later hash-assignment cannot break a list's r-condition in any
        meaningful way.

        Args:
            term_probabilities: formula-(2) probabilities.
            cutoff: probability threshold; strictly-below goes to the hash.

        Returns:
            (frequent term -> probability, rare terms list).
        """
        if cutoff < 0:
            raise MergingError("cutoff must be non-negative")
        frequent: dict[str, float] = {}
        rare: list[str] = []
        for term, p in term_probabilities.items():
            if p < cutoff:
                rare.append(term)
            else:
                frequent[term] = p
        if not frequent:
            raise MergingError(
                "cutoff excludes the whole vocabulary from the mapping table"
            )
        return frequent, rare
