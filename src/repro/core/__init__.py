"""Zerber's core contribution (paper §4–§6).

- :mod:`repro.core.posting` — the encrypted posting element: the
  ``secret = [document_ID, term_ID, tf]`` triple of §5.2 packed into a
  64-bit field secret, plus global element IDs;
- :mod:`repro.core.confidentiality` — the r-confidentiality measure
  (Definition 1) and the formulas (2)–(5), (7) that govern merging;
- :mod:`repro.core.merging` — the DFM / BFM / UDM heuristics of §6 and the
  hash-based rare-term assignment of §6.4;
- :mod:`repro.core.mapping_table` — the "publicly available mapping table
  that maps a term to the ID of its posting list" (§6, Fig. 4);
- :mod:`repro.core.zerber_index` — the deployment facade tying servers,
  clients and the mapping table into the end-to-end system of §5.4.
"""

from repro.core.posting import (
    PackingSpec,
    PostingElement,
    PostingElementCodec,
    new_element_id,
)
from repro.core.confidentiality import (
    amplification,
    is_r_confidential,
    list_confidentiality,
    merged_term_probability,
    required_probability_mass,
    resulting_r,
)
from repro.core.mapping_table import MappingTable
from repro.core.merging import (
    BreadthFirstMerging,
    DepthFirstMerging,
    MergeResult,
    MergingHeuristic,
    UniformDistributionMerging,
)
from repro.core.zerber_index import ZerberDeployment, ZerberSearchResult

__all__ = [
    "PackingSpec",
    "PostingElement",
    "PostingElementCodec",
    "new_element_id",
    "amplification",
    "is_r_confidential",
    "list_confidentiality",
    "merged_term_probability",
    "required_probability_mass",
    "resulting_r",
    "MappingTable",
    "MergeResult",
    "MergingHeuristic",
    "DepthFirstMerging",
    "BreadthFirstMerging",
    "UniformDistributionMerging",
    "ZerberDeployment",
    "ZerberSearchResult",
]
