"""Command-line interface: ``python -m repro <command>``.

Four entry points for kicking Zerber's tires without writing code:

- ``demo``      — the quickstart scenario end to end;
- ``merge``     — run a §6 heuristic over a synthetic corpus and print the
  merge statistics (r, singletons, mass quantiles);
- ``audit``     — the operator confidentiality audit for a chosen
  configuration, including the §8 request-stream channels;
- ``bandwidth`` — the §7.3 network model with adjustable parameters.
"""

from __future__ import annotations

import argparse
from typing import Sequence


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.client.batching import BatchPolicy
    from repro.core.mapping_table import MappingTable
    from repro.core.zerber_index import ZerberDeployment
    from repro.corpus.synthetic import SyntheticCorpusConfig, generate_corpus

    corpus = generate_corpus(
        SyntheticCorpusConfig(
            num_documents=args.documents,
            vocabulary_size=800,
            num_groups=2,
            seed=args.seed,
        )
    )
    deployment = ZerberDeployment.bootstrap(
        corpus.term_probabilities(),
        heuristic="dfm",
        num_lists=min(32, corpus.vocabulary_size),
        k=2,
        n=3,
        batch_policy=BatchPolicy(min_documents=4),
        seed=args.seed,
    )
    for g in corpus.group_ids():
        deployment.create_group(g, coordinator=f"owner{g}")
    for document in corpus:
        deployment.share_document(f"owner{document.group_id}", document)
    deployment.flush_all()
    print(f"indexed {len(corpus)} documents -> "
          f"{deployment.servers[0].num_elements} elements per server "
          f"(k=2 of n=3)")
    doc = corpus.documents_in_group(0)[0]
    term = sorted(doc.term_counts)[0]
    results = deployment.search("owner0", [term], top_k=5)
    print(f"owner0 queried {term!r}: {len(results)} hits")
    for hit in results:
        print(f"  doc {hit.doc_id} @ {hit.host}  score={hit.score:.3f}")
    outsider = deployment.search("owner1", [term], top_k=5)
    print(f"owner1 (other group) queried {term!r}: {len(outsider)} hits")
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    from repro.core.merging.bfm import BreadthFirstMerging, bfm_r_for_list_count
    from repro.core.merging.dfm import DepthFirstMerging
    from repro.core.merging.udm import UniformDistributionMerging
    from repro.corpus.synthetic import generate_term_statistics

    stats = generate_term_statistics(args.documents, args.vocabulary)
    probs = stats.term_probabilities()
    m = min(args.lists, len(probs))
    if args.heuristic == "udm":
        algo = UniformDistributionMerging(m)
    else:
        target = bfm_r_for_list_count(probs, m)
        algo = (
            BreadthFirstMerging(target)
            if args.heuristic == "bfm"
            else DepthFirstMerging(m, target)
        )
    merge = algo.merge(probs)
    masses = sorted(merge.masses(probs))
    print(f"{args.heuristic.upper()} over {len(probs)} terms -> "
          f"{merge.num_lists} lists")
    print(f"resulting r (formula 7): {merge.resulting_r(probs):.1f}")
    print(f"singleton lists: {merge.singleton_lists()}")
    print(f"list mass min/median/max: {masses[0]:.2e} / "
          f"{masses[len(masses) // 2]:.2e} / {masses[-1]:.2e}")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.analysis.audit import audit_merge
    from repro.core.merging.bfm import bfm_r_for_list_count
    from repro.core.merging.dfm import DepthFirstMerging
    from repro.corpus.querylog import QueryLogConfig, generate_query_log
    from repro.corpus.synthetic import generate_term_statistics

    stats = generate_term_statistics(args.documents, args.vocabulary)
    probs = stats.term_probabilities()
    m = min(args.lists, len(probs))
    merge = DepthFirstMerging(m, bfm_r_for_list_count(probs, m)).merge(probs)
    qlog = generate_query_log(
        stats,
        QueryLogConfig(
            total_queries=50_000,
            distinct_query_terms=min(2_000, len(probs)),
            rank_noise=0.005,
            tail_fraction=0.2,
            seed=args.seed,
        ),
    )
    audit = audit_merge(
        merge, probs, query_frequencies=qlog.frequencies()
    )
    for line in audit.render():
        print(line)
    return 0


def _cmd_bandwidth(args: argparse.Namespace) -> int:
    from repro.analysis.bandwidth import BandwidthModel

    model = BandwidthModel(
        elements_per_query_term=args.elements_per_term,
        k=args.k,
        terms_per_query=args.terms_per_query,
    )
    report = model.report()
    print(f"per-query-term response: {report.response_kb_per_query_term:.1f} KB")
    print(f"user throughput:   {report.queries_per_second_user:.0f} q/s")
    print(f"server throughput: {report.queries_per_second_server:.0f} q/s")
    print(f"top-10 response:   {report.total_response_bytes_top_k / 1000:.1f} KB "
          f"(x{report.vs_google:.2f} Google, x{report.vs_yahoo:.2f} Yahoo)")
    print(f"insert fan-out:    x{model.insert_bandwidth_factor(args.n):.1f} "
          "plain-index bandwidth")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Zerber (EDBT 2008) reproduction — demo and analysis CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="index a toy corpus and search it")
    demo.add_argument("--documents", type=int, default=30)
    demo.add_argument("--seed", type=int, default=7)
    demo.set_defaults(func=_cmd_demo)

    merge = sub.add_parser("merge", help="run a merging heuristic, print stats")
    merge.add_argument("--heuristic", choices=("dfm", "bfm", "udm"), default="dfm")
    merge.add_argument("--documents", type=int, default=2_000)
    merge.add_argument("--vocabulary", type=int, default=5_000)
    merge.add_argument("--lists", type=int, default=64)
    merge.set_defaults(func=_cmd_merge)

    audit = sub.add_parser("audit", help="confidentiality audit of a config")
    audit.add_argument("--documents", type=int, default=2_000)
    audit.add_argument("--vocabulary", type=int, default=5_000)
    audit.add_argument("--lists", type=int, default=64)
    audit.add_argument("--seed", type=int, default=7)
    audit.set_defaults(func=_cmd_audit)

    bandwidth = sub.add_parser("bandwidth", help="the §7.3 network model")
    bandwidth.add_argument("--elements-per-term", type=float, default=2_700)
    bandwidth.add_argument("--terms-per-query", type=float, default=2.45)
    bandwidth.add_argument("--k", type=int, default=2)
    bandwidth.add_argument("--n", type=int, default=3)
    bandwidth.set_defaults(func=_cmd_bandwidth)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
