"""Command-line interface: ``python -m repro <command>``.

Five entry points for kicking Zerber's tires without writing code:

- ``demo``      — the quickstart scenario end to end;
- ``merge``     — run a §6 heuristic over a synthetic corpus and print the
  merge statistics (r, singletons, mass quantiles);
- ``audit``     — the operator confidentiality audit for a chosen
  configuration, including the §8 request-stream channels;
- ``bandwidth`` — the §7.3 network model with adjustable parameters;
- ``cluster``   — the sharded multi-pod engine: ``deploy`` prints the
  topology and shard placement, ``search`` runs batched cluster queries,
  ``kill-server`` demonstrates failover under server loss, ``kill-pod``
  runs the whole-pod-loss drill (with ``--replication 2`` the answers
  stay byte-identical, then the pod restarts and owners re-provision
  the writes it missed), ``status`` prints the observability snapshot
  (pods, live/dead seats, replica placement, per-pod EWMA read
  latency), and ``top`` renders a live curses-free dashboard (per-pod
  read rates and latency quantiles, cache hit rates, breaker and
  admission state) polled over the ``MetricsDump`` wire message. Every
  run rebuilds the same deterministic scenario from ``--seed``, like
  the other commands;
- ``serve``     — stand the deterministic cluster scenario up behind the
  wire protocol on a TCP listener, so searches can run out-of-process
  (pair with ``ClusterDeployment(transport="socket")`` or a raw
  ``SocketTransport``);
- ``storage``   — offline seat-store tooling over a cluster's WAL
  directory: ``status`` prints every seat store (engine, records, disk
  bytes, snapshot/segment layout), ``compact`` snapshots stores in
  place, and ``migrate`` ingests legacy flat ``.wal`` files into the
  segmented engine. Opening a store performs its crash cleanup (torn
  tails truncated, orphan files deleted), so these commands double as
  a disk fsck.
"""

from __future__ import annotations

import argparse
from typing import Sequence


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.client.batching import BatchPolicy
    from repro.core.mapping_table import MappingTable
    from repro.core.zerber_index import ZerberDeployment
    from repro.corpus.synthetic import SyntheticCorpusConfig, generate_corpus

    corpus = generate_corpus(
        SyntheticCorpusConfig(
            num_documents=args.documents,
            vocabulary_size=800,
            num_groups=2,
            seed=args.seed,
        )
    )
    deployment = ZerberDeployment.bootstrap(
        corpus.term_probabilities(),
        heuristic="dfm",
        num_lists=min(32, corpus.vocabulary_size),
        k=2,
        n=3,
        batch_policy=BatchPolicy(min_documents=4),
        seed=args.seed,
    )
    for g in corpus.group_ids():
        deployment.create_group(g, coordinator=f"owner{g}")
    for document in corpus:
        deployment.share_document(f"owner{document.group_id}", document)
    deployment.flush_all()
    print(f"indexed {len(corpus)} documents -> "
          f"{deployment.servers[0].num_elements} elements per server "
          f"(k=2 of n=3)")
    doc = corpus.documents_in_group(0)[0]
    term = sorted(doc.term_counts)[0]
    results = deployment.search("owner0", [term], top_k=5)
    print(f"owner0 queried {term!r}: {len(results)} hits")
    for hit in results:
        print(f"  doc {hit.doc_id} @ {hit.host}  score={hit.score:.3f}")
    outsider = deployment.search("owner1", [term], top_k=5)
    print(f"owner1 (other group) queried {term!r}: {len(outsider)} hits")
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    from repro.core.merging.bfm import BreadthFirstMerging, bfm_r_for_list_count
    from repro.core.merging.dfm import DepthFirstMerging
    from repro.core.merging.udm import UniformDistributionMerging
    from repro.corpus.synthetic import generate_term_statistics

    stats = generate_term_statistics(args.documents, args.vocabulary)
    probs = stats.term_probabilities()
    m = min(args.lists, len(probs))
    if args.heuristic == "udm":
        algo = UniformDistributionMerging(m)
    else:
        target = bfm_r_for_list_count(probs, m)
        algo = (
            BreadthFirstMerging(target)
            if args.heuristic == "bfm"
            else DepthFirstMerging(m, target)
        )
    merge = algo.merge(probs)
    masses = sorted(merge.masses(probs))
    print(f"{args.heuristic.upper()} over {len(probs)} terms -> "
          f"{merge.num_lists} lists")
    print(f"resulting r (formula 7): {merge.resulting_r(probs):.1f}")
    print(f"singleton lists: {merge.singleton_lists()}")
    print(f"list mass min/median/max: {masses[0]:.2e} / "
          f"{masses[len(masses) // 2]:.2e} / {masses[-1]:.2e}")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.analysis.audit import audit_merge
    from repro.core.merging.bfm import bfm_r_for_list_count
    from repro.core.merging.dfm import DepthFirstMerging
    from repro.corpus.querylog import QueryLogConfig, generate_query_log
    from repro.corpus.synthetic import generate_term_statistics

    stats = generate_term_statistics(args.documents, args.vocabulary)
    probs = stats.term_probabilities()
    m = min(args.lists, len(probs))
    merge = DepthFirstMerging(m, bfm_r_for_list_count(probs, m)).merge(probs)
    qlog = generate_query_log(
        stats,
        QueryLogConfig(
            total_queries=50_000,
            distinct_query_terms=min(2_000, len(probs)),
            rank_noise=0.005,
            tail_fraction=0.2,
            seed=args.seed,
        ),
    )
    audit = audit_merge(
        merge, probs, query_frequencies=qlog.frequencies()
    )
    for line in audit.render():
        print(line)
    return 0


def _cmd_bandwidth(args: argparse.Namespace) -> int:
    from repro.analysis.bandwidth import BandwidthModel

    model = BandwidthModel(
        elements_per_query_term=args.elements_per_term,
        k=args.k,
        terms_per_query=args.terms_per_query,
    )
    report = model.report()
    print(f"per-query-term response: {report.response_kb_per_query_term:.1f} KB")
    print(f"user throughput:   {report.queries_per_second_user:.0f} q/s")
    print(f"server throughput: {report.queries_per_second_server:.0f} q/s")
    print(f"top-10 response:   {report.total_response_bytes_top_k / 1000:.1f} KB "
          f"(x{report.vs_google:.2f} Google, x{report.vs_yahoo:.2f} Yahoo)")
    print(f"insert fan-out:    x{model.insert_bandwidth_factor(args.n):.1f} "
          "plain-index bandwidth")
    return 0


def _build_cluster(args: argparse.Namespace, **extra):
    """The deterministic cluster scenario every ``cluster`` subcommand uses."""
    from repro.cluster import ClusterDeployment
    from repro.corpus.synthetic import SyntheticCorpusConfig, generate_corpus
    from repro.errors import ClusterError

    corpus = generate_corpus(
        SyntheticCorpusConfig(
            num_documents=args.documents,
            vocabulary_size=800,
            num_groups=2,
            seed=args.seed,
        )
    )
    probs = corpus.term_probabilities()
    if getattr(args, "cache_tier", None):
        extra.setdefault("cache_tier", args.cache_tier)
        extra.setdefault(
            "l1_entries", getattr(args, "l1_entries", 0) or 0
        )
    try:
        cluster = ClusterDeployment.bootstrap(
            probs,
            heuristic="dfm",
            num_lists=min(48, len(probs)),
            num_pods=args.pods,
            k=args.k,
            n=args.n,
            replication_factor=args.replication,
            seed=args.seed,
            **extra,
        )
    except ClusterError as exc:
        raise SystemExit(f"bad cluster configuration: {exc}")
    for g in corpus.group_ids():
        cluster.create_group(g, coordinator=f"owner{g}")
    for document in corpus:
        cluster.share_document(f"owner{document.group_id}", document)
    cluster.flush_all()
    return corpus, cluster


def _parse_kills(specs) -> list[tuple[int, int]]:
    """``pod:slot`` strings -> (pod_index, slot_index) pairs."""
    kills = []
    for spec in specs or ():
        pod_str, _, slot_str = spec.partition(":")
        try:
            kills.append((int(pod_str), int(slot_str)))
        except ValueError:
            raise SystemExit(f"bad --kill {spec!r}; expected POD:SLOT")
    return kills


def _cluster_query_terms(corpus, args) -> list[str]:
    if args.terms:
        return list(args.terms)
    doc = corpus.documents_in_group(0)[0]
    return sorted(doc.term_counts)[:3]


def _cmd_cluster_deploy(args: argparse.Namespace) -> int:
    _, cluster = _build_cluster(args)
    coordinator = cluster.coordinator
    print(
        f"cluster: {len(cluster.pods)} pods x {cluster.scheme.n} servers, "
        f"k={cluster.scheme.k} (each pod tolerates "
        f"{cluster.scheme.n - cluster.scheme.k} failures), "
        f"replication={coordinator.replication_factor}"
        + (" (whole-pod loss tolerated)"
           if coordinator.replication_factor >= 2 else "")
    )
    for pod in cluster.pods:
        ids = [slot.server_id for slot in pod.slots]
        print(f"  {pod.name}: {', '.join(ids)}")
    shards = coordinator.shard_distribution(cluster.mapping_table.num_lists)
    print(f"shard placement over {cluster.mapping_table.num_lists} merged "
          f"lists (x{coordinator.replication_factor} replicas): {shards}")
    print(f"stored elements (all live servers): {cluster.total_elements()}")
    print(f"storage: {cluster.storage_bytes() / 1000:.1f} KB on the wire")
    return 0


def _kill_servers(cluster, kills) -> None:
    from repro.errors import ClusterError

    for pod_index, slot_index in kills:
        try:
            downed = cluster.kill_server(pod_index, slot_index)
        except ClusterError as exc:
            raise SystemExit(f"cannot kill {pod_index}:{slot_index}: {exc}")
        print(f"killed {downed}")


def _cmd_cluster_search(args: argparse.Namespace) -> int:
    from repro.errors import ClusterDegradedError

    corpus, cluster = _build_cluster(args)
    _kill_servers(cluster, _parse_kills(args.kill))
    terms = _cluster_query_terms(corpus, args)
    searcher = cluster.searcher("owner0", batch_lookups=not args.naive)
    try:
        results = searcher.search(terms, top_k=args.top_k)
    except ClusterDegradedError as exc:
        print(f"cluster degraded below k: {exc}")
        return 1
    print(f"owner0 queried {terms}: {len(results)} hits")
    for hit in results:
        print(f"  doc {hit.doc_id} @ {hit.host}  score={hit.score:.3f}")
    diag = searcher.last_cluster_diagnostics
    print(f"pods contacted: {diag.pods_contacted}, "
          f"lookup messages: {diag.lookup_messages}, "
          f"cache hits: {diag.cache_hits}, failovers: {diag.failovers}")
    print(f"lookup bytes: {searcher.last_diagnostics.response_bytes}")
    repeated = searcher.search(terms, top_k=args.top_k)
    if repeated != results:
        print("ERROR: cached repeat query diverged from the first run")
        return 1
    print(f"repeat query: {searcher.last_cluster_diagnostics.cache_hits} "
          f"cache hits, {searcher.last_cluster_diagnostics.lookup_messages} "
          "messages")
    return 0


def _cmd_cluster_kill(args: argparse.Namespace) -> int:
    corpus, cluster = _build_cluster(args)
    terms = _cluster_query_terms(corpus, args)
    healthy = cluster.search("owner0", terms, top_k=args.top_k)
    print(f"healthy cluster: {len(healthy)} hits for {terms}")
    kills = _parse_kills(args.kill)
    if not kills:
        # Default drill: one server per pod (the acceptance scenario).
        kills = [(pod.index, pod.index % cluster.scheme.n)
                 for pod in cluster.pods]
    _kill_servers(cluster, kills)
    from repro.errors import ClusterDegradedError

    searcher = cluster.searcher("owner0", use_cache=False)
    try:
        degraded = searcher.search(terms, top_k=args.top_k)
    except ClusterDegradedError as exc:
        print(f"cluster degraded below k: {exc}")
        print("restart servers (or kill fewer than n-k per pod) to "
              "restore service")
        return 1
    diag = searcher.last_cluster_diagnostics
    print(f"degraded cluster: {len(degraded)} hits, "
          f"{diag.failovers} failovers, {diag.lookup_messages} messages")
    print("results identical to healthy run:", degraded == healthy)
    return 0


def _cmd_cluster_kill_pod(args: argparse.Namespace) -> int:
    """The rebalance-free pod-loss drill: kill, verify, restart, repair."""
    from repro.errors import ClusterDegradedError, ClusterError

    corpus, cluster = _build_cluster(args)
    coordinator = cluster.coordinator
    terms = _cluster_query_terms(corpus, args)
    healthy = cluster.search("owner0", terms, top_k=args.top_k)
    print(f"healthy cluster (replication={coordinator.replication_factor}): "
          f"{len(healthy)} hits for {terms}")
    try:
        downed = cluster.kill_pod(args.pod)
    except ClusterError as exc:
        raise SystemExit(f"cannot kill pod {args.pod}: {exc}")
    print(f"killed pod {args.pod} ({len(downed)} servers)")
    searcher = cluster.searcher("owner0", use_cache=False)
    try:
        degraded = searcher.search(terms, top_k=args.top_k)
    except ClusterDegradedError as exc:
        print(f"cluster degraded below k: {exc}")
        print("(run with --replication 2 to survive a whole pod)")
        return 1
    diag = searcher.last_cluster_diagnostics
    print(f"pod down: {len(degraded)} hits, "
          f"{diag.pod_failovers} pod failovers, "
          f"{diag.lookup_messages} messages")
    print("results identical to healthy run:", degraded == healthy)
    # A write lands while the pod is dead; the survivors take it and the
    # dead pod's routes go to the re-provisioning ledger.
    extra = corpus.documents_in_group(0)[-1]
    try:
        cluster.share_document("owner0", extra)
        cluster.flush_all()
    except ClusterDegradedError as exc:
        print(f"write refused while the pod is dead: {exc}")
        print("(run with --replication 2 to keep writing through pod loss)")
        return 1
    print(f"wrote 1 document with the pod dead: "
          f"{coordinator.outstanding_write_routes} write routes dropped")
    cluster.restart_pod(args.pod)
    repaired = cluster.reprovision_dropped_writes()
    print(f"pod restarted; owners re-provisioned {repaired} operations "
          f"({coordinator.outstanding_write_routes} routes outstanding)")
    final = cluster.searcher("owner0", use_cache=False)
    final_results = final.search(terms, top_k=args.top_k)
    print("results identical after restart + repair:",
          final_results == healthy)
    return 0 if degraded == healthy and final_results == healthy else 1


def _cmd_cluster_repair(args: argparse.Namespace) -> int:
    """Anti-entropy drill: drop writes on dead seats, heal by sweep alone."""
    from repro.errors import ClusterDegradedError

    corpus, cluster = _build_cluster(args)
    with cluster:
        coordinator = cluster.coordinator
        terms = _cluster_query_terms(corpus, args)
        kills = _parse_kills(args.kill) or [(0, 0)]
        _kill_servers(cluster, kills)
        extra = corpus.documents_in_group(0)[-1]
        try:
            cluster.share_document("owner0", extra)
            cluster.flush_all()
        except ClusterDegradedError as exc:
            print(f"write refused while seats are dead: {exc}")
            print("(kill fewer than n-k seats per pod to keep writing)")
            return 1
        print(f"wrote 1 document with {len(kills)} seats dead: "
              f"{coordinator.outstanding_write_routes} write routes dropped")
        expected = cluster.searcher("owner0", use_cache=False).search(
            terms, top_k=args.top_k
        )
        for pod_index, slot_index in kills:
            cluster.restart_server(pod_index, slot_index)
        # The owner never comes back: the coordinator's sweep is the only
        # repair path exercised here.
        sweeps = 0
        while sweeps < args.max_sweeps:
            stats = cluster.repair_sweep(budget=args.budget)
            sweeps += 1
            print(f"sweep {sweeps}: {stats.examined} entries examined, "
                  f"{stats.healed_seats} seats healed "
                  f"({stats.repaired_routes} routes, "
                  f"{stats.shipped_bytes} bytes shipped, "
                  f"{stats.skipped_no_source} no-source, "
                  f"{stats.failed} failed)")
            if coordinator.outstanding_write_routes == 0:
                break
            if stats.healed_seats == 0 and not stats.budget_exhausted:
                break
        outstanding = coordinator.outstanding_write_routes
        print(f"outstanding write routes after repair: {outstanding}")
        if outstanding and coordinator.replication_factor < 2:
            print("(run with --replication 2 so the sweep has a trusted "
                  "source replica)")
        final = cluster.searcher("owner0", use_cache=False).search(
            terms, top_k=args.top_k
        )
        converged = outstanding == 0 and final == expected
        print("results identical after sweep repair:", final == expected)
    return 0 if converged else 1


def _fetch_metrics_view(cluster):
    """One ``MetricsDump`` over the cluster's client transport.

    The same request a remote operator's scrape would send — the CLI
    never reads subsystem snapshot dicts directly, so ``status``,
    ``top``, and a Prometheus probe can never disagree.
    """
    from repro.observability.metrics import SampleView
    from repro.observability.service import METRICS_ENDPOINT
    from repro.protocol.messages import MetricsDumpRequest

    response = cluster.transport.call(
        src="operator",
        dst=METRICS_ENDPOINT,
        request=MetricsDumpRequest(),
    )
    return SampleView(response.samples)


def _pod_status_lines(view) -> list:
    """Per-pod seat/load/latency rows from a metrics view."""
    from repro.observability.metrics import parse_labels

    lines = []
    for pod in view.label_values("zerber_pod_live_seats", "pod"):
        live = int(view.value("zerber_pod_live_seats", 0, pod=pod))
        dead = int(view.value("zerber_pod_dead_seats", 0, pod=pod))
        hosted = int(view.value("zerber_pod_hosted_lists", 0, pod=pod))
        load = int(view.value("zerber_pod_read_load", 0, pod=pod))
        ewma = view.value(
            "zerber_pod_read_latency_ewma_seconds", 0.0, pod=pod
        )
        stale = int(view.value("zerber_pod_stale_lists", 0, pod=pod))
        latency = f"{ewma * 1e6:8.1f} us/list" if ewma else "       - "
        lines.append(
            f"  {pod:>6}: {live}/{live + dead} seats live, "
            f"{hosted:3d} lists, read load {load:4d}, ewma {latency}, "
            f"{stale} stale lists"
        )
        dead_ids = sorted(
            parse_labels(s.labels)["server"]
            for s in view.samples
            if s.name == "zerber_seat_alive"
            and s.value == 0.0
            and parse_labels(s.labels).get("pod") == pod
        )
        if dead_ids:
            lines.append(f"          dead: {', '.join(dead_ids)}")
    return lines


def _cache_status_lines(view) -> list:
    """Share-cache / L1 / L2 rows from a metrics view."""
    lines = []
    entries = view.value("zerber_share_cache_entries")
    if entries is not None:
        lines.append(
            f"share cache: {int(entries)}"
            f"/{int(view.value('zerber_share_cache_capacity', 0))} "
            f"entries, {int(view.value('zerber_share_cache_hits', 0))} "
            f"hits / {int(view.value('zerber_share_cache_misses', 0))} "
            f"misses, "
            f"{int(view.value('zerber_share_cache_evictions', 0))} "
            f"evictions, "
            f"{int(view.value('zerber_share_cache_invalidations', 0))} "
            f"invalidations"
        )
    if view.value("zerber_l1_caches", 0):
        hits = int(view.value("zerber_l1_hits", 0))
        misses = int(view.value("zerber_l1_misses", 0))
        total = hits + misses
        rate = (hits / total * 100.0) if total else 0.0
        lines.append(
            f"L1 (searcher-local, "
            f"{int(view.value('zerber_l1_caches', 0))} caches): "
            f"{int(view.value('zerber_l1_entries', 0))}"
            f"/{int(view.value('zerber_l1_capacity', 0))} entries, "
            f"{hits} hits / {misses} misses ({rate:.0f}% hit rate), "
            f"{int(view.value('zerber_l1_evictions', 0))} evictions, "
            f"{int(view.value('zerber_l1_invalidations', 0))} "
            f"invalidations"
        )
    policies = view.label_values("zerber_cache_tier_info", "policy")
    if policies:
        hits = int(view.value("zerber_cache_tier_hits", 0))
        misses = int(view.value("zerber_cache_tier_misses", 0))
        total = hits + misses
        rate = (hits / total * 100.0) if total else 0.0
        lines.append(
            f"L2 (shared tier, policy {policies[0]}): "
            f"{int(view.value('zerber_cache_tier_entries', 0))}"
            f"/{int(view.value('zerber_cache_tier_capacity', 0))} "
            f"entries, {hits} hits / {misses} misses "
            f"({rate:.0f}% hit rate), "
            f"{int(view.value('zerber_cache_tier_evictions', 0))} "
            f"evictions, "
            f"{int(view.value('zerber_cache_tier_invalidations', 0))} "
            f"invalidations, "
            f"{int(view.value('zerber_cache_tier_rejections', 0))} "
            f"rejections"
        )
    return lines


_BREAKER_STATES = {0: "closed", 1: "half-open", 2: "open"}


def _health_status_lines(view) -> list:
    """Repair / breaker / admission rows from a metrics view."""
    lines = []
    running = view.value("zerber_repair_thread_running", 0)
    thread = "running" if running else "stopped"
    backoff = view.value("zerber_repair_backoff_seconds", 0.0)
    cadence = f", backoff {backoff:g}s" if backoff else ""
    lines.append(
        f"anti-entropy: {int(view.value('zerber_repair_sweeps', 0))} "
        f"sweeps, "
        f"{int(view.value('zerber_repair_healed_seats', 0))} seats "
        f"healed, "
        f"{int(view.value('zerber_repair_shipped_bytes', 0))} bytes "
        f"shipped, {int(view.value('zerber_repair_failures', 0))} "
        f"failures, "
        f"{int(view.value('zerber_repair_pending_entries', 0))} ledger "
        f"entries pending (repair thread {thread}{cadence})"
    )
    states = view.by_label("zerber_breaker_state", "pod")
    if states:
        rendered = ", ".join(
            f"{pod}={_BREAKER_STATES.get(int(state), '?')} "
            f"({int(view.value('zerber_breaker_consecutive_failures', 0, pod=pod))}"
            f" failures)"
            for pod, state in sorted(states.items())
        )
        lines.append(f"breakers: {rendered}")
    else:
        lines.append("breakers: all pods healthy (no failures observed)")
    admitted = view.value("zerber_admission_admitted")
    if admitted is not None:
        lines.append(
            f"admission: {int(admitted)} admitted, "
            f"{int(view.value('zerber_admission_shed', 0))} shed, "
            f"peak depth "
            f"{int(view.value('zerber_admission_peak_depth', 0))}"
            f"/{int(view.value('zerber_admission_max_pending', 0))}"
        )
    return lines


def _cmd_cluster_status(args: argparse.Namespace) -> int:
    """Observability snapshot, rendered from the metrics registry.

    The data comes back over the wire as a ``MetricsDump`` — exactly
    what ``repro cluster top`` polls and what a Prometheus-style scrape
    exports — not from per-subsystem snapshot dicts.
    """
    corpus, cluster = _build_cluster(args)
    with cluster:
        _kill_servers(cluster, _parse_kills(args.kill))
        # Warm the read-side statistics so the latency/load columns mean
        # something (the snapshot of an idle cluster is all dashes).
        terms = _cluster_query_terms(corpus, args)
        searcher = cluster.searcher("owner0")
        for _ in range(args.warmup_queries):
            searcher.search(terms, top_k=5, fetch_snippets=False)
        view = _fetch_metrics_view(cluster)
        pods = view.label_values("zerber_pod_live_seats", "pod")
        print(
            f"cluster: {len(pods)} pods, "
            f"replication={int(view.value('zerber_replication_factor', 1))},"
            f" {int(view.value('zerber_num_lists', 0))} merged lists, "
            f"{int(view.value('zerber_outstanding_write_routes', 0))} "
            f"write routes outstanding"
        )
        for line in _pod_status_lines(view):
            print(line)
        for line in _cache_status_lines(view):
            print(line)
        for line in _health_status_lines(view):
            print(line)
    return 0


def _cmd_cluster_top(args: argparse.Namespace) -> int:
    """A live, curses-free dashboard over the metrics endpoint.

    Runs a background query workload against the deterministic
    scenario, then polls ``MetricsDump`` every ``--interval`` seconds
    and renders one frame per poll: per-pod read rate and latency
    quantiles, cache hit rates, breaker/admission/repair state. Rates
    are derived client-side from counter deltas between frames, the
    way any scrape-based dashboard derives them.
    """
    import threading
    import time as _time

    corpus, cluster = _build_cluster(args)
    with cluster:
        terms = _cluster_query_terms(corpus, args)
        stop = threading.Event()

        def workload() -> None:
            searcher = cluster.searcher("owner0")
            while not stop.is_set():
                searcher.search(terms, top_k=5, fetch_snippets=False)

        thread = threading.Thread(
            target=workload, name="zerber-top-workload", daemon=True
        )
        thread.start()
        previous_lists: dict = {}
        previous_queries = 0.0
        try:
            for frame in range(args.iterations):
                _time.sleep(args.interval)
                view = _fetch_metrics_view(cluster)
                queries = view.value("zerber_search_queries_total", 0.0)
                qps = (queries - previous_queries) / args.interval
                previous_queries = queries
                print(
                    f"-- repro cluster top · frame "
                    f"{frame + 1}/{args.iterations} "
                    f"(interval {args.interval:g}s) · "
                    f"{int(queries)} queries, {qps:.1f} qps --"
                )
                print(
                    f"{'pod':>8} {'lists/s':>9} {'p50':>9} {'p95':>9} "
                    f"{'p99':>9} {'load':>7}  seats  breaker"
                )
                for pod in view.label_values(
                    "zerber_pod_live_seats", "pod"
                ):
                    total = view.value(
                        "zerber_pod_read_lists_total", 0.0, pod=pod
                    )
                    rate = (
                        total - previous_lists.get(pod, 0.0)
                    ) / args.interval
                    previous_lists[pod] = total
                    quantiles = [
                        view.value(
                            "zerber_pod_fetch_latency_seconds",
                            0.0,
                            pod=pod,
                            quantile=q,
                        )
                        for q in ("0.5", "0.95", "0.99")
                    ]
                    live = int(
                        view.value("zerber_pod_live_seats", 0, pod=pod)
                    )
                    dead = int(
                        view.value("zerber_pod_dead_seats", 0, pod=pod)
                    )
                    state = _BREAKER_STATES.get(
                        int(view.value("zerber_breaker_state", 0, pod=pod)),
                        "closed",
                    )
                    cols = " ".join(
                        f"{q * 1e3:7.2f}ms" for q in quantiles
                    )
                    print(
                        f"{pod:>8} {rate:9.1f} {cols} "
                        f"{int(view.value('zerber_pod_read_load', 0, pod=pod)):7d}"
                        f"  {live}/{live + dead}    {state}"
                    )
                for line in _cache_status_lines(view):
                    print(line)
                for line in _health_status_lines(view):
                    print(line)
        finally:
            stop.set()
            thread.join(timeout=5)
    return 0


def _cmd_cache_status(args: argparse.Namespace) -> int:
    """Tiered-cache observability: warm the tiers, render hit rates.

    The statistics are fetched over the wire protocol's
    ``MetricsDump`` message — the same path a remote operator's probe
    would use — not read out of the store objects directly.
    """
    args.cache_tier = args.cache_tier or args.cache_tier_default
    args.l1_entries = args.l1_entries or args.l1_default
    corpus, cluster = _build_cluster(args)
    with cluster:
        terms = _cluster_query_terms(corpus, args)
        searcher = cluster.searcher("owner0")
        l1_hits = l2_hits = 0
        for _ in range(args.warmup_queries):
            searcher.search(terms, top_k=5, fetch_snippets=False)
            diag = searcher.last_cluster_diagnostics
            l1_hits += diag.l1_hits
            l2_hits += diag.l2_hits
        print(
            f"workload: {args.warmup_queries} queries over "
            f"{len(terms)} terms ({l1_hits} L1 hits, "
            f"{l2_hits} L2 hits observed by the searcher)"
        )
        view = _fetch_metrics_view(cluster)
        for line in _cache_status_lines(view):
            print(line)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Stand the scenario up behind the wire protocol on loopback TCP."""
    import signal
    import threading
    import time as _time

    _, cluster = _build_cluster(
        args,
        transport=args.transport,
        socket_host=args.host,
        socket_port=args.port,
        socket_idle_timeout_s=args.idle_timeout,
    )
    exit_code = 0
    with cluster:
        host, port = cluster.transport.address
        endpoints = cluster.registry.endpoints()
        client = (
            "AsyncSocketTransport"
            if args.transport == "async-socket"
            else "SocketTransport"
        )
        print(
            f"serving {len(endpoints)} endpoints at {host}:{port} "
            f"({args.transport} backend, idle timeout "
            f"{args.idle_timeout:g}s)"
        )
        print(f"  pods: {', '.join(pod.name for pod in cluster.pods)}")
        print(
            f"  connect with: ClusterDeployment(..., "
            f"transport='{args.transport}') "
            f"or {client}(('{host}', {port}))"
        )
        # Graceful shutdown: SIGTERM (the supervisor's stop signal) and
        # SIGINT both request a drain — stop accepting, let in-flight
        # requests finish, then exit. A drain that can't finish inside
        # --drain-timeout aborts the stragglers and exits nonzero so
        # the supervisor knows work was cut off.
        stop_requested: list[int] = []

        def _request_stop(signum, _frame) -> None:
            stop_requested.append(signum)

        # signal.signal is main-thread-only; when serve runs on a worker
        # thread (tests embed it that way) the host process owns signal
        # routing and --duration is the only exit path.
        previous: dict = {}
        if threading.current_thread() is threading.main_thread():
            previous = {
                signal.SIGTERM: signal.signal(
                    signal.SIGTERM, _request_stop
                ),
                signal.SIGINT: signal.signal(signal.SIGINT, _request_stop),
            }
        deadline = (
            None if args.duration is None
            else _time.monotonic() + args.duration
        )
        try:
            while deadline is None or _time.monotonic() < deadline:
                if stop_requested:
                    name = signal.Signals(stop_requested[0]).name
                    print(f"{name} received, draining")
                    server = cluster.socket_server
                    clean = (
                        server.drain(timeout_s=args.drain_timeout)
                        if server is not None
                        else True
                    )
                    if clean:
                        print("drained cleanly")
                    else:
                        print(
                            "drain aborted: in-flight requests cut off "
                            f"after {args.drain_timeout:g}s"
                        )
                        exit_code = 1
                    break
                _time.sleep(0.05)
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
    return exit_code


def _open_selected_stores(args):
    """(name, open store) pairs for a ``repro storage`` invocation."""
    import pathlib

    from repro.storage import discover_stores, open_seat_store

    directory = pathlib.Path(args.dir)
    stores = discover_stores(directory)
    if args.seat:
        wanted = set(args.seat)
        stores = [entry for entry in stores if entry[0] in wanted]
        missing = wanted - {name for name, _e, _p in stores}
        if missing:
            raise SystemExit(
                f"no seat store named {sorted(missing)} under {directory}"
            )
    if not stores:
        raise SystemExit(f"no seat stores found under {directory}")
    # auto_compact stays off: an offline tool must never kick a
    # background compaction on a store it only meant to inspect —
    # `storage compact` compacts explicitly.
    return [
        (
            name,
            open_seat_store(
                path,
                engine=engine,
                **({"auto_compact": False} if engine == "segmented" else {}),
            ),
        )
        for name, engine, path in stores
    ]


def _cmd_storage_status(args: argparse.Namespace) -> int:
    """Per-seat store inventory (opening performs crash cleanup)."""
    opened = _open_selected_stores(args)
    print(f"{len(opened)} seat stores under {args.dir}")
    for name, store in opened:
        try:
            status = store.status()
            records = sum(len(plist) for plist in store.replay().values())
            if store.engine == "segmented":
                layout = (
                    f"snapshot {status['snapshot'] or '-'}, "
                    f"{status['segments']} segments "
                    f"(live seg-{status['live_segment']:08d})"
                )
                if status["last_compaction_error"]:
                    layout += (
                        f", LAST COMPACTION FAILED: "
                        f"{status['last_compaction_error']}"
                    )
            else:
                layout = "flat line-per-record WAL"
            print(
                f"  {name:>20}  {store.engine:>9}  "
                f"{records:7d} live records  "
                f"{status['disk_bytes']:9d} B  {layout}"
            )
        finally:
            store.close()
    return 0


def _cmd_storage_compact(args: argparse.Namespace) -> int:
    """Snapshot every (selected) store in place; prints reclaimed bytes."""
    opened = _open_selected_stores(args)
    for name, store in opened:
        try:
            before = store.status()["disk_bytes"]
            written = store.compact()
            after = store.status()["disk_bytes"]
            if store.engine == "segmented" and written == 0 and before == after:
                print(f"  {name:>20}  {store.engine:>9}  already compact")
            else:
                print(
                    f"  {name:>20}  {store.engine:>9}  snapshot of "
                    f"{written} records, {before} -> {after} B on disk"
                )
        finally:
            store.close()
    return 0


def _cmd_storage_migrate(args: argparse.Namespace) -> int:
    """Ingest legacy flat ``.wal`` files into the segmented engine."""
    import pathlib

    from repro.storage import discover_stores, migrate_flat_wal

    directory = pathlib.Path(args.dir)
    found = discover_stores(directory)
    if args.seat:
        # Filter up front: everything below — the already-migrated
        # handling and its --delete-flat cleanup included — must only
        # ever touch the seats the operator named.
        wanted = set(args.seat)
        found = [entry for entry in found if entry[0] in wanted]
    migrated_names = {
        name for name, engine, _path in found if engine == "segmented"
    }
    flat = []
    for name, engine, path in found:
        if engine != "flat":
            continue
        if name in migrated_names:
            # A kept-source re-run: the segmented copy already exists
            # and has been diverging since the cut-over; re-ingesting
            # the stale flat file over it would be wrong twice. With
            # --delete-flat this run *is* the cut-over confirmation:
            # drop the stale fallback copy.
            if args.delete_flat:
                path.unlink(missing_ok=True)
                path.with_suffix(".compact").unlink(missing_ok=True)
                print(
                    f"  {name:>20}  already migrated; removed stale "
                    f"{path.name}"
                )
            else:
                print(f"  {name:>20}  already migrated, skipping")
            continue
        flat.append((name, path))
    if not flat:
        print(f"no flat seat stores under {directory}; nothing to migrate")
        return 0
    for name, path in flat:
        count = migrate_flat_wal(
            path, delete_source=args.delete_flat
        )
        print(
            f"  {name:>20}  {count} live records -> {path.with_suffix('')}"
            + (f"  (removed {path.name})" if args.delete_flat else "")
        )
    print(
        f"migrated {len(flat)} seats; redeploy with storage='segmented' "
        f"to recover from snapshots"
        + (
            ""
            if args.delete_flat
            else " (source .wal files kept as fallback; note the "
            "segmented copies stop tracking them from here on — "
            "re-run with --delete-flat once the cut-over sticks)"
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Zerber (EDBT 2008) reproduction — demo and analysis CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="index a toy corpus and search it")
    demo.add_argument("--documents", type=int, default=30)
    demo.add_argument("--seed", type=int, default=7)
    demo.set_defaults(func=_cmd_demo)

    merge = sub.add_parser("merge", help="run a merging heuristic, print stats")
    merge.add_argument("--heuristic", choices=("dfm", "bfm", "udm"), default="dfm")
    merge.add_argument("--documents", type=int, default=2_000)
    merge.add_argument("--vocabulary", type=int, default=5_000)
    merge.add_argument("--lists", type=int, default=64)
    merge.set_defaults(func=_cmd_merge)

    audit = sub.add_parser("audit", help="confidentiality audit of a config")
    audit.add_argument("--documents", type=int, default=2_000)
    audit.add_argument("--vocabulary", type=int, default=5_000)
    audit.add_argument("--lists", type=int, default=64)
    audit.add_argument("--seed", type=int, default=7)
    audit.set_defaults(func=_cmd_audit)

    bandwidth = sub.add_parser("bandwidth", help="the §7.3 network model")
    bandwidth.add_argument("--elements-per-term", type=float, default=2_700)
    bandwidth.add_argument("--terms-per-query", type=float, default=2.45)
    bandwidth.add_argument("--k", type=int, default=2)
    bandwidth.add_argument("--n", type=int, default=3)
    bandwidth.set_defaults(func=_cmd_bandwidth)

    cluster = sub.add_parser(
        "cluster", help="the sharded multi-pod cluster engine"
    )
    cluster_sub = cluster.add_subparsers(dest="cluster_command", required=True)

    def _common_cluster_args(p):
        p.add_argument("--pods", type=int, default=3)
        p.add_argument("--n", type=int, default=6)
        p.add_argument("--k", type=int, default=3)
        p.add_argument(
            "--replication", type=int, default=1,
            help="pods each merged posting list lives on (>= 2 "
                 "tolerates whole-pod loss)",
        )
        p.add_argument("--documents", type=int, default=40)
        p.add_argument("--seed", type=int, default=7)
        p.add_argument(
            "--cache-tier", choices=("lru", "tinylfu"), default=None,
            help="embed a shared L2 cache-tier endpoint with this "
                 "eviction/admission policy",
        )
        p.add_argument(
            "--l1-entries", type=int, default=0,
            help="searcher-local L1 capacity in reconstructed posting "
                 "lists (0 disables; requires --cache-tier to matter "
                 "for the shared tier, but works standalone too)",
        )

    deploy = cluster_sub.add_parser(
        "deploy", help="stand up a cluster, print topology and placement"
    )
    _common_cluster_args(deploy)
    deploy.set_defaults(func=_cmd_cluster_deploy)

    csearch = cluster_sub.add_parser(
        "search", help="run a batched, cached cluster query"
    )
    _common_cluster_args(csearch)
    csearch.add_argument("--terms", nargs="+", default=None)
    csearch.add_argument("--top-k", type=int, default=5)
    csearch.add_argument(
        "--kill", action="append", metavar="POD:SLOT",
        help="take servers down before querying (repeatable)",
    )
    csearch.add_argument(
        "--naive", action="store_true",
        help="per-term fan-out instead of batched lookups",
    )
    csearch.set_defaults(func=_cmd_cluster_search)

    ckill = cluster_sub.add_parser(
        "kill-server", help="failure drill: kill servers, verify failover"
    )
    _common_cluster_args(ckill)
    ckill.add_argument("--terms", nargs="+", default=None)
    ckill.add_argument("--top-k", type=int, default=5)
    ckill.add_argument(
        "--kill", action="append", metavar="POD:SLOT",
        help="servers to down; default kills one per pod",
    )
    ckill.set_defaults(func=_cmd_cluster_kill)

    ckillpod = cluster_sub.add_parser(
        "kill-pod",
        help="pod-loss drill: kill a whole pod, verify byte-identical "
             "answers, restart, re-provision",
    )
    _common_cluster_args(ckillpod)
    ckillpod.add_argument("--terms", nargs="+", default=None)
    ckillpod.add_argument("--top-k", type=int, default=5)
    ckillpod.add_argument(
        "--pod", type=int, default=0, help="pod index to take down"
    )
    ckillpod.set_defaults(func=_cmd_cluster_kill_pod, replication=2)

    crepair = cluster_sub.add_parser(
        "repair",
        help="anti-entropy drill: drop writes on dead seats, heal them "
             "with coordinator sweeps alone (no owner re-provisioning)",
    )
    _common_cluster_args(crepair)
    crepair.add_argument("--terms", nargs="+", default=None)
    crepair.add_argument(
        "--kill", action="append", metavar="POD:SLOT",
        help="seats to down before the write; default kills 0:0",
    )
    crepair.add_argument(
        "--budget", type=int, default=None,
        help="max seats healed per sweep (default unlimited)",
    )
    crepair.add_argument(
        "--max-sweeps", type=int, default=8,
        help="give up after this many sweeps",
    )
    crepair.set_defaults(func=_cmd_cluster_repair, top_k=5, replication=2)

    cstatus = cluster_sub.add_parser(
        "status",
        help="observability snapshot: pods, seats, placement, "
             "per-pod EWMA read latency",
    )
    _common_cluster_args(cstatus)
    cstatus.add_argument("--terms", nargs="+", default=None)
    cstatus.add_argument(
        "--kill", action="append", metavar="POD:SLOT",
        help="take servers down before the snapshot (repeatable)",
    )
    cstatus.add_argument(
        "--warmup-queries", type=int, default=3,
        help="queries run first so latency/load columns are populated",
    )
    cstatus.set_defaults(func=_cmd_cluster_status, top_k=5)

    ctop = cluster_sub.add_parser(
        "top",
        help="live dashboard: per-pod read rates, latency quantiles, "
             "cache hit rates, breaker/admission/repair state",
    )
    _common_cluster_args(ctop)
    ctop.add_argument("--terms", nargs="+", default=None)
    ctop.add_argument(
        "--iterations", type=int, default=3,
        help="frames to render before exiting (no curses, no TTY needed)",
    )
    ctop.add_argument(
        "--interval", type=float, default=0.2,
        help="seconds between metric polls; rates are per-interval deltas",
    )
    ctop.set_defaults(func=_cmd_cluster_top, top_k=5)

    serve = sub.add_parser(
        "serve",
        help="serve the deterministic cluster scenario over the wire "
             "protocol on TCP",
    )
    serve.add_argument("--pods", type=int, default=3)
    serve.add_argument("--n", type=int, default=6)
    serve.add_argument("--k", type=int, default=3)
    serve.add_argument("--replication", type=int, default=2)
    serve.add_argument("--documents", type=int, default=40)
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 picks a free one; printed on startup)",
    )
    serve.add_argument(
        "--transport", choices=("async-socket", "socket"),
        default="async-socket",
        help="serving stack: pipelined asyncio multiplexing (default) "
             "or the classic thread-per-connection backend",
    )
    serve.add_argument(
        "--idle-timeout", type=float, default=300.0,
        help="close connections quiet for this many seconds "
             "(default: 300)",
    )
    serve.add_argument(
        "--duration", type=float, default=None,
        help="serve for this many seconds then exit (default: forever)",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=5.0,
        help="on SIGTERM/SIGINT, wait this long for in-flight requests "
             "before cutting them off and exiting nonzero (default: 5)",
    )
    serve.add_argument(
        "--cache-tier", choices=("lru", "tinylfu"), default=None,
        help="also serve a shared cache-tier endpoint ('cache-tier') "
             "with this eviction/admission policy",
    )
    serve.set_defaults(func=_cmd_serve, l1_entries=0)

    cache = sub.add_parser(
        "cache",
        help="the tiered cache subsystem (searcher L1 + shared L2 tier)",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)

    chstatus = cache_sub.add_parser(
        "status",
        help="stand up a cached cluster, run a warm-up workload, and "
             "render L1/L2 hit statistics (L2 stats fetched over the "
             "wire protocol's CacheStats message)",
    )
    _common_cluster_args(chstatus)
    chstatus.add_argument(
        "--warmup-queries", type=int, default=6,
        help="repeat queries run first so the tiers have traffic",
    )
    chstatus.set_defaults(
        func=_cmd_cache_status, cache_tier_default="lru",
        l1_default=128, terms=None,
    )

    storage = sub.add_parser(
        "storage",
        help="offline seat-store tooling (status, compaction, migration)",
    )
    storage_sub = storage.add_subparsers(dest="storage_command", required=True)

    def _common_storage_args(p):
        p.add_argument(
            "--dir", required=True,
            help="the cluster's WAL directory (one store per seat)",
        )
        p.add_argument(
            "--seat", action="append", metavar="SERVER_ID",
            help="limit to one seat store (repeatable; default: all)",
        )

    sstatus = storage_sub.add_parser(
        "status",
        help="inventory every seat store: engine, records, bytes, layout",
    )
    _common_storage_args(sstatus)
    sstatus.set_defaults(func=_cmd_storage_status)

    scompact = storage_sub.add_parser(
        "compact",
        help="snapshot stores in place (flat: rewrite; segmented: "
             "snapshot + manifest swap + GC)",
    )
    _common_storage_args(scompact)
    scompact.set_defaults(func=_cmd_storage_compact)

    smigrate = storage_sub.add_parser(
        "migrate",
        help="ingest legacy flat .wal files into segmented directories",
    )
    _common_storage_args(smigrate)
    smigrate.add_argument(
        "--delete-flat", action="store_true",
        help="delete the source .wal files after migration (default "
             "keeps them, so a botched cut-over can fall back)",
    )
    smigrate.set_defaults(func=_cmd_storage_migrate)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
