"""The per-seat storage engines behind ``SeatStore``.

Two engines share one facade contract (``append_inserts`` /
``append_deletes`` / ``replay`` / ``compact`` / ``status`` / ``close`` /
``destroy`` plus a ``records_appended`` counter):

- ``"flat"`` — the original line-per-record
  :class:`~repro.server.persistence.PostingLog`. Recovery replays the
  entire history; compaction rewrites the whole file in one
  stop-the-world pass. Fine for small seats, the §5.4.1 baseline.
- ``"segmented"`` — :class:`SegmentedStore`: a rotated binary segment
  log (LEB128 + CRC per record), immutable snapshots written by a
  **background compactor** while the seat keeps serving, and a fsync'd
  manifest naming exactly one snapshot + segment suffix. Recovery loads
  the snapshot and replays only the suffix; compaction never blocks the
  write path for longer than one segment rotation (a file close/open).

Both engines store shares and public IDs only — nothing on disk is more
useful to a thief than a compromised server already is (§5).
"""

from __future__ import annotations

import pathlib
import shutil
import threading
from typing import Iterable

from repro.errors import StorageError
from repro.server.index_server import DeleteOp, InsertOp, ShareRecord
from repro.server.persistence import PostingLog, fsync_dir
from repro.storage.manifest import (
    MANIFEST_NAME,
    Manifest,
    load_manifest,
    write_manifest,
)
from repro.storage.segment import (
    HEADER_LEN,
    SegmentWriter,
    encode_delete,
    encode_insert,
    iter_operations,
    repair_segment_tail,
    scan_segment_numbers,
    segment_name,
    segment_number,
)
from repro.storage.snapshot import load_snapshot, write_snapshot

#: Rotate the live segment once it crosses this size.
DEFAULT_SEGMENT_BYTES = 1 << 20

#: Kick the background compactor once this many sealed segments pile up.
DEFAULT_COMPACT_SEGMENTS = 4


def apply_operation(
    state: dict[int, dict[int, ShareRecord]], op: InsertOp | DeleteOp
) -> None:
    """Fold one logged operation into a replayed store state."""
    if isinstance(op, InsertOp):
        plist = state.get(op.pl_id)
        if plist is None:
            plist = state[op.pl_id] = {}
        plist[op.element_id] = ShareRecord(
            element_id=op.element_id,
            group_id=op.group_id,
            share_y=op.share_y,
        )
    else:
        plist = state.get(op.pl_id)
        if plist is not None:
            plist.pop(op.element_id, None)


def _snapshot_filename(first_segment: int) -> str:
    return f"snap-{first_segment:08d}.zsnap"


class SegmentedStore:
    """Segment-log + snapshot storage for one seat (``storage="segmented"``).

    Thread model: appends and lifecycle take ``_lock``; compactions
    serialize on ``_compact_gate`` and hold ``_lock`` only for the
    segment rotation at the start and the manifest swap at the end —
    the state rebuild and snapshot write run concurrently with live
    appends, which land in segments the snapshot does not cover
    (copy-on-write by construction: sealed segments are immutable).
    """

    engine = "segmented"

    def __init__(
        self,
        directory: str | pathlib.Path,
        *,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        compact_segments: int = DEFAULT_COMPACT_SEGMENTS,
        auto_compact: bool = True,
    ) -> None:
        """Open (creating or crash-recovering) one seat's storage directory.

        Opening is itself the first half of recovery: stale ``.tmp``
        files are deleted, files the manifest does not name (segments a
        finished compaction failed to GC, superseded or half-promoted
        snapshots) are removed, and a torn tail on the newest segment is
        truncated back to its last whole record — so by the time the
        constructor returns, the directory contains exactly one
        manifest-consistent state.

        Args:
            directory: the seat's storage directory (created if absent).
            segment_bytes: rotation threshold for the live segment.
            compact_segments: sealed-segment count that triggers the
                background compactor (when ``auto_compact``).
            auto_compact: kick compactions automatically on rotation;
                disable for deterministic tests / offline tooling.
        """
        if segment_bytes <= HEADER_LEN:
            raise StorageError(
                f"segment_bytes must exceed the {HEADER_LEN}-byte header"
            )
        self._dir = pathlib.Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._segment_bytes = segment_bytes
        self._compact_segments = max(1, compact_segments)
        self._auto_compact = auto_compact
        self._lock = threading.RLock()
        self._compact_gate = threading.Lock()
        self._compactor: threading.Thread | None = None
        self._closed = False
        #: Appends recorded through this handle (parity with PostingLog).
        self.records_appended = 0
        #: The last background compaction failure, for the status surface
        #: (a daemon thread must never take the seat down with it).
        self.last_compaction_error: Exception | None = None
        #: Test seam: called with a label at each compaction crash point.
        self._crash_hook = None
        #: True while compact() itself rotates, so the rotation it
        #: performs cannot recursively kick a background compaction.
        self._suppress_auto = False

        # -- crash cleanup + open ------------------------------------------
        for stale in self._dir.glob("*.tmp"):
            stale.unlink(missing_ok=True)
        manifest = load_manifest(self._dir)
        if manifest is None:
            manifest = Manifest(snapshot=None, first_segment=1)
            write_manifest(self._dir, manifest)
        self._manifest = manifest
        if manifest.snapshot is not None and not (
            self._dir / manifest.snapshot
        ).exists():
            raise StorageError(
                f"{self._dir}: manifest names missing snapshot "
                f"{manifest.snapshot!r}"
            )
        for name in list(p.name for p in self._dir.iterdir()):
            number = segment_number(name)
            if number is not None and number < manifest.first_segment:
                (self._dir / name).unlink(missing_ok=True)
            elif name.endswith(".zsnap") and name != manifest.snapshot:
                (self._dir / name).unlink(missing_ok=True)
        numbers = scan_segment_numbers(self._dir)
        if numbers:
            repair_segment_tail(self._dir / segment_name(numbers[-1]))
            live = numbers[-1]
        else:
            live = manifest.first_segment
        self._writer = SegmentWriter(self._dir / segment_name(live), live)
        if self._writer.tell() >= self._segment_bytes:
            self._rotate_locked()
        fsync_dir(self._dir)

    # -- writing ----------------------------------------------------------

    def append_inserts(self, operations: Iterable[InsertOp]) -> int:
        """Log one accepted insert batch (one fsync for the whole batch)."""
        frames = bytearray()
        count = 0
        for op in operations:
            encode_insert(frames, op)
            count += 1
        return self._append(frames, count)

    def append_deletes(self, operations: Iterable[DeleteOp]) -> int:
        """Log accepted deletions."""
        frames = bytearray()
        count = 0
        for op in operations:
            encode_delete(frames, op)
            count += 1
        return self._append(frames, count)

    def _append(self, frames: bytearray, count: int) -> int:
        if count == 0:
            return 0
        with self._lock:
            self._ensure_open()
            self._writer.append(bytes(frames))
            self.records_appended += count
            if self._writer.tell() >= self._segment_bytes:
                self._rotate_locked()
        return count

    def _rotate_locked(self) -> None:
        """Seal the live segment and start the next (lock held)."""
        sealed = self._writer
        sealed.close()
        nxt = sealed.number + 1
        self._writer = SegmentWriter(self._dir / segment_name(nxt), nxt)
        fsync_dir(self._dir)
        if (
            self._auto_compact
            and nxt - self._manifest.first_segment >= self._compact_segments
        ):
            self._start_background_compaction_locked()

    # -- recovery ----------------------------------------------------------

    def replay(self) -> dict[int, dict[int, ShareRecord]]:
        """Rebuild the store state: snapshot + segment-suffix replay.

        Returns the ``pl_id -> {element_id -> ShareRecord}`` layout
        :meth:`IndexServer.bulk_load` accepts.

        Raises:
            StorageError: a manifest-named snapshot fails validation, or
                any segment but the newest is damaged — inconsistency
                recovery must refuse to paper over.
        """
        with self._lock:
            manifest = self._manifest
            state: dict[int, dict[int, ShareRecord]] = (
                {}
                if manifest.snapshot is None
                else load_snapshot(self._dir / manifest.snapshot)
            )
            numbers = [
                n
                for n in scan_segment_numbers(self._dir)
                if n >= manifest.first_segment
            ]
            for op in iter_operations(self._dir, numbers):
                apply_operation(state, op)
        return state

    # -- compaction --------------------------------------------------------

    def compact(self) -> int:
        """Write a snapshot of everything sealed so far; returns its size.

        Rotation aside (a file close/open under the lock), the seat
        keeps serving throughout: the state rebuild reads only sealed,
        immutable files and the previous snapshot, concurrent appends
        land in segments the new snapshot does not claim to cover, and
        the manifest swap at the end is the single atomic commit point.
        After the swap, superseded segments and the old snapshot are
        garbage-collected.
        """
        with self._compact_gate:
            with self._lock:
                self._ensure_open()
                base = self._manifest
                if self._writer.tell() > HEADER_LEN:
                    self._suppress_auto = True
                    try:
                        self._rotate_locked()
                    finally:
                        self._suppress_auto = False
                elif (
                    self._writer.number == base.first_segment
                    and base.snapshot is not None
                ):
                    return 0  # nothing sealed since the last snapshot
                new_first = self._writer.number
                sealed = [
                    n
                    for n in scan_segment_numbers(self._dir)
                    if base.first_segment <= n < new_first
                ]
            # -- the slow part runs without the lock ----------------------
            self._hook("compact-start")
            state: dict[int, dict[int, ShareRecord]] = (
                {}
                if base.snapshot is None
                else load_snapshot(self._dir / base.snapshot)
            )
            for op in iter_operations(self._dir, sealed):
                apply_operation(state, op)
            self._hook("state-built")
            new_name = _snapshot_filename(new_first)
            count = write_snapshot(self._dir / new_name, state)
            self._hook("snapshot-written")
            with self._lock:
                new_manifest = Manifest(
                    snapshot=new_name, first_segment=new_first
                )
                write_manifest(self._dir, new_manifest)
                self._manifest = new_manifest
            self._hook("manifest-swapped")
            for number in sealed:
                (self._dir / segment_name(number)).unlink(missing_ok=True)
            if base.snapshot is not None and base.snapshot != new_name:
                (self._dir / base.snapshot).unlink(missing_ok=True)
            fsync_dir(self._dir)
            self._hook("gc-done")
            return count

    def _start_background_compaction_locked(self) -> None:
        if self._suppress_auto or self._closed:
            return
        if self._compactor is not None and self._compactor.is_alive():
            return
        self._compactor = threading.Thread(
            target=self._background_compact,
            name=f"zerber-compactor-{self._dir.name}",
            daemon=True,
        )
        self._compactor.start()

    def _background_compact(self) -> None:
        try:
            self.compact()
        except Exception as exc:  # noqa: BLE001 - surfaced via status()
            self.last_compaction_error = exc

    def wait_for_compaction(self) -> None:
        """Block until any in-flight background compaction finishes."""
        compactor = self._compactor
        if compactor is not None:
            compactor.join()

    def _hook(self, label: str) -> None:
        if self._crash_hook is not None:
            self._crash_hook(label)

    # -- lifecycle ---------------------------------------------------------

    def _ensure_open(self) -> None:
        if self._closed:
            raise StorageError(f"{self._dir}: store is closed")

    def close(self) -> None:
        """Flush, reap the compactor thread, release the handles."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self.wait_for_compaction()
        with self._lock:
            self._writer.close()

    def destroy(self) -> None:
        """Close and delete the whole storage directory (orphan cleanup:
        a retired seat's segments must not outlive it)."""
        self.close()
        shutil.rmtree(self._dir, ignore_errors=True)

    # -- operator surface --------------------------------------------------

    def disk_bytes(self) -> int:
        """Bytes the directory currently occupies."""
        total = 0
        for entry in self._dir.iterdir():
            try:
                total += entry.stat().st_size
            except OSError:
                continue
        return total

    def status(self) -> dict:
        """Operator snapshot (``repro storage status`` renders this)."""
        with self._lock:
            numbers = [
                n
                for n in scan_segment_numbers(self._dir)
                if n >= self._manifest.first_segment
            ]
            return {
                "engine": self.engine,
                "path": str(self._dir),
                "records_appended": self.records_appended,
                "disk_bytes": self.disk_bytes(),
                "snapshot": self._manifest.snapshot,
                "first_segment": self._manifest.first_segment,
                "live_segment": self._writer.number,
                "segments": len(numbers),
                "compacting": self._compactor is not None
                and self._compactor.is_alive(),
                "last_compaction_error": (
                    repr(self.last_compaction_error)
                    if self.last_compaction_error is not None
                    else None
                ),
            }


#: The engines ``open_seat_store`` knows how to build.
ENGINES = ("flat", "segmented")


def open_seat_store(
    path: str | pathlib.Path, engine: str = "flat", **options
):
    """Open one seat's durable store (the deployment's engine selector).

    Args:
        path: a ``.wal`` file for ``"flat"``, a directory for
            ``"segmented"``.
        engine: ``"flat"`` or ``"segmented"``.
        options: engine-specific knobs (segmented only: segment_bytes,
            compact_segments, auto_compact).

    Raises:
        StorageError: unknown engine, or options passed to the flat
            engine (which has none).
    """
    if engine == "flat":
        if options:
            raise StorageError(
                f"the flat engine takes no options, got {sorted(options)}"
            )
        return PostingLog(path)
    if engine == "segmented":
        return SegmentedStore(path, **options)
    raise StorageError(
        f"unknown storage engine {engine!r}; expected one of {ENGINES}"
    )


def discover_stores(
    directory: str | pathlib.Path,
) -> list[tuple[str, str, pathlib.Path]]:
    """Find every seat store under a WAL directory.

    Returns ``(seat_name, engine, path)`` triples: ``*.wal`` files are
    flat seats, subdirectories containing a ``MANIFEST`` are segmented
    seats. A ``*.migrating`` staging directory left by a crashed
    migration is *not* a store (the migration's atomic rename never
    committed) and is skipped. Sorted by seat name.
    """
    directory = pathlib.Path(directory)
    found: list[tuple[str, str, pathlib.Path]] = []
    if not directory.exists():
        return found
    for entry in sorted(directory.iterdir()):
        if entry.is_file() and entry.suffix == ".wal":
            found.append((entry.stem, "flat", entry))
        elif (
            entry.is_dir()
            and not entry.name.endswith(".migrating")
            and (entry / MANIFEST_NAME).exists()
        ):
            found.append((entry.name, "segmented", entry))
    return found
