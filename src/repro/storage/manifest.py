"""The fsync'd manifest — the one pointer that defines a seat's state.

``MANIFEST`` in a seat's storage directory names the current snapshot
(or none) and the first live segment number. Everything else on disk is
derived state: recovery loads exactly the named snapshot, replays
exactly the segments numbered ``first_segment`` and up, and treats any
other file — older segments, superseded or half-written snapshots,
``.tmp`` leftovers — as garbage to delete. Because the manifest is
replaced atomically (temp file, fsync, ``os.replace``, directory fsync)
a crash at *any* instant leaves either the old pointer or the new one,
never a torn in-between, which is the whole crash-consistency argument
of the engine in one sentence.

Format: one line, LEB128-framed would be overkill for three fields —
``ZSM1 <snapshot-name-or-dash> <first_segment> <crc32-of-the-fields>``.
The CRC rejects a torn manifest write on filesystems that do not make
``O_TRUNC``-free renames atomic.
"""

from __future__ import annotations

import os
import pathlib
import zlib
from dataclasses import dataclass

from repro.errors import StorageError
from repro.server.persistence import fsync_dir

MANIFEST_NAME = "MANIFEST"
_MANIFEST_MAGIC = "ZSM1"


@dataclass(frozen=True)
class Manifest:
    """The recovery pointer: which snapshot, which segment suffix.

    Attributes:
        snapshot: file name of the current snapshot inside the storage
            directory, or None before the first compaction.
        first_segment: the lowest segment number recovery must replay
            (segments below it are covered by the snapshot).
    """

    snapshot: str | None
    first_segment: int


def manifest_path(directory: str | pathlib.Path) -> pathlib.Path:
    return pathlib.Path(directory) / MANIFEST_NAME


def load_manifest(directory: str | pathlib.Path) -> Manifest | None:
    """Read a directory's manifest (None when the store is brand new).

    Raises:
        StorageError: the manifest exists but is garbage — wrong magic,
            wrong field count, or a CRC mismatch. A store whose pointer
            cannot be trusted must not guess at its own state.
    """
    path = manifest_path(directory)
    if not path.exists():
        return None
    text = path.read_text(encoding="ascii").strip()
    parts = text.split()
    if len(parts) != 4 or parts[0] != _MANIFEST_MAGIC:
        raise StorageError(f"{path}: malformed manifest {text!r}")
    fields = " ".join(parts[:3])
    try:
        stored_crc = int(parts[3])
        first_segment = int(parts[2])
    except ValueError as exc:
        raise StorageError(f"{path}: malformed manifest {text!r}") from exc
    if zlib.crc32(fields.encode("ascii")) != stored_crc:
        raise StorageError(f"{path}: manifest CRC mismatch")
    snapshot = None if parts[1] == "-" else parts[1]
    return Manifest(snapshot=snapshot, first_segment=first_segment)


def write_manifest(
    directory: str | pathlib.Path, manifest: Manifest
) -> None:
    """Atomically replace the manifest and make the swap durable."""
    directory = pathlib.Path(directory)
    fields = (
        f"{_MANIFEST_MAGIC} {manifest.snapshot or '-'} "
        f"{manifest.first_segment}"
    )
    crc = zlib.crc32(fields.encode("ascii"))
    tmp = directory / (MANIFEST_NAME + ".tmp")
    with open(tmp, "w", encoding="ascii") as handle:
        handle.write(f"{fields} {crc}\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, manifest_path(directory))
    fsync_dir(directory)
