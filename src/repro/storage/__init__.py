"""Per-seat storage engines: flat WAL and the segmented snapshot store.

The public surface of the storage subsystem:

- :func:`open_seat_store` — the engine selector the cluster uses
  (``storage="flat" | "segmented"``);
- :class:`SegmentedStore` — binary segment log + immutable snapshots +
  background compaction + fsync'd manifest;
- :class:`~repro.server.persistence.PostingLog` — the flat engine
  (re-exported; it lives with the paper-era server code);
- :func:`migrate_flat_wal` — legacy flat-WAL ingestion;
- :func:`discover_stores` — offline tooling's directory scanner
  (``repro storage status | compact | migrate``).

See ``docs/ARCHITECTURE.md`` ("Storage engine") for the on-disk format
and the crash-consistency argument.
"""

from repro.server.persistence import PostingLog
from repro.storage.engine import (
    DEFAULT_COMPACT_SEGMENTS,
    DEFAULT_SEGMENT_BYTES,
    ENGINES,
    SegmentedStore,
    apply_operation,
    discover_stores,
    open_seat_store,
)
from repro.storage.manifest import Manifest, load_manifest, write_manifest
from repro.storage.migrate import migrate_flat_wal
from repro.storage.snapshot import load_snapshot, write_snapshot

__all__ = [
    "DEFAULT_COMPACT_SEGMENTS",
    "DEFAULT_SEGMENT_BYTES",
    "ENGINES",
    "Manifest",
    "PostingLog",
    "SegmentedStore",
    "apply_operation",
    "discover_stores",
    "load_manifest",
    "load_snapshot",
    "migrate_flat_wal",
    "open_seat_store",
    "write_manifest",
    "write_snapshot",
]
