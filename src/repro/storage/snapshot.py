"""Immutable snapshot files — the segmented engine's bulk-load format.

A snapshot is the full live state at a compaction point, so recovery
loads it wholesale and replays only the segment suffix written since.
Layout (``snap-00000007.zsnap``, numbered by the first segment the
snapshot does *not* cover)::

    +------+---------+--------------+-------+----------------+-----+
    | ZSNP | version | widths (4 B) | count |  packed records | CRC |
    +------+---------+--------------+-------+----------------+-----+

Records are **fixed-width big-endian integers** — pl_id, element_id,
group_id at ``id_width`` bytes each and the share at ``share_width``
bytes — rather than varints: recovery is the sole reason this file
exists, and decoding fixed strides beats walking LEB128 byte by byte
over a hundred thousand records. The writer pads both widths up to
struct-compatible sizes (1/2/4/8 bytes; shares wider than 8 bytes — the
default 64-bit+ prime needs 9 — are split into a high part + an 8-byte
low word), so loading is one ``struct.iter_unpack`` sweep at C speed; a
reader that meets widths it has no fast path for falls back to
``int.from_bytes``. The widths live in the header, the count is a
varint, and a trailing CRC32 over everything after the magic+version
seals the file: a snapshot either loads exactly or is rejected — there
is no such thing as a partially valid snapshot, because the manifest
only ever names one that was fsynced before the pointer swap.

As everywhere else on disk: shares only, never secrets (§5).
"""

from __future__ import annotations

import os
import pathlib
import struct
import zlib

from repro.errors import ProtocolError, StorageError
from repro.protocol.codec import Reader, write_uint
from repro.server.index_server import ShareRecord
from repro.server.persistence import fsync_dir

SNAPSHOT_MAGIC = b"ZSNP"
SNAPSHOT_VERSION = 1
_PREFIX_LEN = len(SNAPSHOT_MAGIC) + 1  # CRC covers everything after this

#: struct format characters for the widths the writer emits.
_STRUCT_CHAR = {1: "B", 2: "H", 4: "I", 8: "Q"}


def _pad_width(natural: int) -> int:
    """The smallest struct-decodable width >= ``natural`` (<= 8)."""
    for width in (1, 2, 4, 8):
        if natural <= width:
            return width
    return natural  # > 8: caller splits or falls back


def snapshot_bytes(
    store: dict[int, dict[int, ShareRecord]],
) -> tuple[bytes, int]:
    """Encode one store state as a complete, CRC-sealed snapshot image.

    Returns ``(image, record_count)``. The image is the exact byte
    sequence :func:`write_snapshot` puts on disk — magic, version,
    widths, count, packed records, trailing CRC32 — so the same sealed
    format serves both the durable file and the wire (snapshot-shipping
    rebalance and anti-entropy repair move these bytes inside an
    ``AdoptSnapshotRequest``; the receiver's CRC check is therefore end
    to end, disk or socket alike).
    """
    max_id = 1
    max_share = 1
    count = 0
    for pl_id, plist in store.items():
        if not plist:
            continue
        count += len(plist)
        # Element IDs are the keys; per-field C-level max() sweeps beat
        # one Python-level loop over records by a wide margin.
        max_id = max(max_id, pl_id, max(plist))
        max_id = max(max_id, max(r.group_id for r in plist.values()))
        max_share = max(max_share, max(r.share_y for r in plist.values()))
    id_width = _pad_width((max_id.bit_length() + 7) // 8)
    natural_share = (max_share.bit_length() + 7) // 8
    if natural_share <= 8:
        share_width = _pad_width(natural_share)
    elif natural_share <= 16:
        # High part padded to a struct width + an 8-byte low word.
        share_width = _pad_width(natural_share - 8) + 8
    else:  # pragma: no cover - shares beyond 128 bits
        share_width = natural_share
    body = bytearray()
    body.append(id_width)
    body.append(0)  # reserved
    body.append(0)  # reserved
    body.append(share_width)
    write_uint(body, count)
    id_char = _STRUCT_CHAR.get(id_width)
    if id_char and share_width in _STRUCT_CHAR:
        # One struct pack per record (the loader's iter_unpack twin).
        pack = struct.Struct(
            ">" + id_char * 3 + _STRUCT_CHAR[share_width]
        ).pack
        for pl_id in sorted(store):
            plist = store[pl_id]
            body += b"".join(
                pack(pl_id, element_id, record.group_id, record.share_y)
                for element_id, record in sorted(plist.items())
            )
    elif id_char and share_width > 8 and share_width - 8 in _STRUCT_CHAR:
        # Wide shares (the 64-bit+ prime): high part + 8-byte low word.
        pack = struct.Struct(
            ">" + id_char * 3 + _STRUCT_CHAR[share_width - 8] + "Q"
        ).pack
        low_mask = (1 << 64) - 1
        for pl_id in sorted(store):
            plist = store[pl_id]
            body += b"".join(
                pack(
                    pl_id,
                    element_id,
                    record.group_id,
                    record.share_y >> 64,
                    record.share_y & low_mask,
                )
                for element_id, record in sorted(plist.items())
            )
    else:  # pragma: no cover - widths with no struct fast path
        for pl_id in sorted(store):
            plist = store[pl_id]
            for element_id in sorted(plist):
                record = plist[element_id]
                body += pl_id.to_bytes(id_width, "big")
                body += record.element_id.to_bytes(id_width, "big")
                body += record.group_id.to_bytes(id_width, "big")
                body += record.share_y.to_bytes(share_width, "big")
    image = bytearray(SNAPSHOT_MAGIC)
    image.append(SNAPSHOT_VERSION)
    image += body
    image += zlib.crc32(body).to_bytes(4, "little")
    return bytes(image), count


def write_snapshot(
    path: str | pathlib.Path,
    store: dict[int, dict[int, ShareRecord]],
) -> int:
    """Write one snapshot atomically; returns the records written.

    The bytes go to ``<path>.tmp`` first, are fsynced, and only then
    renamed over ``path`` — a crash mid-write leaves a ``.tmp`` orphan
    the engine deletes on next open, never a half-snapshot under the
    real name. The directory is fsynced before returning: POSIX does
    not order the durability of two renames, so without this barrier a
    crash could persist the *manifest* swap that names this snapshot
    while the snapshot's own rename never reached disk — a pointer to
    a missing file, which recovery rightly refuses to guess around.
    """
    path = pathlib.Path(path)
    image, count = snapshot_bytes(store)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(image)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    fsync_dir(path.parent)
    return count


def parse_snapshot_bytes(
    data: bytes, source: str = "<wire>"
) -> dict[int, dict[int, ShareRecord]]:
    """Parse one sealed snapshot image into the in-memory store layout.

    ``source`` only labels error messages (a file path, or the default
    ``"<wire>"`` for shipped images).

    Raises:
        StorageError: bad magic/version, CRC mismatch, or truncation —
            a snapshot image is sealed, so any damage (disk rot or a
            torn wire frame) must stop loudly rather than load a
            silently shortened index.
    """
    path = source
    if len(data) < _PREFIX_LEN + 4 + 4:
        raise StorageError(f"{path}: snapshot truncated")
    if data[: len(SNAPSHOT_MAGIC)] != SNAPSHOT_MAGIC:
        raise StorageError(f"{path}: not a snapshot file (bad magic)")
    if data[len(SNAPSHOT_MAGIC)] != SNAPSHOT_VERSION:
        raise StorageError(
            f"{path}: unsupported snapshot version "
            f"{data[len(SNAPSHOT_MAGIC)]}"
        )
    body = data[_PREFIX_LEN:-4]
    stored_crc = int.from_bytes(data[-4:], "little")
    if zlib.crc32(body) != stored_crc:
        raise StorageError(f"{path}: snapshot CRC mismatch")
    id_width = body[0]
    share_width = body[3]
    if id_width == 0 or share_width == 0:
        raise StorageError(f"{path}: zero field width in snapshot header")
    reader = Reader(body, 4)
    try:
        count = reader.uint()
    except ProtocolError as exc:
        raise StorageError(f"{path}: bad snapshot record count") from exc
    stride = 3 * id_width + share_width
    offset = reader.pos
    if offset + count * stride != len(body):
        raise StorageError(
            f"{path}: snapshot body is {len(body) - offset} bytes, "
            f"expected {count} x {stride}"
        )
    store: dict[int, dict[int, ShareRecord]] = {}
    records = body[offset:]
    id_char = _STRUCT_CHAR.get(id_width)
    if id_char and share_width in _STRUCT_CHAR:
        # One C-speed sweep: every field is a struct-native width.
        fmt = ">" + id_char * 3 + _STRUCT_CHAR[share_width]
        for pl_id, element_id, group_id, share_y in struct.iter_unpack(
            fmt, records
        ):
            plist = store.get(pl_id)
            if plist is None:
                plist = store[pl_id] = {}
            plist[element_id] = ShareRecord(
                element_id=element_id, group_id=group_id, share_y=share_y
            )
        return store
    if id_char and share_width > 8 and share_width - 8 in _STRUCT_CHAR:
        # Wide shares (the 64-bit+ prime): high part + 8-byte low word.
        fmt = ">" + id_char * 3 + _STRUCT_CHAR[share_width - 8] + "Q"
        for pl_id, element_id, group_id, hi, lo in struct.iter_unpack(
            fmt, records
        ):
            plist = store.get(pl_id)
            if plist is None:
                plist = store[pl_id] = {}
            plist[element_id] = ShareRecord(
                element_id=element_id,
                group_id=group_id,
                share_y=(hi << 64) | lo,
            )
        return store
    # Robustness fallback for widths this reader has no fast path for.
    view = memoryview(body)
    share_at = 3 * id_width
    for _ in range(count):
        row = view[offset : offset + stride]
        pl_id = int.from_bytes(row[:id_width], "big")
        element_id = int.from_bytes(row[id_width : 2 * id_width], "big")
        group_id = int.from_bytes(row[2 * id_width : share_at], "big")
        share_y = int.from_bytes(row[share_at:], "big")
        plist = store.get(pl_id)
        if plist is None:
            plist = store[pl_id] = {}
        plist[element_id] = ShareRecord(
            element_id=element_id, group_id=group_id, share_y=share_y
        )
        offset += stride
    return store


def load_snapshot(
    path: str | pathlib.Path,
) -> dict[int, dict[int, ShareRecord]]:
    """Load one snapshot file into the server's in-memory store layout.

    Raises:
        StorageError: any damage — a manifest-named snapshot is sealed,
            so a failed validation means the disk lied and recovery must
            stop loudly rather than serve a silently shortened index.
    """
    return parse_snapshot_bytes(
        pathlib.Path(path).read_bytes(), source=str(path)
    )
