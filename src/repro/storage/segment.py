"""Binary append-only segment files — the segmented engine's WAL unit.

A seat's history is a numbered sequence of segment files
(``seg-00000001.zseg``, ``seg-00000002.zseg``, ...). Each file is::

    +------+---------+--------+--------+-----+
    | ZSEG | version | record | record | ... |
    +------+---------+--------+--------+-----+

and each record is framed with the PR 4 LEB128 codec plus a CRC::

    varint(len(payload))  payload  crc32(payload) as 4 LE bytes
    payload = kind byte (1 = insert, 2 = delete)
              + varint pl_id + varint element_id
              [+ varint group_id + varint share_y]   (inserts only)

Only shares ever reach disk — the §5 share-only-on-disk guarantee holds
byte for byte through the binary layout.

Torn-tail discipline: a crash can truncate the *last* record of the
*last* segment mid-write. :func:`read_segment` therefore distinguishes
a clean tail (``truncate_at == file size``) from a torn one, and
:func:`repair_segment_tail` truncates the file back to its last whole
record on open, so sealed segments are always clean and corruption
anywhere else is a hard :class:`~repro.errors.StorageError` — damage in
the middle of the history can never be mistaken for a crash artifact.
"""

from __future__ import annotations

import os
import pathlib
import re
import zlib
from dataclasses import dataclass
from typing import Iterator

from repro.errors import StorageError
from repro.protocol.codec import write_uint
from repro.server.index_server import DeleteOp, InsertOp

SEGMENT_MAGIC = b"ZSEG"
SEGMENT_VERSION = 1
HEADER_LEN = len(SEGMENT_MAGIC) + 1

KIND_INSERT = 1
KIND_DELETE = 2

_SEGMENT_NAME = re.compile(r"^seg-(\d{8})\.zseg$")


def segment_name(number: int) -> str:
    return f"seg-{number:08d}.zseg"


def segment_number(name: str) -> int | None:
    """The sequence number of a segment file name (None if not one)."""
    match = _SEGMENT_NAME.match(name)
    return int(match.group(1)) if match else None


def encode_insert(out: bytearray, op: InsertOp) -> None:
    """Append one framed insert record to ``out``."""
    payload = bytearray((KIND_INSERT,))
    write_uint(payload, op.pl_id)
    write_uint(payload, op.element_id)
    write_uint(payload, op.group_id)
    write_uint(payload, op.share_y)
    _frame(out, payload)


def encode_delete(out: bytearray, op: DeleteOp) -> None:
    """Append one framed delete record to ``out``."""
    payload = bytearray((KIND_DELETE,))
    write_uint(payload, op.pl_id)
    write_uint(payload, op.element_id)
    _frame(out, payload)


def _frame(out: bytearray, payload: bytearray) -> None:
    write_uint(out, len(payload))
    out.extend(payload)
    out.extend(zlib.crc32(payload).to_bytes(4, "little"))


@dataclass
class SegmentScan:
    """What one pass over a segment file found.

    Attributes:
        operations: the decoded records, in log order.
        truncate_at: byte offset of the end of the last whole, valid
            record (== file size when the tail is clean). Everything
            past it is a torn tail — or corruption, which is the
            caller's call to make based on whether this segment is the
            last of the live set.
    """

    operations: list[InsertOp | DeleteOp]
    truncate_at: int


def _uvarint(data, pos: int) -> tuple[int, int]:
    """LEB128 decode at ``pos`` (tight local loop — this is recovery's
    hot path; the codec's bounds-checked Reader costs ~3x as much).
    Raises IndexError past the end, which callers treat as a torn tail.
    """
    result = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def read_segment(
    path: str | pathlib.Path, decode: bool = True
) -> SegmentScan:
    """Decode one segment file, stopping at the first damage.

    Args:
        path: the segment file.
        decode: with False, records are CRC-validated but not
            materialized (``operations`` comes back empty) — the cheap
            mode tail repair uses to find the valid prefix.

    Raises:
        StorageError: the header is wrong (not a segment / unsupported
            version) on a file large enough to have one, or a
            CRC-valid record fails to parse (a format bug, not a
            crash). A file shorter than the header is a create-crash
            artifact and scans as empty with ``truncate_at == 0``.
    """
    data = pathlib.Path(path).read_bytes()
    if len(data) < HEADER_LEN:
        return SegmentScan(operations=[], truncate_at=0)
    if data[: len(SEGMENT_MAGIC)] != SEGMENT_MAGIC:
        raise StorageError(f"{path}: not a segment file (bad magic)")
    if data[len(SEGMENT_MAGIC)] != SEGMENT_VERSION:
        raise StorageError(
            f"{path}: unsupported segment version {data[len(SEGMENT_MAGIC)]}"
        )
    operations: list[InsertOp | DeleteOp] = []
    size = len(data)
    pos = HEADER_LEN
    good_end = HEADER_LEN
    crc32 = zlib.crc32
    from_bytes = int.from_bytes
    while pos < size:
        try:
            length, body_start = _uvarint(data, pos)
        except IndexError:
            break  # torn varint at the tail
        body_end = body_start + length
        if body_end + 4 > size:
            break  # torn tail: payload or CRC cut off
        payload = data[body_start:body_end]
        if crc32(payload) != from_bytes(
            data[body_end : body_end + 4], "little"
        ):
            break  # torn or corrupt record; caller judges which
        if decode:
            operations.append(_decode_payload(payload, path))
        pos = body_end + 4
        good_end = pos
    return SegmentScan(operations=operations, truncate_at=good_end)


def _decode_payload(
    payload: bytes, path: str | pathlib.Path
) -> InsertOp | DeleteOp:
    if not payload:
        raise StorageError(f"{path}: empty record payload")
    kind = payload[0]
    try:
        pl_id, pos = _uvarint(payload, 1)
        element_id, pos = _uvarint(payload, pos)
        if kind == KIND_INSERT:
            group_id, pos = _uvarint(payload, pos)
            share_y, pos = _uvarint(payload, pos)
            op: InsertOp | DeleteOp = InsertOp(
                pl_id=pl_id,
                element_id=element_id,
                group_id=group_id,
                share_y=share_y,
            )
        elif kind == KIND_DELETE:
            op = DeleteOp(pl_id=pl_id, element_id=element_id)
        else:
            # The CRC matched, so this is a format problem, not bit rot.
            raise StorageError(f"{path}: unknown record kind {kind}")
    except IndexError as exc:
        raise StorageError(f"{path}: undecodable record") from exc
    if pos != len(payload):
        raise StorageError(f"{path}: trailing bytes inside a record")
    return op


def decode_op_frames(
    data: bytes, source: str = "<wire>"
) -> list[InsertOp | DeleteOp]:
    """Decode a sealed run of record frames (no segment header).

    This is the *wire* twin of :func:`read_segment`: snapshot-shipping
    sends a segment suffix — operations logged after the shipped
    snapshot's rotation point — as a bare concatenation of the same
    framed records a segment file holds. Unlike an on-disk tail, a
    shipped suffix is sealed by construction (it crossed a
    length-prefixed transport frame intact), so *any* damage — torn
    varint, short payload, CRC mismatch, trailing bytes — raises
    :class:`~repro.errors.StorageError` instead of being treated as a
    crash artifact.
    """
    operations: list[InsertOp | DeleteOp] = []
    size = len(data)
    pos = 0
    crc32 = zlib.crc32
    from_bytes = int.from_bytes
    while pos < size:
        try:
            length, body_start = _uvarint(data, pos)
        except IndexError as exc:
            raise StorageError(f"{source}: torn record frame") from exc
        body_end = body_start + length
        if body_end + 4 > size:
            raise StorageError(f"{source}: truncated record frame")
        payload = data[body_start:body_end]
        if crc32(payload) != from_bytes(
            data[body_end : body_end + 4], "little"
        ):
            raise StorageError(f"{source}: record CRC mismatch")
        operations.append(_decode_payload(payload, source))
        pos = body_end + 4
    return operations


def encode_op_frames(operations) -> bytes:
    """Frame a run of operations for the wire (decode_op_frames' twin)."""
    out = bytearray()
    for op in operations:
        if isinstance(op, InsertOp):
            encode_insert(out, op)
        else:
            encode_delete(out, op)
    return bytes(out)


def repair_segment_tail(path: str | pathlib.Path) -> int:
    """Truncate a segment back to its last whole record (crash repair).

    Returns the number of bytes cut. Called on the highest-numbered
    segment when a store opens, so every *sealed* segment is clean by
    construction.
    """
    path = pathlib.Path(path)
    size = path.stat().st_size
    if size < HEADER_LEN:
        # Create-crash artifact: not even a whole header. Rewrite it as
        # an empty, well-formed segment so the appender can continue.
        path.write_bytes(SEGMENT_MAGIC + bytes((SEGMENT_VERSION,)))
        return size
    scan = read_segment(path, decode=False)
    if scan.truncate_at >= size:
        return 0
    with open(path, "r+b") as handle:
        handle.truncate(scan.truncate_at)
        handle.flush()
        os.fsync(handle.fileno())
    return size - scan.truncate_at


class SegmentWriter:
    """Appender for one live segment file (creates it with the header).

    Tracks the size itself (append-mode ``tell()`` semantics differ
    across platforms before the first write).
    """

    def __init__(self, path: str | pathlib.Path, number: int) -> None:
        self.path = pathlib.Path(path)
        self.number = number
        self._handle = open(self.path, "ab")
        self._size = self.path.stat().st_size
        if self._size == 0:
            header = SEGMENT_MAGIC + bytes((SEGMENT_VERSION,))
            self._handle.write(header)
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._size = len(header)

    def append(self, frames: bytes) -> None:
        """Write pre-encoded record frames and fsync (one sync per batch)."""
        self._handle.write(frames)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._size += len(frames)

    def tell(self) -> int:
        return self._size

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


def scan_segment_numbers(directory: pathlib.Path) -> list[int]:
    """Sorted sequence numbers of every segment file in a directory."""
    numbers = []
    for name in os.listdir(directory):
        number = segment_number(name)
        if number is not None:
            numbers.append(number)
    return sorted(numbers)


def iter_operations(
    directory: pathlib.Path, numbers: list[int]
) -> Iterator[InsertOp | DeleteOp]:
    """Replay segments in order; only the last may carry a torn tail.

    Raises:
        StorageError: damage in any segment but the last — a torn tail
            there cannot be a crash artifact, so the history is corrupt.
    """
    for index, number in enumerate(numbers):
        path = directory / segment_name(number)
        scan = read_segment(path)
        clean = scan.truncate_at == path.stat().st_size
        if not clean and index != len(numbers) - 1:
            raise StorageError(
                f"{path}: damaged interior segment (valid prefix "
                f"{scan.truncate_at} of {path.stat().st_size} bytes)"
            )
        yield from scan.operations
