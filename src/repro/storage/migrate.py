"""Legacy flat-WAL ingestion — the one-way door into the segmented engine.

A cluster that ran with ``storage="flat"`` has one line-per-record
``<server_id>.wal`` file per seat. Migration replays that history to
its live state, writes it into a fresh segmented store (segment log,
then an immediate compaction so the store opens from a snapshot, not a
full replay), and optionally deletes the flat file. The replay goes
through :meth:`PostingLog.replay`, so checkpoint markers are validated
and a torn tail is handled exactly as a flat restart would have handled
it — migration never invents state a flat recovery could not have seen.
"""

from __future__ import annotations

import os
import pathlib
import shutil

from repro.errors import StorageError
from repro.server.index_server import InsertOp
from repro.server.persistence import PostingLog, fsync_dir
from repro.storage.engine import SegmentedStore

#: Suffix of the staging directory a migration builds in before its
#: atomic rename into place. A crash leaves only this — never a
#: half-ingested directory under the real name that a re-run (or a
#: ``--delete-flat`` cut-over) could mistake for a finished store.
STAGING_SUFFIX = ".migrating"


def migrate_flat_wal(
    wal_path: str | pathlib.Path,
    dest_dir: str | pathlib.Path | None = None,
    *,
    delete_source: bool = False,
    **options,
) -> int:
    """Ingest one legacy flat WAL into a segmented storage directory.

    Args:
        wal_path: the ``.wal`` file to migrate (must exist).
        dest_dir: destination directory; defaults to the WAL path minus
            its suffix (``pod0-server-1.wal`` -> ``pod0-server-1/``),
            which is exactly where ``ClusterDeployment(...,
            storage="segmented")`` will look for the seat.
        delete_source: remove the flat file after a successful
            migration (the default keeps it, so a botched cut-over can
            fall back).
        options: :class:`SegmentedStore` knobs (segment_bytes, ...).

    Returns:
        The number of live records migrated.

    Raises:
        StorageError: missing source, or a destination that already
            exists (migration must never merge into an existing store —
            that is what ``adopt`` replication is for; a leftover
            staging directory from a crashed attempt is swept and
            retried).
    """
    wal_path = pathlib.Path(wal_path)
    if not wal_path.exists():
        raise StorageError(f"no flat WAL at {wal_path}")
    dest = (
        pathlib.Path(dest_dir)
        if dest_dir is not None
        else wal_path.with_suffix("")
    )
    if dest.exists():
        raise StorageError(f"migration destination {dest} already exists")
    log = PostingLog(wal_path)
    try:
        state = log.replay()
    finally:
        log.close()
    # Build in a staging directory and rename into place at the end:
    # the directory rename is the atomic commit, so a directory under
    # the real name is a *complete* migration by construction.
    staging = dest.with_name(dest.name + STAGING_SUFFIX)
    if staging.exists():
        shutil.rmtree(staging)  # a previous attempt crashed mid-build
    options.setdefault("auto_compact", False)
    store = SegmentedStore(staging, **options)
    try:
        operations = [
            InsertOp(
                pl_id=pl_id,
                element_id=record.element_id,
                group_id=record.group_id,
                share_y=record.share_y,
            )
            for pl_id, plist in sorted(state.items())
            for record in (
                plist[element_id] for element_id in sorted(plist)
            )
        ]
        store.append_inserts(operations)
        count = store.compact()
    finally:
        store.close()
    os.rename(staging, dest)
    fsync_dir(dest.parent)
    if delete_source:
        wal_path.unlink(missing_ok=True)
        wal_path.with_suffix(".compact").unlink(missing_ok=True)
    return count
