"""Server-side dispatch: decoded protocol messages onto the narrow interface.

:class:`IndexServerService` is the only code that translates a request
message into a call on :class:`~repro.server.index_server.IndexServer`.
Clients never hold server objects any more — they hold a
:class:`~repro.protocol.transport.Transport` and endpoint *names*; the
service at the far end of the transport is the server boundary.

Services raise the ordinary :mod:`repro.errors` exceptions (a dead seat
raises :class:`~repro.errors.TransportError` exactly like the old
network handler did). The in-process transport lets those propagate
natively; the socket server converts them to
:class:`~repro.protocol.messages.ErrorResponse` frames which the socket
client re-raises as the same class — one failure model across backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.client.snippets import SnippetService
from repro.errors import (
    ProtocolError,
    ReproError,
    TransportError,
    UnknownEndpointError,
    error_class,
)
from repro.protocol.messages import (
    AdoptListRequest,
    AdoptSnapshotRequest,
    DeleteBatchRequest,
    DropListRequest,
    ErrorResponse,
    ExportListRequest,
    FetchListsRequest,
    FetchSnippetRequest,
    InsertBatchRequest,
    OpCountResponse,
    RecordListResponse,
    FetchListsResponse,
    ServerStatusRequest,
    ServerStatusResponse,
    ShipSnapshotRequest,
    SnapshotResponse,
    SnippetResponse,
)


@dataclass
class _StaticSeat:
    """Adapter giving a bare (single-fleet) server the seat interface."""

    server: Any
    alive: bool = True

    @property
    def server_id(self) -> str:
        return self.server.server_id


class IndexServerService:
    """One seat's protocol endpoint: liveness gate + request dispatch.

    The service holds the *seat* (anything with ``server`` and ``alive``
    attributes — a cluster :class:`~repro.cluster.coordinator.ServerSlot`
    or a :class:`_StaticSeat`), not the server object: a WAL restart
    swaps ``seat.server`` and the service follows automatically, exactly
    like the old closure-based network handler did.

    An optional :class:`~repro.resilience.admission.AdmissionController`
    bounds dispatch concurrency at the service itself — the seat-level
    twin of the socket servers' queue bound, for deployments whose
    transport has no server process (in-process).
    """

    def __init__(self, seat: Any, admission: Any = None) -> None:
        self._seat = seat
        self.admission = admission

    @classmethod
    def for_server(
        cls, server: Any, admission: Any = None
    ) -> "IndexServerService":
        """Wrap an always-alive server (the paper's single fleet)."""
        return cls(_StaticSeat(server), admission=admission)

    @classmethod
    def for_slot(
        cls, slot: Any, admission: Any = None
    ) -> "IndexServerService":
        """Wrap a cluster seat; its ``alive`` flag gates every request."""
        return cls(slot, admission=admission)

    def handle(self, request: Any) -> Any:
        """Dispatch one decoded request; returns the response message.

        Raises:
            TransportError: the seat is down (every request kind — a
                dead box serves neither users nor replication).
            OverloadedError: the admission bound is full (retryable).
            ProtocolError: a message this service does not understand.
            AuthError / AccessDeniedError / IndexServerError: surfaced
                from the narrow interface unchanged.
        """
        seat = self._seat
        if not seat.alive:
            raise TransportError(f"server {seat.server.server_id!r} is down")
        if self.admission is not None:
            self.admission.admit(f"server {seat.server.server_id!r}")
            try:
                return self._dispatch(seat.server, request)
            finally:
                self.admission.release()
        return self._dispatch(seat.server, request)

    def _dispatch(self, server: Any, request: Any) -> Any:
        if isinstance(request, FetchListsRequest):
            return FetchListsResponse(
                lists=tuple(
                    server.get_posting_lists(request.token, request.pl_ids)
                )
            )
        if isinstance(request, InsertBatchRequest):
            return OpCountResponse(
                count=server.insert_batch(request.token, request.operations)
            )
        if isinstance(request, DeleteBatchRequest):
            return OpCountResponse(
                count=server.delete(request.token, request.operations)
            )
        if isinstance(request, ExportListRequest):
            return RecordListResponse(
                records=tuple(server.export_posting_list(request.pl_id))
            )
        if isinstance(request, AdoptListRequest):
            return RecordListResponse(
                records=tuple(
                    server.adopt_posting_list(request.pl_id, request.records)
                )
            )
        if isinstance(request, DropListRequest):
            dropped = server.drop_posting_list(request.pl_id)
            if request.count_only:
                return OpCountResponse(count=len(dropped))
            return RecordListResponse(records=tuple(dropped))
        if isinstance(request, ShipSnapshotRequest):
            image, count = server.export_snapshot(request.pl_ids)
            return SnapshotResponse(snapshot=image, record_count=count)
        if isinstance(request, AdoptSnapshotRequest):
            return OpCountResponse(
                count=server.ingest_snapshot(
                    request.pl_ids, request.snapshot, request.suffix
                )
            )
        if isinstance(request, ServerStatusRequest):
            return ServerStatusResponse(
                server_id=server.server_id,
                x_coordinate=server.x_coordinate,
                num_posting_lists=server.num_posting_lists,
                num_elements=server.num_elements,
                storage_bytes=server.storage_bytes(),
            )
        raise ProtocolError(
            f"index server cannot handle {type(request).__name__}"
        )


class SnippetHostService:
    """A hosting peer's protocol endpoint (step 6 of Algorithm 2).

    The peer trusts the enterprise ticket for the requester's identity
    (as the §5.4.2 snippet flow always has) and enforces its own group
    ACL inside :class:`SnippetService`.
    """

    def __init__(self, snippets: SnippetService) -> None:
        self._snippets = snippets

    def handle(self, request: Any) -> Any:
        if isinstance(request, FetchSnippetRequest):
            return SnippetResponse(
                snippet=self._snippets.request_snippet(
                    request.token.user_id,
                    request.doc_id,
                    list(request.terms),
                )
            )
        raise ProtocolError(
            f"snippet host cannot handle {type(request).__name__}"
        )


def fleet_resolver(servers: Any) -> Any:
    """An endpoint resolver over a *live* server sequence.

    Standalone clients (constructed with ``servers=`` and no transport)
    use this so fleet extension — a server appended to the sequence
    after the client was built — is addressable without re-wiring.
    """

    def resolve(name: str):
        for server in servers or ():
            if server.server_id == name:
                return IndexServerService.for_server(server)
        return None

    return resolve


def error_response(exc: ReproError) -> ErrorResponse:
    """Package a server-side failure for the wire."""
    return ErrorResponse(
        error=type(exc).__name__,
        message=str(exc),
        endpoint=getattr(exc, "endpoint", ""),
    )


def raise_for_error(response: Any) -> Any:
    """Re-raise a shipped :class:`ErrorResponse`; pass anything else through."""
    if isinstance(response, ErrorResponse):
        cls = error_class(response.error)
        if cls is UnknownEndpointError:
            raise UnknownEndpointError(
                response.endpoint or "?", response.message
            )
        raise cls(response.message)
    return response
