"""The pipelined asyncio serving stack: one connection, many requests.

The threaded :class:`~repro.protocol.transport.SocketServer` spends a
thread (and a connection) per concurrent client, and every call is a
strict write-then-read on that client's private socket — at hundreds of
concurrent searchers the wire path, not the crypto, caps throughput.
This module is the protocol's pipelined revision behind the same
:class:`~repro.protocol.transport.Transport` contract:

- **Correlated frames** — every request carries a 4-byte correlation id
  (the high bit of the length prefix flags it; see
  :data:`~repro.protocol.transport.CORRELATION_FLAG`), so one TCP
  connection multiplexes any number of in-flight requests and responses
  return in completion order, not request order.
- **Packed encodings** — a correlated request also states the sender
  accepts the fixed-width packed message forms
  (:func:`~repro.protocol.codec.encode_message` with ``packed=True``),
  which collapse the varint-per-field record codec (~45% of socket
  query time) into ``int.to_bytes``/``from_bytes`` C calls.
- **Bounded write queues** — each server connection owns a bounded
  response queue drained by one writer task that coalesces ready frames
  into a single ``write()``; a slow reader backpressures its own
  dispatch instead of ballooning server memory.
- **Graceful drain** — closing the server (or a client hanging up)
  stops reads first, lets in-flight handlers finish, flushes the write
  queue, then closes the socket, so a drain never drops a response a
  client is still owed.

Interoperability is two-way: :class:`AsyncSocketServer` serves classic
plain frames serially (a PR 4 :class:`SocketTransport` client works
unmodified), and the threaded ``SocketServer`` answers correlated
frames one at a time, so :class:`AsyncSocketTransport` can drive it
correct-but-serial. The CI equivalence gate runs the same seeded worlds
over all backends; results are byte-identical.

Both halves hide their machinery behind the synchronous ``Transport``
surface. The server's event loop runs on a daemon thread and, by
default, dispatches handlers inline on that loop: decode + registry
dispatch + encode are pure CPU under the GIL, so a thread pool buys no
parallelism but charges two cross-thread wake-ups per request (each
one costs up to a full GIL switch interval — profiled at ~1 ms per
hop on a busy box). ``handler_threads > 0`` restores the pool for
registries whose handlers block on real I/O. The client is a
direct-write multiplexer: calling threads frame and ``sendall()``
requests themselves under a write lock (no marshal into any loop), and
a single reader thread resolves completions by correlation id — two
thread hand-offs per call instead of the six a loop-brokered design
pays.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any

from repro.errors import DeadlineExceededError, ProtocolError, TransportError
from repro.protocol.codec import decode_message, encode_message
from repro.protocol.messages import DEFAULT_SHARE_BYTES, EndpointsRequest
from repro.protocol.service import raise_for_error
from repro.observability.tracing import span
from repro.protocol.transport import (
    _RETRY_SAFE,
    CORRELATION_FLAG,
    MAX_FRAME_BYTES,
    _LEN,
    _pack_request,
    _wire_trace,
    frame_bytes,
    handle_request_payload,
    InProcessTransport,
    Transport,
)
from repro.resilience.admission import AdmissionController
from repro.resilience.deadline import Deadline, current_deadline
from repro.resilience.retry import RetryPolicy

#: Coalesce at most this many buffered response bytes into one write()
#: before letting the event loop breathe.
_WRITE_COALESCE_BYTES = 1 << 18

#: Server-side read() chunk size: big enough that one wake-up drains a
#: saturated connection's whole request backlog.
_READ_CHUNK_BYTES = 1 << 16


def _parse_frames(buffer: bytearray) -> list[tuple[int | None, bytes]]:
    """Consume every complete frame at the front of ``buffer``.

    Returns ``(correlation id | None, payload)`` per frame and deletes
    the consumed bytes; a trailing partial frame stays for the next
    chunk. Parsing from a chunk buffer instead of awaiting the stream
    field by field matters at saturation: one ``read()`` off a
    multiplexed connection delivers *many* small request frames, and
    this turns per-frame task wake-ups into one.
    """
    frames: list[tuple[int | None, bytes]] = []
    offset = 0
    size = len(buffer)
    word_len = _LEN.size
    while True:
        if size - offset < word_len:
            break
        (word,) = _LEN.unpack_from(buffer, offset)
        corr_id: int | None = None
        header = word_len
        length = word
        if word & CORRELATION_FLAG:
            if size - offset < 2 * word_len:
                break
            (corr_id,) = _LEN.unpack_from(buffer, offset + word_len)
            header = 2 * word_len
            length = word ^ CORRELATION_FLAG
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"frame of {length} bytes exceeds the cap"
            )
        if size - offset < header + length:
            break
        start = offset + header
        frames.append((corr_id, bytes(buffer[start : start + length])))
        offset = start + length
    del buffer[:offset]
    return frames


class _LoopThread:
    """An event loop on a daemon thread, shared by both halves."""

    def __init__(self, name: str) -> None:
        self.loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name=name, daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        try:
            self.loop.run_forever()
        finally:
            # Give cancelled tasks one final cycle to unwind, then
            # drop the loop; anything still pending is abandoned with
            # the daemon thread.
            try:
                self.loop.run_until_complete(asyncio.sleep(0))
            except Exception:  # pragma: no cover - teardown best effort
                pass
            self.loop.close()

    def call(self, coro, timeout_s: float | None):
        """Run a coroutine on the loop; re-raise its outcome here."""
        future = asyncio.run_coroutine_threadsafe(coro, self.loop)
        return future.result(timeout_s)

    def stop(self) -> None:
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=5)


class _ServerConnection:
    """Per-connection server state: reader, bounded queue, writer task."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        queue_frames: int,
        max_in_flight: int,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_frames)
        self.in_flight: set[asyncio.Task] = set()
        self.slots = asyncio.Semaphore(max_in_flight)
        self.writer_task: asyncio.Task | None = None


class AsyncSocketServer:
    """Serve an :class:`InProcessTransport` registry, pipelined, over TCP.

    One event loop accepts every connection; each correlated request
    is handled as its own task and its response rejoins the
    connection's bounded write queue as soon as it is ready — requests
    on one connection overlap instead of queueing behind each other.
    Handlers run inline on the loop by default (pure CPU under the
    GIL; see the module docstring) or on a small thread pool when
    ``handler_threads > 0``. Plain (uncorrelated) frames are served
    strictly in order, one at a time, exactly like the threaded
    server, so classic clients keep their response-ordering contract.

    Args:
        registry: the endpoint registry to serve.
        host / port: listener address (port 0 picks a free port; the
            bound address is in :attr:`address`).
        idle_timeout_s: close a connection after this long with no
            arriving frame and nothing in flight (None: never).
        max_in_flight: per-connection cap on concurrently dispatched
            requests; further frames wait in the kernel socket buffer,
            backpressuring the client.
        write_queue_frames: per-connection response queue bound.
        handler_threads: 0 (default) dispatches inline on the loop;
            > 0 runs handlers on a shared pool of that many threads
            (use when registry handlers block on real I/O).
        drain_timeout_s: how long close() waits for in-flight handlers
            and queued responses before dropping the connection anyway.
        max_pending: bounded-dispatch admission limit across all
            connections; beyond it requests are shed with a typed
            retryable ``OverloadedError`` (None: admit everything).
    """

    def __init__(
        self,
        registry: InProcessTransport,
        host: str = "127.0.0.1",
        port: int = 0,
        idle_timeout_s: float | None = None,
        max_in_flight: int = 128,
        write_queue_frames: int = 256,
        handler_threads: int = 0,
        drain_timeout_s: float = 5.0,
        max_pending: int | None = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self._registry = registry
        self._idle_timeout_s = idle_timeout_s
        #: Optional observability registry the per-frame counters
        #: publish into (``zerber_server_frames_total`` et al.).
        self.metrics = metrics
        self._max_in_flight = max_in_flight
        self._write_queue_frames = write_queue_frames
        self._drain_timeout_s = drain_timeout_s
        self.admission = (
            None if max_pending is None else AdmissionController(max_pending)
        )
        #: Did the drain deadline pass with connections still open?
        self.drain_aborted = False
        self._pool: ThreadPoolExecutor | None = None
        if handler_threads > 0:
            self._pool = ThreadPoolExecutor(
                max_workers=handler_threads,
                thread_name_prefix="zerber-async-handler",
            )
        self._connections: set[_ServerConnection] = set()
        self._closed = False
        self._loop_thread = _LoopThread("zerber-async-server-loop")
        try:
            self._server: asyncio.Server = self._loop_thread.call(
                asyncio.start_server(self._serve_connection, host, port),
                timeout_s=10,
            )
        except OSError as exc:
            self._loop_thread.stop()
            if self._pool is not None:
                self._pool.shutdown(wait=False)
            raise TransportError(
                f"cannot listen on {host}:{port}: {exc}"
            ) from exc
        self.address: tuple[str, int] = self._server.sockets[
            0
        ].getsockname()[:2]

    # -- request handling (runs on the dispatch pool) --------------------------

    def _handle(
        self,
        payload: bytes,
        packed: bool,
        received_at: float | None = None,
    ) -> bytes:
        """Decode, dispatch, encode — the whole CPU leg of one request."""
        response = handle_request_payload(
            self._registry,
            payload,
            received_at=received_at,
            admission=self.admission,
            metrics=self.metrics,
            transport_label="async-socket",
        )
        return encode_message(response, packed=packed)

    # -- connection lifecycle (runs on the loop) -------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        sock = writer.get_extra_info("socket")
        if sock is not None:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        conn = _ServerConnection(
            reader,
            writer,
            self._write_queue_frames,
            self._max_in_flight,
        )
        if self._closed:
            writer.close()
            return
        self._connections.add(conn)
        conn.writer_task = asyncio.get_running_loop().create_task(
            self._write_loop(conn)
        )
        try:
            await self._read_loop(conn)
        finally:
            await self._drain_connection(conn)

    async def _read_loop(self, conn: _ServerConnection) -> None:
        loop = asyncio.get_running_loop()
        buffer = bytearray()
        while not self._closed:
            try:
                if self._idle_timeout_s is None:
                    chunk = await conn.reader.read(_READ_CHUNK_BYTES)
                else:
                    try:
                        chunk = await asyncio.wait_for(
                            conn.reader.read(_READ_CHUNK_BYTES),
                            self._idle_timeout_s,
                        )
                    except asyncio.TimeoutError:
                        # Quiet with work still in flight is a client
                        # waiting on us, not a stall; only a connection
                        # with nothing pending in either direction is
                        # idle. (The cancelled read loses nothing: the
                        # stream re-buffers whatever arrived.)
                        if conn.in_flight or not conn.queue.empty():
                            continue
                        return
            except (ConnectionError, OSError):
                return
            if not chunk:
                return  # EOF: the peer hung up.
            buffer += chunk
            try:
                frames = _parse_frames(buffer)
            except ProtocolError:
                return  # unframeable peer; hang up
            if not frames:
                continue
            # Deadline budgets count from frame arrival: any queueing
            # from here to dispatch is the server's own delay.
            received_at = time.monotonic()
            if self._pool is None:
                # Inline dispatch: answer every complete frame of this
                # chunk back to back, then enqueue the coalesced blob
                # as one item. Classic frames keep their strict
                # in-order contract because arrival order IS the
                # processing order here.
                out = bytearray()
                for corr_id, payload in frames:
                    out += frame_bytes(
                        self._handle(
                            payload, corr_id is not None, received_at
                        ),
                        corr_id,
                    )
                await conn.queue.put(bytes(out))
            else:
                for corr_id, payload in frames:
                    if corr_id is None:
                        # Classic frame: strict request/response
                        # order, one at a time — exactly the threaded
                        # server's contract.
                        blob = await loop.run_in_executor(
                            self._pool,
                            self._handle,
                            payload,
                            False,
                            received_at,
                        )
                        await conn.queue.put(frame_bytes(blob, None))
                    else:
                        await conn.slots.acquire()
                        task = loop.create_task(
                            self._serve_one(
                                conn, corr_id, payload, received_at
                            )
                        )
                        conn.in_flight.add(task)
                        task.add_done_callback(conn.in_flight.discard)

    async def _serve_one(
        self,
        conn: _ServerConnection,
        corr_id: int,
        payload: bytes,
        received_at: float,
    ) -> None:
        try:
            blob = await asyncio.get_running_loop().run_in_executor(
                self._pool, self._handle, payload, True, received_at
            )
            await conn.queue.put(frame_bytes(blob, corr_id))
        finally:
            conn.slots.release()

    async def _write_loop(self, conn: _ServerConnection) -> None:
        """Drain the bounded queue of pre-framed response bytes."""
        try:
            while True:
                item = await conn.queue.get()
                if item is None:  # drain sentinel
                    return
                buffer = bytearray(item)
                # Coalesce everything already ready into one write:
                # at saturation this batches many small response
                # frames per syscall.
                while len(buffer) < _WRITE_COALESCE_BYTES:
                    try:
                        item = conn.queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if item is None:
                        conn.writer.write(bytes(buffer))
                        await conn.writer.drain()
                        return
                    buffer += item
                conn.writer.write(bytes(buffer))
                await conn.writer.drain()
        except (ConnectionError, OSError):
            return

    async def _drain_connection(self, conn: _ServerConnection) -> None:
        """Finish what's in flight, flush the queue, then hang up."""
        self._connections.discard(conn)
        in_flight = list(conn.in_flight)
        if in_flight:
            await asyncio.wait(in_flight, timeout=self._drain_timeout_s)
        if conn.writer_task is not None:
            await conn.queue.put(None)
            try:
                await asyncio.wait_for(
                    conn.writer_task, self._drain_timeout_s
                )
            except asyncio.TimeoutError:  # pragma: no cover - slow peer
                conn.writer_task.cancel()
        conn.writer.close()
        try:
            await conn.writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass

    # -- lifecycle -------------------------------------------------------------

    @property
    def connection_count(self) -> int:
        """Open connections (the async census probe)."""
        return len(self._connections)

    def close(self) -> None:
        """Stop accepting, drain every connection, stop the loop."""
        if self._closed:
            return
        self._closed = True
        try:
            self._loop_thread.call(
                self._shutdown(), timeout_s=self._drain_timeout_s + 10
            )
        except Exception:  # pragma: no cover - teardown best effort
            pass
        self._loop_thread.stop()
        if self._pool is not None:
            self._pool.shutdown(wait=False)

    def drain(self, timeout_s: float | None = None) -> bool:
        """Graceful shutdown; True when every connection finished.

        Same close() sequence (stop accepting, let in-flight handlers
        and write queues drain, then drop what's left), optionally
        under a different drain budget. ``repro serve`` exits nonzero
        when this returns False.
        """
        if timeout_s is not None:
            self._drain_timeout_s = timeout_s
        self.close()
        return not self.drain_aborted

    async def _shutdown(self) -> None:
        self._server.close()
        await self._server.wait_closed()
        for conn in list(self._connections):
            # Kick the reader off its socket; _serve_connection's
            # finally block then drains and closes the connection.
            conn.reader.feed_eof()
        deadline = (
            asyncio.get_running_loop().time() + self._drain_timeout_s
        )
        while (
            self._connections
            and asyncio.get_running_loop().time() < deadline
        ):
            await asyncio.sleep(0.01)
        if self._connections:
            self.drain_aborted = True

    def __enter__(self) -> "AsyncSocketServer":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class _PendingCall:
    """One in-flight request: the caller parks on the event."""

    __slots__ = ("event", "blob", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.blob: bytes | None = None
        self.error: Exception | None = None


class _ConnectionLost(Exception):
    """Internal marker: the shared connection died under a call."""


class _WriteState:
    """Group-commit write buffer for one client connection.

    Callers append framed bytes under ``lock`` — a few bytearray ops,
    never held across a syscall — and whichever caller finds no flusher
    active elects itself and drains the buffer with large ``sendall``
    calls. Under hundreds of calling threads this replaces a write-lock
    convoy (one GIL wake-up per frame handed the lock) with one writer
    syscall per batch.
    """

    __slots__ = ("lock", "buffer", "flushing", "dropped")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.buffer = bytearray()
        self.flushing = False
        self.dropped = False


class AsyncSocketTransport(Transport):
    """Multiplexing TCP client for the pipelined protocol revision.

    Any number of calling threads share **one** connection: each call
    frames its request with a fresh correlation id and hands it to the
    connection's group-commit write buffer (one elected caller flushes
    each batch with a single ``sendall`` — no hop through an event
    loop, no per-frame lock convoy), then parks on an event until the
    reader thread resolves it with the matching response frame. The
    cluster's fan-out pool no longer needs one socket per worker
    thread. Works against :class:`AsyncSocketServer` (pipelined) and
    the threaded ``SocketServer`` (serial but correct).

    Failure semantics mirror :class:`SocketTransport`: failures retry
    under a shared :class:`~repro.resilience.retry.RetryPolicy` (a
    broken connection is retryable for pure reads on a fresh
    connection, a typed retryable server rejection backs off for any
    request, writes whose response was lost fail fast), an ambient
    deadline rides the wire and caps the completion wait, a dead
    listener raises :class:`TransportError`, and ``close()``
    deterministically fails in-flight calls with the typed "transport
    is closed" message.
    """

    def __init__(
        self,
        address: tuple[str, int],
        share_bytes: int = DEFAULT_SHARE_BYTES,
        timeout_s: float = 30.0,
        connect_timeout_s: float = 5.0,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self._address = (address[0], int(address[1]))
        self._share_bytes = share_bytes
        self._timeout_s = timeout_s
        self._connect_timeout_s = connect_timeout_s
        self._retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self._closed = False
        #: The live connection as one atomically-swapped pair, so an
        #: unlocked fast-path read can never see a socket from one
        #: connection paired with another's write buffer.
        self._conn: tuple[socket.socket, _WriteState] | None = None
        #: Guards _pending, _next_corr, _conn identity, and _closed
        #: transitions. Never held across a blocking operation.
        self._lock = threading.Lock()
        #: Serializes connection establishment.
        self._connect_lock = threading.Lock()
        self._pending: dict[int, _PendingCall] = {}
        self._next_corr = 0

    @property
    def _sock(self) -> socket.socket | None:
        """The live socket, if any (exposed for fault-injecting tests)."""
        conn = self._conn
        return conn[0] if conn is not None else None

    @property
    def address(self) -> tuple[str, int]:
        return self._address

    # -- the Transport surface -------------------------------------------------

    def call(self, src: str, dst: str, request: Any) -> Any:
        if self._closed:
            raise TransportError("async socket transport is closed")
        read_safe = isinstance(request, _RETRY_SAFE)
        trace = _wire_trace()

        def attempt(_index: int) -> Any:
            deadline = current_deadline()
            budget_us = None
            if deadline is not None:
                deadline.check(f"call to {dst!r}")
                budget_us = deadline.budget_us()
            payload = _pack_request(
                dst, request, packed=True, budget_us=budget_us, trace=trace
            )
            try:
                with span(f"call:{dst}") as call_span:
                    blob = self._round_trip(payload, deadline)
                    call_span.wire_bytes = len(payload) + len(blob)
            except _ConnectionLost as exc:
                if self._closed:
                    raise TransportError(
                        "async socket transport is closed"
                    ) from exc
                error = TransportError(
                    f"async round-trip to {self._address[0]}:"
                    f"{self._address[1]} failed: {exc}"
                )
                # A lost pure read re-sends on a fresh connection; a
                # lost write may already have landed, so it fails fast.
                error.retryable = read_safe
                raise error from exc
            # Decode on the calling thread: concurrent callers decode
            # their own responses in parallel instead of serializing
            # on the reader thread.
            return raise_for_error(decode_message(blob))

        return self._retry_policy.run(attempt)

    def endpoints(self) -> list[str]:
        response = self.call("", "", EndpointsRequest())
        return list(response.names)

    def has_endpoint(self, name: str) -> bool:
        try:
            return name in self.endpoints()
        except TransportError:
            return False

    def close(self) -> None:
        """Deterministic close: every in-flight call fails typed."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending, self._pending = self._pending, {}
            conn, self._conn = self._conn, None
        if conn is not None:
            with conn[1].lock:
                conn[1].dropped = True
                conn[1].buffer.clear()
        for call in pending.values():
            call.error = TransportError(
                "async socket transport is closed"
            )
            call.event.set()
        if conn is not None:
            sock = conn[0]
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            sock.close()

    def __enter__(self) -> "AsyncSocketTransport":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- wire plumbing ---------------------------------------------------------

    def _round_trip(
        self, payload: bytes, deadline: Deadline | None = None
    ) -> bytes:
        sock, wstate = self._ensure_connection()
        call = _PendingCall()
        with self._lock:
            if self._closed:
                raise TransportError("async socket transport is closed")
            if self._conn is None or self._conn[0] is not sock:
                # The connection died between _ensure_connection and
                # here; registering against it would strand this call
                # past the drop's pending sweep.
                raise _ConnectionLost(
                    ConnectionResetError("connection dropped")
                )
            corr_id = self._next_corr
            self._next_corr = (self._next_corr + 1) & 0xFFFF_FFFF
            self._pending[corr_id] = call
        try:
            try:
                self._send_frame(
                    sock, wstate, frame_bytes(payload, corr_id)
                )
            except (ConnectionError, OSError) as exc:
                self._drop_connection(sock, exc)
                raise _ConnectionLost(exc) from exc
            # The completion wait is capped by the remaining deadline
            # budget: the response would be worthless after it anyway.
            wait_s = self._timeout_s
            if deadline is not None:
                wait_s = min(wait_s, max(deadline.remaining_s(), 1e-4))
            if not call.event.wait(wait_s):
                if deadline is not None and deadline.expired:
                    raise DeadlineExceededError(
                        f"no response from {self._address[0]}:"
                        f"{self._address[1]} within the deadline budget"
                    )
                raise TransportError(
                    f"async round-trip to {self._address[0]}:"
                    f"{self._address[1]} timed out "
                    f"after {self._timeout_s}s"
                )
            if call.error is not None:
                raise _ConnectionLost(call.error) from call.error
            assert call.blob is not None
            return call.blob
        finally:
            with self._lock:
                self._pending.pop(corr_id, None)

    def _send_frame(
        self,
        sock: socket.socket,
        wstate: _WriteState,
        frame: bytes,
    ) -> None:
        """Write one frame via the connection's group-commit buffer.

        A caller whose frame is shipped by another thread's flush just
        parks on its correlation event as usual; a flush failure fails
        every affected call through ``_drop_connection``, because all
        of their correlation ids are already registered.
        """
        with wstate.lock:
            if wstate.dropped:
                raise ConnectionResetError("connection dropped")
            wstate.buffer += frame
            if wstate.flushing:
                return
            wstate.flushing = True
        while True:
            with wstate.lock:
                batch = bytes(wstate.buffer)
                wstate.buffer.clear()
                if not batch:
                    wstate.flushing = False
                    return
            try:
                sock.sendall(batch)
            except BaseException:
                with wstate.lock:
                    wstate.flushing = False
                    wstate.buffer.clear()
                raise

    def _ensure_connection(self) -> tuple[socket.socket, _WriteState]:
        conn = self._conn
        if conn is not None:
            return conn
        with self._connect_lock:
            if self._closed:
                raise TransportError("async socket transport is closed")
            if self._conn is not None:
                return self._conn
            try:
                sock = socket.create_connection(
                    self._address, timeout=self._connect_timeout_s
                )
            except socket.timeout as exc:
                raise TransportError(
                    f"cannot connect to {self._address[0]}:"
                    f"{self._address[1]}: connect timed out"
                ) from exc
            except OSError as exc:
                raise TransportError(
                    f"cannot connect to {self._address[0]}:"
                    f"{self._address[1]}: {exc}"
                ) from exc
            sock.settimeout(None)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            reader = threading.Thread(
                target=self._read_loop,
                args=(sock,),
                name="zerber-async-client-reader",
                daemon=True,
            )
            conn = (sock, _WriteState())
            with self._lock:
                if self._closed:
                    sock.close()
                    raise TransportError(
                        "async socket transport is closed"
                    )
                self._conn = conn
            reader.start()
            return conn

    def _read_loop(self, sock: socket.socket) -> None:
        """Resolve pending calls by correlation id until the stream dies.

        Chunked like the server's read loop: the server coalesces many
        response frames into one write, so one ``recv()`` wake-up here
        usually resolves a whole batch of parked callers.
        """
        buffer = bytearray()
        try:
            while True:
                chunk = sock.recv(_READ_CHUNK_BYTES)
                if not chunk:
                    raise ConnectionError("peer closed the connection")
                buffer += chunk
                for corr_id, blob in _parse_frames(buffer):
                    if corr_id is None:
                        continue  # a plain frame here is a peer bug
                    with self._lock:
                        call = self._pending.pop(corr_id, None)
                    if call is not None:
                        call.blob = blob
                        call.event.set()
        except (ConnectionError, OSError, ProtocolError) as exc:
            self._drop_connection(sock, exc)

    def _drop_connection(
        self, sock: socket.socket, error: Exception | None = None
    ) -> None:
        """Detach ``sock`` if it is still current and fail its calls.

        Idempotent across the racing callers (a write that hit a reset
        and the reader thread seeing EOF): only the thread that
        actually detaches the socket fails the pending map — by the
        time anyone else gets here, surviving entries belong to a
        replacement connection.
        """
        with self._lock:
            conn = self._conn
            if conn is None or conn[0] is not sock:
                return
            self._conn = None
            pending, self._pending = self._pending, {}
        with conn[1].lock:
            conn[1].dropped = True
            conn[1].buffer.clear()
        exc = error or ConnectionResetError("connection dropped")
        for call in pending.values():
            call.error = exc
            call.event.set()
        try:
            sock.close()
        except OSError:  # pragma: no cover - already torn down
            pass
