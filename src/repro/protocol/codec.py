"""Compact binary codec for the wire-protocol messages.

Frame layout (everything big-picture, nothing clever)::

    +----+----+---------+------+-------------------------------+
    | 'Z'| 'W'| version | type |  message body (type-specific) |
    +----+----+---------+------+-------------------------------+

- 2-byte magic ``b"ZW"`` rejects garbage cheaply;
- 1 version byte (:data:`~repro.protocol.messages.PROTOCOL_VERSION`) —
  unknown versions are rejected, never guessed at;
- 1 type byte from the registry below;
- the body is a concatenation of primitives: unsigned LEB128 varints
  for every integer (ids, counts, shares — shares live in Z_p and can
  exceed 64 bits), and varint-length-prefixed UTF-8 for strings /
  raw bytes for blobs.

Decoding is strict: every primitive is bounds-checked against the
buffer, varints are capped (a malicious 5 KB "integer" is garbage, not
a number), and a decoded message must consume the frame *exactly* —
trailing bytes mean a corrupt or hostile frame and raise
:class:`~repro.errors.ProtocolError`, as does any truncation.

The hot in-process path never touches this module (messages cross a
function call, not a socket); the Hypothesis round-trip suite in
``tests/test_protocol_codec.py`` and the socket equivalence gate keep
the encoded form honest anyway.
"""

from __future__ import annotations

import struct
from typing import Any, Callable

from repro.client.snippets import Snippet
from repro.errors import ProtocolError
from repro.protocol import messages as m
from repro.server.auth import AuthToken
from repro.server.index_server import (
    DeleteOp,
    InsertOp,
    PostingListResponse,
    ShareRecord,
)

MAGIC = b"ZW"
HEADER_LEN = 4  # magic + version + type

#: Varint size cap: shares are < 2^72 today; 512 bits of headroom means
#: a "number" longer than 74 encoded bytes is garbage by construction.
_MAX_VARINT_BYTES = 74


# -- primitives ---------------------------------------------------------------


def _write_uint(out: bytearray, value: int) -> None:
    if value < 0:
        raise ProtocolError(f"negative integer {value} cannot be encoded")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _write_bytes(out: bytearray, blob: bytes) -> None:
    _write_uint(out, len(blob))
    out.extend(blob)


def _write_str(out: bytearray, text: str) -> None:
    _write_bytes(out, text.encode("utf-8"))


class _Reader:
    """Strict, bounds-checked cursor over one frame body."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes, pos: int = 0) -> None:
        self.data = data
        self.pos = pos

    def uint(self) -> int:
        value = 0
        shift = 0
        start = self.pos
        while True:
            if self.pos >= len(self.data):
                raise ProtocolError("truncated varint")
            if self.pos - start >= _MAX_VARINT_BYTES:
                raise ProtocolError("varint exceeds the size cap")
            byte = self.data[self.pos]
            self.pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7

    def blob(self) -> bytes:
        length = self.uint()
        if self.pos + length > len(self.data):
            raise ProtocolError("truncated byte string")
        out = self.data[self.pos : self.pos + length]
        self.pos += length
        return out

    def text(self) -> str:
        try:
            return self.blob().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError("invalid UTF-8 string") from exc

    def done(self) -> None:
        if self.pos != len(self.data):
            raise ProtocolError(
                f"{len(self.data) - self.pos} trailing bytes after message"
            )


# -- compound fields ----------------------------------------------------------


def _write_token(out: bytearray, token: AuthToken) -> None:
    _write_str(out, token.user_id)
    _write_uint(out, token.issued_at)
    _write_uint(out, token.expires_at)
    _write_bytes(out, token.signature)


def _read_token(r: _Reader) -> AuthToken:
    return AuthToken(
        user_id=r.text(),
        issued_at=r.uint(),
        expires_at=r.uint(),
        signature=r.blob(),
    )


def _write_record(out: bytearray, record: ShareRecord) -> None:
    _write_uint(out, record.element_id)
    _write_uint(out, record.group_id)
    _write_uint(out, record.share_y)


def _read_record(r: _Reader) -> ShareRecord:
    return ShareRecord(
        element_id=r.uint(), group_id=r.uint(), share_y=r.uint()
    )


def _write_records(out: bytearray, records: tuple[ShareRecord, ...]) -> None:
    _write_uint(out, len(records))
    for record in records:
        _write_record(out, record)


def _read_records(r: _Reader) -> tuple[ShareRecord, ...]:
    return tuple(_read_record(r) for _ in range(r.uint()))


# -- per-message encoders/decoders -------------------------------------------


def _enc_insert(out: bytearray, msg: m.InsertBatchRequest) -> None:
    _write_token(out, msg.token)
    _write_uint(out, len(msg.operations))
    for op in msg.operations:
        _write_uint(out, op.pl_id)
        _write_uint(out, op.element_id)
        _write_uint(out, op.group_id)
        _write_uint(out, op.share_y)


def _dec_insert(r: _Reader) -> m.InsertBatchRequest:
    token = _read_token(r)
    ops = tuple(
        InsertOp(
            pl_id=r.uint(),
            element_id=r.uint(),
            group_id=r.uint(),
            share_y=r.uint(),
        )
        for _ in range(r.uint())
    )
    return m.InsertBatchRequest(token=token, operations=ops)


def _enc_delete(out: bytearray, msg: m.DeleteBatchRequest) -> None:
    _write_token(out, msg.token)
    _write_uint(out, len(msg.operations))
    for op in msg.operations:
        _write_uint(out, op.pl_id)
        _write_uint(out, op.element_id)


def _dec_delete(r: _Reader) -> m.DeleteBatchRequest:
    token = _read_token(r)
    ops = tuple(
        DeleteOp(pl_id=r.uint(), element_id=r.uint())
        for _ in range(r.uint())
    )
    return m.DeleteBatchRequest(token=token, operations=ops)


def _enc_fetch(out: bytearray, msg: m.FetchListsRequest) -> None:
    _write_token(out, msg.token)
    _write_uint(out, len(msg.pl_ids))
    for pl_id in msg.pl_ids:
        _write_uint(out, pl_id)


def _dec_fetch(r: _Reader) -> m.FetchListsRequest:
    token = _read_token(r)
    pl_ids = tuple(r.uint() for _ in range(r.uint()))
    return m.FetchListsRequest(token=token, pl_ids=pl_ids)


def _enc_snippet_req(out: bytearray, msg: m.FetchSnippetRequest) -> None:
    _write_token(out, msg.token)
    _write_uint(out, msg.doc_id)
    _write_uint(out, len(msg.terms))
    for term in msg.terms:
        _write_str(out, term)


def _dec_snippet_req(r: _Reader) -> m.FetchSnippetRequest:
    token = _read_token(r)
    doc_id = r.uint()
    terms = tuple(r.text() for _ in range(r.uint()))
    return m.FetchSnippetRequest(token=token, doc_id=doc_id, terms=terms)


def _enc_export(out: bytearray, msg: m.ExportListRequest) -> None:
    _write_uint(out, msg.pl_id)


def _dec_export(r: _Reader) -> m.ExportListRequest:
    return m.ExportListRequest(pl_id=r.uint())


def _enc_adopt(out: bytearray, msg: m.AdoptListRequest) -> None:
    _write_uint(out, msg.pl_id)
    _write_records(out, msg.records)


def _dec_adopt(r: _Reader) -> m.AdoptListRequest:
    return m.AdoptListRequest(pl_id=r.uint(), records=_read_records(r))


def _enc_drop(out: bytearray, msg: m.DropListRequest) -> None:
    _write_uint(out, msg.pl_id)
    _write_uint(out, 1 if msg.count_only else 0)


def _dec_drop(r: _Reader) -> m.DropListRequest:
    return m.DropListRequest(pl_id=r.uint(), count_only=r.uint() != 0)


def _enc_ship_snapshot(out: bytearray, msg: m.ShipSnapshotRequest) -> None:
    _write_uint(out, len(msg.pl_ids))
    for pl_id in msg.pl_ids:
        _write_uint(out, pl_id)


def _dec_ship_snapshot(r: _Reader) -> m.ShipSnapshotRequest:
    return m.ShipSnapshotRequest(
        pl_ids=tuple(r.uint() for _ in range(r.uint()))
    )


def _enc_adopt_snapshot(
    out: bytearray, msg: m.AdoptSnapshotRequest
) -> None:
    _write_uint(out, len(msg.pl_ids))
    for pl_id in msg.pl_ids:
        _write_uint(out, pl_id)
    _write_bytes(out, msg.snapshot)
    _write_bytes(out, msg.suffix)


def _dec_adopt_snapshot(r: _Reader) -> m.AdoptSnapshotRequest:
    return m.AdoptSnapshotRequest(
        pl_ids=tuple(r.uint() for _ in range(r.uint())),
        snapshot=r.blob(),
        suffix=r.blob(),
    )


def _enc_snapshot_resp(out: bytearray, msg: m.SnapshotResponse) -> None:
    _write_uint(out, msg.record_count)
    _write_bytes(out, msg.snapshot)


def _dec_snapshot_resp(r: _Reader) -> m.SnapshotResponse:
    return m.SnapshotResponse(record_count=r.uint(), snapshot=r.blob())


def _enc_status_req(out: bytearray, msg: m.ServerStatusRequest) -> None:
    pass


def _dec_status_req(r: _Reader) -> m.ServerStatusRequest:
    return m.ServerStatusRequest()


def _enc_endpoints_req(out: bytearray, msg: m.EndpointsRequest) -> None:
    pass


def _dec_endpoints_req(r: _Reader) -> m.EndpointsRequest:
    return m.EndpointsRequest()


def _enc_count(out: bytearray, msg: m.OpCountResponse) -> None:
    _write_uint(out, msg.count)


def _dec_count(r: _Reader) -> m.OpCountResponse:
    return m.OpCountResponse(count=r.uint())


def _enc_lists(out: bytearray, msg: m.FetchListsResponse) -> None:
    _write_uint(out, len(msg.lists))
    for pl in msg.lists:
        _write_uint(out, pl.pl_id)
        _write_records(out, pl.records)


def _dec_lists(r: _Reader) -> m.FetchListsResponse:
    lists = tuple(
        PostingListResponse(pl_id=r.uint(), records=_read_records(r))
        for _ in range(r.uint())
    )
    return m.FetchListsResponse(lists=lists)


def _enc_snippet_resp(out: bytearray, msg: m.SnippetResponse) -> None:
    _write_uint(out, msg.snippet.doc_id)
    _write_str(out, msg.snippet.host)
    _write_str(out, msg.snippet.text)


def _dec_snippet_resp(r: _Reader) -> m.SnippetResponse:
    return m.SnippetResponse(
        snippet=Snippet(doc_id=r.uint(), host=r.text(), text=r.text())
    )


def _enc_record_list(out: bytearray, msg: m.RecordListResponse) -> None:
    _write_records(out, msg.records)


def _dec_record_list(r: _Reader) -> m.RecordListResponse:
    return m.RecordListResponse(records=_read_records(r))


def _enc_status_resp(out: bytearray, msg: m.ServerStatusResponse) -> None:
    _write_str(out, msg.server_id)
    _write_uint(out, msg.x_coordinate)
    _write_uint(out, msg.num_posting_lists)
    _write_uint(out, msg.num_elements)
    _write_uint(out, msg.storage_bytes)


def _dec_status_resp(r: _Reader) -> m.ServerStatusResponse:
    return m.ServerStatusResponse(
        server_id=r.text(),
        x_coordinate=r.uint(),
        num_posting_lists=r.uint(),
        num_elements=r.uint(),
        storage_bytes=r.uint(),
    )


def _enc_endpoints_resp(out: bytearray, msg: m.EndpointsResponse) -> None:
    _write_uint(out, len(msg.names))
    for name in msg.names:
        _write_str(out, name)


def _dec_endpoints_resp(r: _Reader) -> m.EndpointsResponse:
    return m.EndpointsResponse(
        names=tuple(r.text() for _ in range(r.uint()))
    )


def _enc_error(out: bytearray, msg: m.ErrorResponse) -> None:
    _write_str(out, msg.error)
    _write_str(out, msg.message)
    _write_str(out, msg.endpoint)


def _dec_error(r: _Reader) -> m.ErrorResponse:
    return m.ErrorResponse(error=r.text(), message=r.text(), endpoint=r.text())


def _enc_cache_get(out: bytearray, msg: m.CacheGetRequest) -> None:
    _write_token(out, msg.token)
    _write_str(out, msg.key)


def _dec_cache_get(r: _Reader) -> m.CacheGetRequest:
    return m.CacheGetRequest(token=_read_token(r), key=r.text())


def _enc_cache_put(out: bytearray, msg: m.CachePutRequest) -> None:
    _write_token(out, msg.token)
    _write_str(out, msg.key)
    _write_uint(out, msg.pl_id)
    _write_bytes(out, msg.value)


def _dec_cache_put(r: _Reader) -> m.CachePutRequest:
    return m.CachePutRequest(
        token=_read_token(r), key=r.text(), pl_id=r.uint(), value=r.blob()
    )


def _enc_cache_invalidate(
    out: bytearray, msg: m.CacheInvalidateRequest
) -> None:
    _write_uint(out, len(msg.pl_ids))
    for pl_id in msg.pl_ids:
        _write_uint(out, pl_id)


def _dec_cache_invalidate(r: _Reader) -> m.CacheInvalidateRequest:
    return m.CacheInvalidateRequest(
        pl_ids=tuple(r.uint() for _ in range(r.uint()))
    )


def _enc_cache_stats_req(out: bytearray, msg: m.CacheStatsRequest) -> None:
    pass


def _dec_cache_stats_req(r: _Reader) -> m.CacheStatsRequest:
    return m.CacheStatsRequest()


def _enc_cache_value(out: bytearray, msg: m.CacheValueResponse) -> None:
    _write_uint(out, 1 if msg.hit else 0)
    _write_bytes(out, msg.value)


def _dec_cache_value(r: _Reader) -> m.CacheValueResponse:
    return m.CacheValueResponse(hit=r.uint() != 0, value=r.blob())


def _enc_cache_stats_resp(
    out: bytearray, msg: m.CacheStatsResponse
) -> None:
    _write_str(out, msg.policy)
    _write_uint(out, msg.entries)
    _write_uint(out, msg.capacity)
    _write_uint(out, msg.hits)
    _write_uint(out, msg.misses)
    _write_uint(out, msg.evictions)
    _write_uint(out, msg.invalidations)
    _write_uint(out, msg.rejections)


def _dec_cache_stats_resp(r: _Reader) -> m.CacheStatsResponse:
    return m.CacheStatsResponse(
        policy=r.text(),
        entries=r.uint(),
        capacity=r.uint(),
        hits=r.uint(),
        misses=r.uint(),
        evictions=r.uint(),
        invalidations=r.uint(),
        rejections=r.uint(),
    )


def _enc_metrics_dump_req(out: bytearray, msg: m.MetricsDumpRequest) -> None:
    pass


def _dec_metrics_dump_req(r: _Reader) -> m.MetricsDumpRequest:
    return m.MetricsDumpRequest()


# Metric values are exact IEEE-754 doubles (latencies, ratios, EWMA
# gauges do not fit varints); 8 fixed big-endian bytes per value.
_F64 = struct.Struct(">d")


def _enc_metrics_dump_resp(
    out: bytearray, msg: m.MetricsDumpResponse
) -> None:
    _write_uint(out, len(msg.samples))
    for name, labels, value in msg.samples:
        _write_str(out, name)
        _write_str(out, labels)
        out.extend(_F64.pack(value))


def _dec_metrics_dump_resp(r: _Reader) -> m.MetricsDumpResponse:
    count = r.uint()
    samples = []
    for _ in range(count):
        name = r.text()
        labels = r.text()
        if r.pos + _F64.size > len(r.data):
            raise ProtocolError("truncated metric value")
        (value,) = _F64.unpack_from(r.data, r.pos)
        r.pos += _F64.size
        samples.append((name, labels, value))
    return m.MetricsDumpResponse(samples=tuple(samples))


# -- packed record arrays (the async/pipelined protocol revision) -------------
#
# Varint-decoding a share record costs ~15 Python bytecode loops per
# field; at hundreds of records per lookup response that is the single
# largest CPU item on the socket read path (profiled at ~45% of query
# wall time). The packed form trades a 3-byte width header per array
# for fixed-width big-endian fields, so encode/decode collapses to one
# ``int.to_bytes``/``int.from_bytes`` C call per field. Packed variants
# are *new type bytes* for the *same* message classes — appending types
# is backwards-compatible under the versioning rules, old peers reject
# only these frames (with a typed error), and every peer that emits
# them also accepts the classic varint forms. The async transport
# negotiates them via its correlated frames; the classic socket backend
# keeps PR 4's exact bytes on the wire.


def _field_width(largest: int) -> int:
    """Bytes needed for the widest value of a packed column (min 1)."""
    return max(1, (largest.bit_length() + 7) // 8)


def _write_packed_records(
    out: bytearray, records: tuple[ShareRecord, ...]
) -> None:
    _write_uint(out, len(records))
    if not records:
        return
    w_element = _field_width(max(r.element_id for r in records))
    w_group = _field_width(max(r.group_id for r in records))
    w_share = _field_width(max(r.share_y for r in records))
    out.append(w_element)
    out.append(w_group)
    out.append(w_share)
    for r in records:
        out += r.element_id.to_bytes(w_element, "big")
        out += r.group_id.to_bytes(w_group, "big")
        out += r.share_y.to_bytes(w_share, "big")


def _read_packed_records(r: _Reader) -> tuple[ShareRecord, ...]:
    count = r.uint()
    if not count:
        return ()
    if r.pos + 3 > len(r.data):
        raise ProtocolError("truncated packed-record width header")
    data = r.data
    pos = r.pos
    w_element, w_group, w_share = data[pos], data[pos + 1], data[pos + 2]
    pos += 3
    if not (w_element and w_group and w_share):
        raise ProtocolError("packed-record field width of zero")
    stride = w_element + w_group + w_share
    end = pos + stride * count
    if end > len(data):
        raise ProtocolError("truncated packed record array")
    from_bytes = int.from_bytes
    out = []
    for _ in range(count):
        split_e = pos + w_element
        split_g = split_e + w_group
        row_end = split_g + w_share
        out.append(
            ShareRecord(
                element_id=from_bytes(data[pos:split_e], "big"),
                group_id=from_bytes(data[split_e:split_g], "big"),
                share_y=from_bytes(data[split_g:row_end], "big"),
            )
        )
        pos = row_end
    r.pos = pos
    return tuple(out)


def _enc_lists_packed(out: bytearray, msg: m.FetchListsResponse) -> None:
    _write_uint(out, len(msg.lists))
    for pl in msg.lists:
        _write_uint(out, pl.pl_id)
        _write_packed_records(out, pl.records)


def _dec_lists_packed(r: _Reader) -> m.FetchListsResponse:
    lists = tuple(
        PostingListResponse(pl_id=r.uint(), records=_read_packed_records(r))
        for _ in range(r.uint())
    )
    return m.FetchListsResponse(lists=lists)


def _enc_record_list_packed(
    out: bytearray, msg: m.RecordListResponse
) -> None:
    _write_packed_records(out, msg.records)


def _dec_record_list_packed(r: _Reader) -> m.RecordListResponse:
    return m.RecordListResponse(records=_read_packed_records(r))


def _enc_insert_packed(out: bytearray, msg: m.InsertBatchRequest) -> None:
    _write_token(out, msg.token)
    ops = msg.operations
    _write_uint(out, len(ops))
    if not ops:
        return
    w_pl = _field_width(max(op.pl_id for op in ops))
    w_element = _field_width(max(op.element_id for op in ops))
    w_group = _field_width(max(op.group_id for op in ops))
    w_share = _field_width(max(op.share_y for op in ops))
    out += bytes((w_pl, w_element, w_group, w_share))
    for op in ops:
        out += op.pl_id.to_bytes(w_pl, "big")
        out += op.element_id.to_bytes(w_element, "big")
        out += op.group_id.to_bytes(w_group, "big")
        out += op.share_y.to_bytes(w_share, "big")


def _dec_insert_packed(r: _Reader) -> m.InsertBatchRequest:
    token = _read_token(r)
    count = r.uint()
    if not count:
        return m.InsertBatchRequest(token=token, operations=())
    if r.pos + 4 > len(r.data):
        raise ProtocolError("truncated packed-insert width header")
    data = r.data
    pos = r.pos
    widths = data[pos : pos + 4]
    pos += 4
    if 0 in widths:
        raise ProtocolError("packed-insert field width of zero")
    w_pl, w_element, w_group, w_share = widths
    end = pos + (w_pl + w_element + w_group + w_share) * count
    if end > len(data):
        raise ProtocolError("truncated packed insert batch")
    from_bytes = int.from_bytes
    ops = []
    for _ in range(count):
        split_p = pos + w_pl
        split_e = split_p + w_element
        split_g = split_e + w_group
        row_end = split_g + w_share
        ops.append(
            InsertOp(
                pl_id=from_bytes(data[pos:split_p], "big"),
                element_id=from_bytes(data[split_p:split_e], "big"),
                group_id=from_bytes(data[split_e:split_g], "big"),
                share_y=from_bytes(data[split_g:row_end], "big"),
            )
        )
        pos = row_end
    r.pos = pos
    return m.InsertBatchRequest(token=token, operations=tuple(ops))


def _enc_adopt_packed(out: bytearray, msg: m.AdoptListRequest) -> None:
    _write_uint(out, msg.pl_id)
    _write_packed_records(out, msg.records)


def _dec_adopt_packed(r: _Reader) -> m.AdoptListRequest:
    return m.AdoptListRequest(
        pl_id=r.uint(), records=_read_packed_records(r)
    )


# -- public LEB128 surface ----------------------------------------------------
#
# The segmented storage engine (``repro.storage``) frames its on-disk
# records with the same varint primitives the wire protocol uses, so the
# byte discipline (and its Hypothesis suite) is shared rather than
# reimplemented. These aliases are the supported way in.

write_uint = _write_uint
Reader = _Reader


#: type byte -> (message class, encoder, decoder). Type bytes are wire
#: contract: never renumber, only append.
_REGISTRY: dict[int, tuple[type, Callable, Callable]] = {
    0x01: (m.InsertBatchRequest, _enc_insert, _dec_insert),
    0x02: (m.DeleteBatchRequest, _enc_delete, _dec_delete),
    0x03: (m.FetchListsRequest, _enc_fetch, _dec_fetch),
    0x04: (m.FetchSnippetRequest, _enc_snippet_req, _dec_snippet_req),
    0x05: (m.ExportListRequest, _enc_export, _dec_export),
    0x06: (m.AdoptListRequest, _enc_adopt, _dec_adopt),
    0x07: (m.DropListRequest, _enc_drop, _dec_drop),
    0x08: (m.ServerStatusRequest, _enc_status_req, _dec_status_req),
    0x09: (m.EndpointsRequest, _enc_endpoints_req, _dec_endpoints_req),
    0x0A: (m.ShipSnapshotRequest, _enc_ship_snapshot, _dec_ship_snapshot),
    0x0B: (
        m.AdoptSnapshotRequest,
        _enc_adopt_snapshot,
        _dec_adopt_snapshot,
    ),
    0x0C: (m.CacheGetRequest, _enc_cache_get, _dec_cache_get),
    0x0D: (m.CachePutRequest, _enc_cache_put, _dec_cache_put),
    0x0E: (
        m.CacheInvalidateRequest,
        _enc_cache_invalidate,
        _dec_cache_invalidate,
    ),
    0x0F: (m.CacheStatsRequest, _enc_cache_stats_req, _dec_cache_stats_req),
    0x10: (
        m.MetricsDumpRequest,
        _enc_metrics_dump_req,
        _dec_metrics_dump_req,
    ),
    0x21: (m.OpCountResponse, _enc_count, _dec_count),
    0x22: (m.FetchListsResponse, _enc_lists, _dec_lists),
    0x23: (m.SnippetResponse, _enc_snippet_resp, _dec_snippet_resp),
    0x24: (m.RecordListResponse, _enc_record_list, _dec_record_list),
    0x25: (m.ServerStatusResponse, _enc_status_resp, _dec_status_resp),
    0x26: (m.EndpointsResponse, _enc_endpoints_resp, _dec_endpoints_resp),
    0x27: (m.ErrorResponse, _enc_error, _dec_error),
    0x28: (m.SnapshotResponse, _enc_snapshot_resp, _dec_snapshot_resp),
    0x29: (m.CacheValueResponse, _enc_cache_value, _dec_cache_value),
    0x2A: (
        m.CacheStatsResponse,
        _enc_cache_stats_resp,
        _dec_cache_stats_resp,
    ),
    0x2B: (
        m.MetricsDumpResponse,
        _enc_metrics_dump_resp,
        _dec_metrics_dump_resp,
    ),
}

#: Packed variants: same message classes, new type bytes (0x40 block),
#: fixed-width record columns. Emitted only when the peer negotiated
#: the pipelined protocol revision (see ``encode_message(packed=True)``);
#: always accepted on decode.
_PACKED_REGISTRY: dict[int, tuple[type, Callable, Callable]] = {
    0x41: (m.InsertBatchRequest, _enc_insert_packed, _dec_insert_packed),
    0x42: (m.FetchListsResponse, _enc_lists_packed, _dec_lists_packed),
    0x43: (
        m.RecordListResponse,
        _enc_record_list_packed,
        _dec_record_list_packed,
    ),
    0x44: (m.AdoptListRequest, _enc_adopt_packed, _dec_adopt_packed),
}

_TYPE_BYTE = {cls: byte for byte, (cls, _e, _d) in _REGISTRY.items()}
_PACKED_TYPE_BYTE = {
    cls: byte for byte, (cls, _e, _d) in _PACKED_REGISTRY.items()
}
_DECODERS: dict[int, tuple[type, Callable, Callable]] = {
    **_REGISTRY,
    **_PACKED_REGISTRY,
}


def encode_message(message: Any, packed: bool = False) -> bytes:
    """Serialize one protocol message to a self-describing frame body.

    Args:
        message: the protocol dataclass to serialize.
        packed: prefer the fixed-width packed type byte when this
            message class has one (messages without a packed variant
            fall back to the classic encoding). Only emit packed frames
            to peers that negotiated the pipelined revision — classic
            peers reject the unknown type byte.

    Raises:
        ProtocolError: unknown message class or a negative integer field.
    """
    if packed:
        entry = _PACKED_TYPE_BYTE.get(type(message))
        if entry is not None:
            out = bytearray(MAGIC)
            out.append(m.PROTOCOL_VERSION)
            out.append(entry)
            _PACKED_REGISTRY[entry][1](out, message)
            return bytes(out)
    entry = _TYPE_BYTE.get(type(message))
    if entry is None:
        raise ProtocolError(
            f"{type(message).__name__} is not a protocol message"
        )
    out = bytearray(MAGIC)
    out.append(m.PROTOCOL_VERSION)
    out.append(entry)
    _REGISTRY[entry][1](out, message)
    return bytes(out)


def decode_message(data: bytes) -> Any:
    """Parse one frame body back into its message dataclass.

    Raises:
        ProtocolError: bad magic, unsupported version, unknown type,
            truncation, or trailing garbage.
    """
    if len(data) < HEADER_LEN:
        raise ProtocolError(f"frame shorter than the {HEADER_LEN}-byte header")
    if data[:2] != MAGIC:
        raise ProtocolError("bad magic; not a Zerber wire frame")
    version = data[2]
    if version != m.PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version} "
            f"(this peer speaks {m.PROTOCOL_VERSION})"
        )
    entry = _DECODERS.get(data[3])
    if entry is None:
        raise ProtocolError(f"unknown message type byte 0x{data[3]:02x}")
    reader = _Reader(data, HEADER_LEN)
    message = entry[2](reader)
    reader.done()
    return message
