"""The versioned wire-protocol message catalogue.

Zerber's threat model (paper §4–§5) is stated at a *network* boundary:
index servers see opaque share requests, never Python objects. This
module is that boundary made explicit — every operation a client or the
control plane performs against a server is one of the request/response
dataclasses below, each byte-serializable through
:mod:`repro.protocol.codec` and dispatched server-side by
:class:`repro.protocol.service.IndexServerService`.

Catalogue (requests → responses):

====================  ==============================  ====================
request               carries                          response
====================  ==============================  ====================
InsertBatchRequest    token + InsertOp batch           OpCountResponse
DeleteBatchRequest    token + DeleteOp batch           OpCountResponse
FetchListsRequest     token + posting-list ids         FetchListsResponse
FetchSnippetRequest   token + doc id + query terms     SnippetResponse
ExportListRequest     pl_id (admin/replication)        RecordListResponse
AdoptListRequest      pl_id + records (admin)          RecordListResponse
DropListRequest       pl_id (admin)                    RecordListResponse
ShipSnapshotRequest   pl_ids (admin/bulk transfer)     SnapshotResponse
AdoptSnapshotRequest  pl_ids + ZSNP image + suffix     OpCountResponse
ServerStatusRequest   —  (admin/observability)         ServerStatusResponse
EndpointsRequest      —  (transport discovery)         EndpointsResponse
CacheGetRequest       token + cache key (cache tier)   CacheValueResponse
CachePutRequest       token + key + pl_id + value      OpCountResponse
CacheInvalidateRequest  pl_ids (cache tier)            OpCountResponse
CacheStatsRequest     —  (cache tier observability)    CacheStatsResponse
MetricsDumpRequest    —  (metrics observability)       MetricsDumpResponse
(any, on failure)                                      ErrorResponse
====================  ==============================  ====================

Versioning rules:

- :data:`PROTOCOL_VERSION` is a single integer carried in every frame
  header. A decoder that sees a version it does not implement must
  reject the frame with :class:`~repro.errors.ProtocolError` — never
  guess at field layouts.
- Adding a *new message type* is backwards-compatible (old peers reject
  only frames of that type, with a typed error); changing the *fields*
  of an existing message requires bumping :data:`PROTOCOL_VERSION`.
- Integers are unsigned LEB128 varints, so widening a counter or a
  share never changes the format.

Every message also knows its **accounted** wire size
(:meth:`wire_bytes`): the §7.3 cost model the benchmarks have always
charged (4-byte ids, ``share_bytes``-byte shares, the token's
``wire_bytes``). The in-process transport charges these sizes against
the simulated network so every historical benchmark number stays
comparable; the socket transport moves real encoded bytes instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.client.snippets import Snippet
from repro.server.auth import AuthToken
from repro.server.index_server import (
    DeleteOp,
    InsertOp,
    PostingListResponse,
    ShareRecord,
)

#: Bump when the *layout* of an existing message changes.
#: v2: CacheGetRequest/CachePutRequest carry an AuthToken — the cache
#: tier authenticates callers and verifies group fingerprints.
PROTOCOL_VERSION = 2

#: Default share width (matches ceil(bits(DEFAULT_PRIME)/8)).
DEFAULT_SHARE_BYTES = 9


# -- requests -----------------------------------------------------------------


@dataclass(frozen=True)
class InsertBatchRequest:
    """One §5.4.1 update batch bound for one server."""

    token: AuthToken
    operations: tuple[InsertOp, ...]

    kind = "insert"

    def wire_bytes(self, share_bytes: int = DEFAULT_SHARE_BYTES) -> int:
        # Fixed-width operations: pl id + element id + group id + share.
        return self.token.wire_bytes() + len(self.operations) * (
            4 + 4 + 4 + share_bytes
        )


@dataclass(frozen=True)
class DeleteBatchRequest:
    """Per-element deletions ("its owner must delete each element
    separately", §7.3)."""

    token: AuthToken
    operations: tuple[DeleteOp, ...]

    kind = "delete"

    def wire_bytes(self, share_bytes: int = DEFAULT_SHARE_BYTES) -> int:
        return self.token.wire_bytes() + len(self.operations) * (4 + 4)


@dataclass(frozen=True)
class FetchListsRequest:
    """The §5.4.2 lookup: authenticated fetch of whole posting lists."""

    token: AuthToken
    pl_ids: tuple[int, ...]

    kind = "lookup"

    def wire_bytes(self, share_bytes: int = DEFAULT_SHARE_BYTES) -> int:
        return self.token.wire_bytes() + 4 * len(self.pl_ids)


@dataclass(frozen=True)
class FetchSnippetRequest:
    """Step 6 of Algorithm 2: a snippet read from a hosting peer."""

    token: AuthToken
    doc_id: int
    terms: tuple[str, ...]

    kind = "snippet"

    def wire_bytes(self, share_bytes: int = DEFAULT_SHARE_BYTES) -> int:
        return self.token.wire_bytes() + 8 + sum(len(t) for t in self.terms)


@dataclass(frozen=True)
class ExportListRequest:
    """Admin/replication: ship one list's stored share records out."""

    pl_id: int

    kind = "admin"

    def wire_bytes(self, share_bytes: int = DEFAULT_SHARE_BYTES) -> int:
        return 4


@dataclass(frozen=True)
class AdoptListRequest:
    """Admin/replication: merge slot-aligned records into the store."""

    pl_id: int
    records: tuple[ShareRecord, ...]

    kind = "admin"

    def wire_bytes(self, share_bytes: int = DEFAULT_SHARE_BYTES) -> int:
        return 4 + len(self.records) * (4 + 4 + share_bytes)


@dataclass(frozen=True)
class DropListRequest:
    """Admin/replication: discard a list the seat no longer owns.

    With ``count_only`` the response is an :class:`OpCountResponse`
    instead of the dropped records themselves — rebalance GC only needs
    the count, and shipping every discarded record back across the wire
    made GC cost as much as the transfer it was cleaning up after.
    """

    pl_id: int
    count_only: bool = False

    kind = "admin"

    def wire_bytes(self, share_bytes: int = DEFAULT_SHARE_BYTES) -> int:
        return 5


@dataclass(frozen=True)
class ShipSnapshotRequest:
    """Admin/replication: ask a seat for a sealed snapshot image of a
    set of posting lists — the bulk-transfer read of snapshot-shipping
    rebalance and anti-entropy repair. The response carries the exact
    ``ZSNP`` byte format the segmented engine writes to disk (fixed-width
    packed records, trailing CRC32), so the eventual receiver's CRC
    check spans the whole journey.
    """

    pl_ids: tuple[int, ...]

    kind = "admin"

    def wire_bytes(self, share_bytes: int = DEFAULT_SHARE_BYTES) -> int:
        return 4 + 4 * len(self.pl_ids)


@dataclass(frozen=True)
class AdoptSnapshotRequest:
    """Admin/replication: bulk-load a shipped snapshot into a seat.

    The receiver validates the image's CRC, *drops* its pre-existing
    data for every listed ``pl_id`` (stale records — including shares of
    since-deleted elements — must not survive the adoption), loads the
    image in one sequential pass, then replays ``suffix``: operations
    framed exactly like segment-file records, covering writes logged
    after the image's rotation point. Replace semantics are the point —
    an idempotent merge could never heal a seat that slept through a
    delete.

    Attributes:
        pl_ids: the lists this shipment covers (dropped before the
            load; a list absent from the image is left empty — shipping
            an empty posting list is how a receiver's stale copy dies).
        snapshot: a sealed ``ZSNP`` image (see
            :func:`repro.storage.snapshot.snapshot_bytes`).
        suffix: framed segment records to replay after the image
            (:func:`repro.storage.segment.encode_op_frames`); empty when
            the image alone is current.
    """

    pl_ids: tuple[int, ...]
    snapshot: bytes
    suffix: bytes = b""

    kind = "admin"

    def wire_bytes(self, share_bytes: int = DEFAULT_SHARE_BYTES) -> int:
        return (
            4 + 4 * len(self.pl_ids) + len(self.snapshot) + len(self.suffix)
        )


@dataclass(frozen=True)
class ServerStatusRequest:
    """Admin/observability: one seat's store statistics."""

    kind = "admin"

    def wire_bytes(self, share_bytes: int = DEFAULT_SHARE_BYTES) -> int:
        return 4


@dataclass(frozen=True)
class EndpointsRequest:
    """Transport discovery: which endpoints does the far side serve?

    Addressed to the transport itself (empty ``dst``), not to a seat —
    the socket client uses it to answer ``has_endpoint`` questions the
    in-process registry can answer locally.
    """

    kind = "admin"

    def wire_bytes(self, share_bytes: int = DEFAULT_SHARE_BYTES) -> int:
        return 4


@dataclass(frozen=True)
class CacheGetRequest:
    """Cache tier: look one entry up by its key.

    Keys are built client-side from the group fingerprint, the fan-out
    width, the posting-list id, and the list's write epoch (see
    :func:`repro.cachetier.wire.entry_key`). The tier *does* interpret
    the fingerprint component: it verifies ``token`` against the
    enterprise auth service and serves the entry only when the caller's
    live group set matches the key's fingerprint — an L2 value bundles
    >= k shares per element, so an unauthenticated get would hand any
    client reconstructible postings for groups it never joined,
    bypassing the index servers' per-request filtering.
    """

    token: AuthToken
    key: str

    kind = "cache"

    def wire_bytes(self, share_bytes: int = DEFAULT_SHARE_BYTES) -> int:
        return self.token.wire_bytes() + 4 + len(self.key)


@dataclass(frozen=True)
class CachePutRequest:
    """Cache tier: store one opaque value under ``key``.

    ``pl_id`` rides along so write-path invalidation can evict by
    posting list without the tier understanding the value format. The
    value is the encoded share-level entry
    (:func:`repro.cachetier.wire.encode_entry`). ``token`` is verified
    and the key's group fingerprint checked against the caller's live
    group set, exactly like :class:`CacheGetRequest` — otherwise any
    client could poison the entries other fingerprints are served.
    """

    token: AuthToken
    key: str
    pl_id: int
    value: bytes

    kind = "cache"

    def wire_bytes(self, share_bytes: int = DEFAULT_SHARE_BYTES) -> int:
        return self.token.wire_bytes() + 4 + len(self.key) + 4 + len(self.value)


@dataclass(frozen=True)
class CacheInvalidateRequest:
    """Cache tier: evict every entry of the named posting lists.

    Sent by the coordinator *before* a write is delivered to any seat —
    the same invalidate-before-write rule the coordinator's local share
    cache enforces. Idempotent: invalidating an absent list evicts
    nothing and succeeds.
    """

    pl_ids: tuple[int, ...]

    kind = "cache"

    def wire_bytes(self, share_bytes: int = DEFAULT_SHARE_BYTES) -> int:
        return 4 + 4 * len(self.pl_ids)


@dataclass(frozen=True)
class CacheStatsRequest:
    """Cache tier observability: counters and occupancy."""

    kind = "cache"

    def wire_bytes(self, share_bytes: int = DEFAULT_SHARE_BYTES) -> int:
        return 4


@dataclass(frozen=True)
class MetricsDumpRequest:
    """Metrics observability: every registry sample in one answer.

    Token-free like :class:`ServerStatusRequest` and
    :class:`CacheStatsRequest` — the dump carries counters and
    quantiles only, never shares, keys, or tokens.
    """

    kind = "admin"

    def wire_bytes(self, share_bytes: int = DEFAULT_SHARE_BYTES) -> int:
        return 4


# -- responses ----------------------------------------------------------------


@dataclass(frozen=True)
class OpCountResponse:
    """Insert/delete acknowledgement: how many operations took effect."""

    count: int

    def wire_bytes(self, share_bytes: int = DEFAULT_SHARE_BYTES) -> int:
        return 8


@dataclass(frozen=True)
class FetchListsResponse:
    """The §5.4.2 answer: one :class:`PostingListResponse` per asked list."""

    lists: tuple[PostingListResponse, ...]

    def wire_bytes(self, share_bytes: int = DEFAULT_SHARE_BYTES) -> int:
        return sum(pl.wire_bytes(share_bytes) for pl in self.lists)


@dataclass(frozen=True)
class SnippetResponse:
    """A hosting peer's snippet (with the §7.3 XML envelope sizing)."""

    snippet: Snippet

    def wire_bytes(self, share_bytes: int = DEFAULT_SHARE_BYTES) -> int:
        return self.snippet.wire_bytes()


@dataclass(frozen=True)
class RecordListResponse:
    """Admin answer: the share records an export/adopt/drop touched."""

    records: tuple[ShareRecord, ...]

    def wire_bytes(self, share_bytes: int = DEFAULT_SHARE_BYTES) -> int:
        return len(self.records) * (4 + 4 + share_bytes)


@dataclass(frozen=True)
class SnapshotResponse:
    """A seat's answer to :class:`ShipSnapshotRequest`: the sealed image
    plus how many records it packs (the caller's transfer accounting)."""

    snapshot: bytes
    record_count: int

    def wire_bytes(self, share_bytes: int = DEFAULT_SHARE_BYTES) -> int:
        return len(self.snapshot) + 8


@dataclass(frozen=True)
class ServerStatusResponse:
    """One seat's observable store statistics."""

    server_id: str
    x_coordinate: int
    num_posting_lists: int
    num_elements: int
    storage_bytes: int

    def wire_bytes(self, share_bytes: int = DEFAULT_SHARE_BYTES) -> int:
        return len(self.server_id) + 4 * 4


@dataclass(frozen=True)
class EndpointsResponse:
    """The far transport's endpoint names, sorted."""

    names: tuple[str, ...]

    def wire_bytes(self, share_bytes: int = DEFAULT_SHARE_BYTES) -> int:
        return 4 + sum(len(n) + 1 for n in self.names)


@dataclass(frozen=True)
class CacheValueResponse:
    """The cache tier's answer to :class:`CacheGetRequest`.

    ``hit`` distinguishes "absent" from "present and empty" — an empty
    posting list is a perfectly cacheable fact.
    """

    hit: bool
    value: bytes = b""

    def wire_bytes(self, share_bytes: int = DEFAULT_SHARE_BYTES) -> int:
        return 1 + len(self.value)


@dataclass(frozen=True)
class CacheStatsResponse:
    """Cache-tier counters: the memcache ``stats`` analogue."""

    policy: str
    entries: int
    capacity: int
    hits: int
    misses: int
    evictions: int
    invalidations: int
    rejections: int

    def wire_bytes(self, share_bytes: int = DEFAULT_SHARE_BYTES) -> int:
        return len(self.policy) + 7 * 4


@dataclass(frozen=True)
class MetricsDumpResponse:
    """The metrics registry's sample set at one instant.

    Each sample is ``(name, canonical label string, value)`` — the
    wire twin of :class:`repro.observability.metrics.MetricSample`.
    Values travel as exact IEEE-754 doubles (8 wire bytes each), so a
    remote scrape renders byte-identically to a local one.
    """

    samples: tuple[tuple[str, str, float], ...]

    def wire_bytes(self, share_bytes: int = DEFAULT_SHARE_BYTES) -> int:
        return 4 + sum(
            len(name) + len(labels) + 8 for name, labels, _ in self.samples
        )


@dataclass(frozen=True)
class ErrorResponse:
    """A server-side failure shipped back over the wire.

    Attributes:
        error: the :mod:`repro.errors` class name — re-raised verbatim
            by the client transport (see :func:`repro.errors.error_class`).
        message: the exception text; never carries shares or secrets
            (library exceptions are safe to log by contract).
        endpoint: for :class:`~repro.errors.UnknownEndpointError`, the
            endpoint that was addressed.
    """

    error: str
    message: str
    endpoint: str = ""

    def wire_bytes(self, share_bytes: int = DEFAULT_SHARE_BYTES) -> int:
        return len(self.error) + len(self.message) + len(self.endpoint) + 3


#: Requests a seat's service understands (EndpointsRequest is handled by
#: the transport itself).
REQUEST_TYPES = (
    InsertBatchRequest,
    DeleteBatchRequest,
    FetchListsRequest,
    FetchSnippetRequest,
    ExportListRequest,
    AdoptListRequest,
    DropListRequest,
    ShipSnapshotRequest,
    AdoptSnapshotRequest,
    ServerStatusRequest,
    EndpointsRequest,
    CacheGetRequest,
    CachePutRequest,
    CacheInvalidateRequest,
    CacheStatsRequest,
    MetricsDumpRequest,
)

RESPONSE_TYPES = (
    OpCountResponse,
    FetchListsResponse,
    SnippetResponse,
    RecordListResponse,
    SnapshotResponse,
    ServerStatusResponse,
    EndpointsResponse,
    ErrorResponse,
    CacheValueResponse,
    CacheStatsResponse,
    MetricsDumpResponse,
)
