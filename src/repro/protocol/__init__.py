"""The wire-protocol service API: messages, codec, services, transports.

This package is the explicit network boundary the paper's threat model
(§4–§5) assumes: clients and the cluster control plane speak *versioned,
byte-serializable messages* to named endpoints over a pluggable
:class:`~repro.protocol.transport.Transport`; nothing client-side ever
dispatches on an :class:`~repro.server.index_server.IndexServer` object
again.

- :mod:`repro.protocol.messages`  — the request/response catalogue and
  versioning rules;
- :mod:`repro.protocol.codec`     — the compact binary frame codec;
- :mod:`repro.protocol.service`   — server-side dispatchers;
- :mod:`repro.protocol.transport` — the in-process (simulated-network)
  and threaded socket (real TCP) backends;
- :mod:`repro.protocol.async_transport` — the pipelined asyncio
  backend: correlated frames, one multiplexed connection per client,
  packed encodings.
"""

from repro.protocol.async_transport import (
    AsyncSocketServer,
    AsyncSocketTransport,
)
from repro.protocol.codec import decode_message, encode_message
from repro.protocol.messages import (
    PROTOCOL_VERSION,
    AdoptListRequest,
    DeleteBatchRequest,
    DropListRequest,
    EndpointsRequest,
    EndpointsResponse,
    ErrorResponse,
    ExportListRequest,
    FetchListsRequest,
    FetchListsResponse,
    FetchSnippetRequest,
    InsertBatchRequest,
    OpCountResponse,
    RecordListResponse,
    ServerStatusRequest,
    ServerStatusResponse,
    SnippetResponse,
)
from repro.protocol.service import (
    IndexServerService,
    SnippetHostService,
    error_response,
    raise_for_error,
)
from repro.protocol.transport import (
    InProcessTransport,
    SocketServer,
    SocketTransport,
    Transport,
)

__all__ = [
    "AsyncSocketServer",
    "AsyncSocketTransport",
    "PROTOCOL_VERSION",
    "AdoptListRequest",
    "DeleteBatchRequest",
    "DropListRequest",
    "EndpointsRequest",
    "EndpointsResponse",
    "ErrorResponse",
    "ExportListRequest",
    "FetchListsRequest",
    "FetchListsResponse",
    "FetchSnippetRequest",
    "InsertBatchRequest",
    "OpCountResponse",
    "RecordListResponse",
    "ServerStatusRequest",
    "ServerStatusResponse",
    "SnippetResponse",
    "IndexServerService",
    "SnippetHostService",
    "error_response",
    "raise_for_error",
    "InProcessTransport",
    "SocketServer",
    "SocketTransport",
    "Transport",
    "decode_message",
    "encode_message",
]
