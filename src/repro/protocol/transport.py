"""Pluggable transports: how protocol messages reach their endpoint.

Three interchangeable backends behind one :class:`Transport` contract:

- :class:`InProcessTransport` — endpoints are services in this process.
  When a :class:`~repro.server.transport.SimulatedNetwork` is attached,
  every call is routed through it with the *accounted* message sizes
  (:meth:`wire_bytes`), so the §7.3 latency/byte ledger — and therefore
  every historical benchmark number — is preserved bit for bit. Without
  a network, dispatch is a plain function call (the read hot path).
- :class:`SocketTransport` / :class:`SocketServer` — real TCP, real
  bytes. Frames are length-prefixed codec messages; each client thread
  keeps a persistent connection, so the cluster's thread-pooled fan-out
  overlaps genuine network latency with reconstruction CPU. Server-side
  failures travel as ``ErrorResponse`` frames and re-raise client-side
  as the same :mod:`repro.errors` class.
- :class:`~repro.protocol.async_transport.AsyncSocketServer` /
  :class:`~repro.protocol.async_transport.AsyncSocketTransport`
  (``repro.protocol.async_transport``) — the pipelined revision: one
  asyncio connection multiplexes many in-flight requests via the
  correlated frame form (:data:`CORRELATION_FLAG`), with bounded
  per-connection write queues and graceful drain on close. Correlated
  frames also negotiate the packed message encodings; plain frames
  keep parsing everywhere, so the revisions interoperate in both
  directions.

The contract both backends honour, and any future backend (async,
shared-memory, ...) must too:

- ``call(src, dst, request)`` returns the response message or raises
  the failure the server raised; a dead or missing endpoint raises
  :class:`~repro.errors.TransportError`
  (:class:`~repro.errors.UnknownEndpointError` when the name itself is
  unknown — the kill-pod race), which the cluster failover ladder
  absorbs identically on every backend;
- responses are byte-identical across backends for identical stores —
  the CI equivalence gate runs the same seeds over both.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from typing import Any, Callable

from repro.errors import (
    DeadlineExceededError,
    ProtocolError,
    ReproError,
    TransportError,
    UnknownEndpointError,
)
from repro.protocol.codec import decode_message, encode_message
from repro.protocol.messages import (
    DEFAULT_SHARE_BYTES,
    CacheGetRequest,
    CacheInvalidateRequest,
    CacheStatsRequest,
    EndpointsRequest,
    EndpointsResponse,
    ErrorResponse,
    ExportListRequest,
    FetchListsRequest,
    FetchSnippetRequest,
    MetricsDumpRequest,
    ServerStatusRequest,
    ShipSnapshotRequest,
)
from repro.protocol.service import error_response, raise_for_error
# Submodule import (not the repro.observability package __init__) for
# the same cycle-avoidance reason as the resilience imports below.
from repro.observability.tracing import (
    TraceContext,
    current_trace,
    span,
    trace_scope,
)
# Submodule imports on purpose: the repro.resilience *package* pulls in
# the chaos harness, which imports this module back.
from repro.resilience.admission import AdmissionController
from repro.resilience.deadline import (
    Deadline,
    check_deadline,
    current_deadline,
    deadline_scope,
)
from repro.resilience.retry import RetryPolicy
from repro.server.transport import SimulatedNetwork

#: A frame longer than this is garbage (or hostile), not a message.
MAX_FRAME_BYTES = 1 << 26  # 64 MiB

#: Requests a broken connection may safely re-send: pure reads. A write
#: (insert/delete/adopt/drop) whose response frame was lost may already
#: have been applied — re-sending it would double-apply server-side
#: bookkeeping (e.g. the §5.4.1 update log the correlation experiments
#: read), so writes fail fast instead and the caller's failover /
#: re-provisioning machinery decides.
_RETRY_SAFE = (
    FetchListsRequest,
    FetchSnippetRequest,
    ExportListRequest,
    ShipSnapshotRequest,
    ServerStatusRequest,
    EndpointsRequest,
    # Cache-tier reads are pure; invalidation is idempotent (evicting an
    # already-evicted list is a no-op), so re-sending it is safe. A
    # CachePut is *not* retry-safe by policy: a lost put only costs a
    # future miss, so it fails fast like every other write.
    CacheGetRequest,
    CacheStatsRequest,
    CacheInvalidateRequest,
    # A metrics dump is a pure read of counters and gauges.
    MetricsDumpRequest,
)

_LEN = struct.Struct(">I")

#: High bit of the length prefix: this frame carries a 4-byte
#: correlation id between the length word and the payload. Frame
#: lengths are capped at :data:`MAX_FRAME_BYTES` (1 << 26), so the top
#: bits of the length word are free by construction — a classic peer
#: that sees the flag rejects the "oversized" frame with a typed
#: :class:`ProtocolError` instead of misparsing it, and plain frames
#: parse unchanged everywhere. Correlated frames are how the pipelined
#: protocol revision is negotiated: a request that carries a
#: correlation id states that its sender multiplexes (responses may
#: return out of order, matched by id) and accepts the packed message
#: encodings (:func:`repro.protocol.codec.encode_message` with
#: ``packed=True``).
CORRELATION_FLAG = 0x8000_0000

#: Second-highest bit, but of the *request envelope's* name-length word
#: (inside the frame payload, see :func:`_pack_request`): the endpoint
#: name is followed by a 4-byte big-endian **remaining deadline budget
#: in microseconds**. Same negotiation story as the correlation flag —
#: endpoint names can never be anywhere near :data:`MAX_FRAME_BYTES`
#: long, so on a classic peer the flagged word reads as an absurd name
#: length and the request is rejected with the typed "truncated inside
#: endpoint name" :class:`ProtocolError` (shipped back as an
#: ``ErrorResponse``), never misparsed; deadline-free requests are
#: byte-identical to the previous revision everywhere. The budget is
#: relative, not an absolute instant: wall clocks don't agree across
#: machines, and losing the transit time only makes the server side
#: *more* conservative about a deadline it would enforce anyway.
DEADLINE_FLAG = 0x4000_0000

#: Third-highest bit of the request envelope's name-length word: the
#: request carries a trace context — an **8-byte big-endian trace id
#: plus a 2-byte big-endian hop counter** — after the endpoint name
#: and after the optional deadline budget (both flags may be set).
#: Negotiation is the deadline story again: the flag makes the word an
#: absurd name length on a classic peer, which rejects the frame with
#: the typed "truncated inside endpoint name" :class:`ProtocolError`
#: rather than misparse it, and untraced requests stay byte-identical
#: to the previous revision. The context is *passive*: a server
#: restores it around dispatch so its span lands under the right trace
#: id, but no routing, retry, or response byte ever depends on it —
#: that is how tracing preserves the byte-identity invariant.
TRACE_FLAG = 0x2000_0000

#: The wire form of a trace context: trace id (8) + hop counter (2).
_TRACE = struct.Struct(">QH")


def _wire_trace() -> tuple[int, int] | None:
    """The ambient trace as ``(trace_id, next hop)`` for the wire."""
    trace = current_trace()
    if trace is None:
        return None
    advanced = trace.next_hop()
    return advanced.trace_id, advanced.hop


class Transport:
    """Where protocol messages go. See the module docstring for the laws."""

    def call(self, src: str, dst: str, request: Any) -> Any:
        raise NotImplementedError

    def has_endpoint(self, name: str) -> bool:
        raise NotImplementedError

    def endpoints(self) -> list[str]:
        raise NotImplementedError

    def close(self) -> None:  # idempotent everywhere
        pass

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class InProcessTransport(Transport):
    """Endpoint registry dispatching to services in this process.

    Args:
        network: optional :class:`SimulatedNetwork`. When given, every
            call is charged against it (same endpoint names, same
            message kinds, same accounted sizes as the pre-protocol
            code), and endpoints are mirrored into its registry.
        share_bytes: wire width of one share for the accounted sizes.
        resolver: optional fallback ``name -> service | None``. Lets a
            standalone client resolve a fleet that grows after the
            transport was built (``ZerberDeployment.add_server``).
    """

    def __init__(
        self,
        network: SimulatedNetwork | None = None,
        share_bytes: int = DEFAULT_SHARE_BYTES,
        resolver: Callable[[str], Any] | None = None,
    ) -> None:
        self._services: dict[str, Any] = {}
        self._network = network
        self._share_bytes = share_bytes
        self._resolver = resolver

    @property
    def network(self) -> SimulatedNetwork | None:
        return self._network

    # -- registry -------------------------------------------------------------

    def register(self, name: str, service: Any) -> None:
        """Attach one endpoint (anything with ``handle(request)``)."""
        if name in self._services:
            raise TransportError(f"endpoint {name!r} already registered")
        self._services[name] = service
        if self._network is not None and not self._network.has_endpoint(name):
            self._network.register(name, _network_adapter(service))

    def unregister(self, name: str) -> None:
        """Drop one endpoint (a retired seat leaves the transport)."""
        if name not in self._services:
            raise UnknownEndpointError(
                name, f"endpoint {name!r} is not registered"
            )
        del self._services[name]
        if self._network is not None and self._network.has_endpoint(name):
            self._network.unregister(name)

    def has_endpoint(self, name: str) -> bool:
        return name in self._services

    def endpoints(self) -> list[str]:
        return sorted(self._services)

    def _resolve(self, name: str) -> Any:
        service = self._services.get(name)
        if service is None and self._resolver is not None:
            service = self._resolver(name)
            if service is not None:
                self.register(name, service)
        if service is None:
            raise UnknownEndpointError(name)
        return service

    # -- dispatch ------------------------------------------------------------

    def call(self, src: str, dst: str, request: Any) -> Any:
        # In-process there is no wire to carry a budget: caller and
        # service share the thread, so the ambient deadline *is* the
        # propagated one. Enforce it at the same point the socket
        # servers do — before dispatch.
        check_deadline(f"call to {dst!r}")
        service = self._resolve(dst)
        if self._network is not None:
            share_bytes = self._share_bytes
            return self._network.call(
                src,
                dst,
                request.kind,
                request,
                request_bytes=request.wire_bytes(share_bytes),
                response_bytes_of=lambda r: r.wire_bytes(share_bytes),
            )
        return service.handle(request)

    def dispatch_local(self, dst: str, request: Any) -> Any:
        """Hand a request straight to the service, no network accounting.

        The socket server uses this: its bytes are real, charging the
        simulated ledger on top would double-count.
        """
        return self._resolve(dst).handle(request)


def _network_adapter(service: Any) -> Callable[[str, Any], Any]:
    """A :class:`SimulatedNetwork` handler fronting one service."""

    def handler(_kind: str, message: Any) -> Any:
        return service.handle(message)

    return handler


# -- sockets -----------------------------------------------------------------


def handle_request_payload(
    registry: InProcessTransport,
    payload: bytes,
    received_at: float | None = None,
    admission: AdmissionController | None = None,
    metrics: "MetricsRegistry | None" = None,
    transport_label: str = "socket",
) -> Any:
    """One server-side request leg: unpack, dispatch, never raise.

    Shared by the threaded and async socket servers — every failure
    (including a non-Repro bug inside a service) comes back as a typed
    :class:`ErrorResponse` so the client sees "server broke", not "seat
    is dead" (which would trigger failover, or a retry for reads).

    A request carrying a wire deadline budget (:data:`DEADLINE_FLAG`)
    is checked *before* dispatch — an already-expired request is pure
    wasted work (its caller has given up) and comes back as a typed
    ``DeadlineExceededError`` instead. ``received_at`` is the monotonic
    instant the frame finished arriving: queueing time between read and
    dispatch counts against the budget, exactly the delay an overloaded
    server adds. When an ``admission`` controller is given, dispatch
    concurrency beyond its bound is shed as a typed retryable
    ``OverloadedError`` rather than queued into latency collapse.
    When a ``metrics`` registry is given, the server's frame and byte
    counters publish into it, labelled by ``transport_label``.
    """
    if metrics is not None:
        metrics.counter(
            "zerber_server_frames_total", transport=transport_label
        ).inc()
        metrics.counter(
            "zerber_server_request_bytes_total", transport=transport_label
        ).inc(len(payload))
    try:
        dst, request, budget_us, wire_trace = _unpack_request(payload)
        deadline: Deadline | None = None
        if budget_us is not None:
            start = (
                received_at if received_at is not None else time.monotonic()
            )
            deadline = Deadline(start + budget_us / 1e6)
            deadline.check(f"request for {dst!r}")
        # Restore the wire trace context (if any) around dispatch so
        # the server-side span lands under the caller's trace id at
        # the hop the caller stamped. Passive: nothing below routes,
        # retries, or encodes differently because a trace is present.
        trace = (
            TraceContext(trace_id=wire_trace[0], hop=wire_trace[1])
            if wire_trace is not None
            else None
        )
        if isinstance(request, EndpointsRequest):
            return EndpointsResponse(names=tuple(registry.endpoints()))
        if admission is not None:
            admission.admit(f"request for {dst!r}")
            try:
                with deadline_scope(deadline=deadline), trace_scope(
                    trace=trace
                ), span(f"server:{dst}") as server_span:
                    server_span.wire_bytes = len(payload)
                    return registry.dispatch_local(dst, request)
            finally:
                admission.release()
        with deadline_scope(deadline=deadline), trace_scope(
            trace=trace
        ), span(f"server:{dst}") as server_span:
            server_span.wire_bytes = len(payload)
            return registry.dispatch_local(dst, request)
    except ReproError as exc:
        return error_response(exc)
    except Exception as exc:  # noqa: BLE001 - a server bug must not
        # kill the connection silently.
        return ErrorResponse(
            error="ReproError",
            message=f"internal server error: "
            f"{type(exc).__name__}: {exc}",
        )


def _read_exact(sock: socket.socket, length: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < length:
        chunk = sock.recv(length - len(chunks))
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        chunks.extend(chunk)
    return bytes(chunks)


def _read_frame(sock: socket.socket) -> tuple[int | None, bytes]:
    """One frame off the wire: ``(correlation id | None, payload)``."""
    (word,) = _LEN.unpack(_read_exact(sock, _LEN.size))
    corr_id: int | None = None
    length = word
    if word & CORRELATION_FLAG:
        length = word ^ CORRELATION_FLAG
        (corr_id,) = _LEN.unpack(_read_exact(sock, _LEN.size))
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the cap")
    return corr_id, _read_exact(sock, length)


def _write_frame(
    sock: socket.socket, payload: bytes, corr_id: int | None = None
) -> None:
    sock.sendall(frame_bytes(payload, corr_id))


def frame_bytes(payload: bytes, corr_id: int | None = None) -> bytes:
    """A complete wire frame: length word (+ correlation id) + payload."""
    if corr_id is None:
        return _LEN.pack(len(payload)) + payload
    return (
        _LEN.pack(len(payload) | CORRELATION_FLAG)
        + _LEN.pack(corr_id)
        + payload
    )


def _pack_request(
    dst: str,
    request: Any,
    packed: bool = False,
    budget_us: int | None = None,
    trace: tuple[int, int] | None = None,
) -> bytes:
    name = dst.encode("utf-8")
    word = len(name)
    tail = b""
    if budget_us is not None:
        word |= DEADLINE_FLAG
        tail += _LEN.pack(budget_us)
    if trace is not None:
        word |= TRACE_FLAG
        trace_id, hop = trace
        tail += _TRACE.pack(trace_id, hop)
    return (
        _LEN.pack(word) + name + tail + encode_message(request, packed=packed)
    )


def _unpack_request(
    payload: bytes,
) -> tuple[str, Any, int | None, tuple[int, int] | None]:
    """``(dst, request, remaining budget µs | None, (trace id, hop) |
    None)`` off one frame."""
    if len(payload) < _LEN.size:
        raise ProtocolError("request frame shorter than its name header")
    (word,) = _LEN.unpack(payload[: _LEN.size])
    has_deadline = bool(word & DEADLINE_FLAG)
    has_trace = bool(word & TRACE_FLAG)
    name_len = word & ~(DEADLINE_FLAG | TRACE_FLAG)
    body_start = _LEN.size + name_len
    if name_len > MAX_FRAME_BYTES or body_start > len(payload):
        raise ProtocolError("request frame truncated inside endpoint name")
    try:
        dst = payload[_LEN.size : body_start].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError("endpoint name is not valid UTF-8") from exc
    budget_us: int | None = None
    if has_deadline:
        budget_end = body_start + _LEN.size
        if budget_end > len(payload):
            raise ProtocolError(
                "request frame truncated inside deadline budget"
            )
        (budget_us,) = _LEN.unpack(payload[body_start:budget_end])
        body_start = budget_end
    trace: tuple[int, int] | None = None
    if has_trace:
        trace_end = body_start + _TRACE.size
        if trace_end > len(payload):
            raise ProtocolError(
                "request frame truncated inside trace context"
            )
        trace = _TRACE.unpack(payload[body_start:trace_end])
        body_start = trace_end
    return dst, decode_message(payload[body_start:]), budget_us, trace


class SocketServer:
    """Serve an :class:`InProcessTransport` registry over loopback/LAN TCP.

    One accept thread plus one thread per connection (clients keep
    persistent per-thread connections, so the thread count tracks
    client-side concurrency, not request volume). ``repro serve`` wraps
    this; deployments constructed with ``transport="socket"`` embed it.

    Finished handler threads prune themselves from the census as their
    connection closes, so connection churn cannot grow the thread list
    without bound, and ``idle_timeout_s`` (when set) closes connections
    that go quiet — a stalled or half-open client no longer pins a
    handler thread forever. Requests that arrive as *correlated* frames
    (the pipelined revision's form) are answered with the same
    correlation id and the packed message encoding; this server handles
    them one at a time per connection, so a multiplexing client gets
    correct-but-serial service from the threaded backend.
    """

    def __init__(
        self,
        registry: InProcessTransport,
        host: str = "127.0.0.1",
        port: int = 0,
        idle_timeout_s: float | None = None,
        max_pending: int | None = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self._registry = registry
        self._idle_timeout_s = idle_timeout_s
        #: Optional observability registry the per-frame counters
        #: publish into (``zerber_server_frames_total`` et al.).
        self.metrics = metrics
        #: Bounded-dispatch gate (None: admit everything, the
        #: historical behaviour every byte-identity gate assumes).
        self.admission = (
            None if max_pending is None else AdmissionController(max_pending)
        )
        self._listener = socket.create_server(
            (host, port), reuse_port=False
        )
        # A blocked accept() does not reliably wake when another thread
        # closes the listener; poll with a short timeout instead so
        # close() always reaps the accept thread.
        self._listener.settimeout(0.1)
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._closed = threading.Event()
        self._draining = threading.Event()
        #: Did a drain() give up on in-flight requests? (``repro
        #: serve`` exits nonzero when so.)
        self.drain_aborted = False
        self._lock = threading.Lock()
        self._in_flight = 0
        self._connections: set[socket.socket] = set()
        self._threads: list[threading.Thread] = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"zerber-socket-accept-{self.address[1]}",
            daemon=True,
        )
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _peer = self._listener.accept()
            except TimeoutError:
                continue
            except OSError:
                return  # listener closed
            # None (the default) keeps the historical block-forever
            # behaviour; a configured idle timeout turns a quiet
            # connection's next read into a TimeoutError, which the
            # handler treats as "hang up on this client".
            conn.settimeout(self._idle_timeout_s)
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                if self._closed.is_set():
                    conn.close()
                    return
                self._connections.add(conn)
                thread = threading.Thread(
                    target=self._serve_connection,
                    args=(conn,),
                    name=f"zerber-socket-conn-{self.address[1]}",
                    daemon=True,
                )
                self._threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while not self._closed.is_set() and not self._draining.is_set():
                try:
                    corr_id, payload = _read_frame(conn)
                except TimeoutError:
                    # The configured idle timeout expired with no frame
                    # (or mid-frame from a stalled sender): hang up so
                    # a half-open client cannot pin this thread.
                    return
                except (ConnectionError, OSError):
                    return
                except ProtocolError:
                    # A garbage length prefix desynchronizes the frame
                    # stream — nothing sane can follow; drop the
                    # connection rather than parse noise forever.
                    return
                received_at = time.monotonic()
                with self._lock:
                    self._in_flight += 1
                try:
                    response = self._handle(payload, received_at)
                    try:
                        _write_frame(
                            conn,
                            encode_message(
                                response, packed=corr_id is not None
                            ),
                            corr_id,
                        )
                    except OSError:
                        return
                finally:
                    with self._lock:
                        self._in_flight -= 1
        finally:
            with self._lock:
                self._connections.discard(conn)
                # Reap this connection's census entry: the thread is
                # done the moment this frame exits, and close() joins
                # a live snapshot anyway. Without this the list grows
                # by one thread per connection ever accepted.
                try:
                    self._threads.remove(threading.current_thread())
                except ValueError:  # pragma: no cover - close() raced us
                    pass
            conn.close()

    @property
    def connection_thread_count(self) -> int:
        """Live connection-handler threads (the leak-regression probe)."""
        with self._lock:
            return len(self._threads)

    def _handle(
        self, payload: bytes, received_at: float | None = None
    ) -> Any:
        return handle_request_payload(
            self._registry,
            payload,
            received_at=received_at,
            admission=self.admission,
            metrics=self.metrics,
            transport_label="socket",
        )

    @property
    def in_flight(self) -> int:
        """Requests currently dispatched (the drain gauge)."""
        with self._lock:
            return self._in_flight

    def drain(self, timeout_s: float = 5.0) -> bool:
        """Graceful shutdown: stop accepting, finish in-flight, close.

        New connections and further frames on existing connections are
        refused immediately; requests already dispatched get up to
        ``timeout_s`` to answer. Returns True on a clean drain; on
        timeout, sets :attr:`drain_aborted` and force-closes (the
        ``repro serve`` SIGTERM path exits nonzero then).
        """
        self._draining.set()
        self._listener.close()
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            with self._lock:
                if self._in_flight == 0:
                    break
            time.sleep(0.005)
        with self._lock:
            self.drain_aborted = self._in_flight > 0
        self.close()
        return not self.drain_aborted

    def close(self) -> None:
        """Stop accepting, drop every connection, join the threads."""
        if self._closed.is_set():
            return
        self._closed.set()
        self._listener.close()
        with self._lock:
            connections = list(self._connections)
            threads = list(self._threads)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        self._accept_thread.join(timeout=5)
        for thread in threads:
            thread.join(timeout=5)

    def __enter__(self) -> "SocketServer":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class SocketTransport(Transport):
    """TCP client for a :class:`SocketServer` (or ``repro serve``).

    Each calling thread keeps one persistent connection (the parallel
    pod fan-out therefore multiplexes over as many connections as the
    dispatcher has workers). Failures retry under a shared
    :class:`~repro.resilience.retry.RetryPolicy`: a broken connection
    is retryable for pure reads (a restarted server looks like one
    lost round-trip, not a failed query), a typed retryable server
    rejection (``OverloadedError``) backs off for any request kind, and
    everything else — including a write whose response was lost —
    fails fast. An ambient deadline rides the wire as a shrinking
    budget and caps every socket wait.
    """

    def __init__(
        self,
        address: tuple[str, int],
        share_bytes: int = DEFAULT_SHARE_BYTES,
        timeout_s: float = 30.0,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self._address = (address[0], int(address[1]))
        self._share_bytes = share_bytes
        self._timeout_s = timeout_s
        self._retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self._local = threading.local()
        self._lock = threading.Lock()
        self._sockets: set[socket.socket] = set()
        self._closed = False

    @property
    def address(self) -> tuple[str, int]:
        return self._address

    def _connection(self) -> socket.socket:
        sock = getattr(self._local, "sock", None)
        if sock is None:
            if self._closed:
                raise TransportError("socket transport is closed")
            try:
                sock = socket.create_connection(
                    self._address, timeout=self._timeout_s
                )
            except OSError as exc:
                raise TransportError(
                    f"cannot connect to {self._address[0]}:"
                    f"{self._address[1]}: {exc}"
                ) from exc
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                if self._closed:
                    # close() swept the socket set while we were
                    # connecting; a socket registered now would leak
                    # (nobody will sweep again) and the call must see
                    # the deterministic "closed" failure, not a
                    # spurious broken-connection retry.
                    sock.close()
                    raise TransportError("socket transport is closed")
                self._sockets.add(sock)
            self._local.sock = sock
        return sock

    def _drop_connection(self) -> None:
        sock = getattr(self._local, "sock", None)
        if sock is not None:
            with self._lock:
                self._sockets.discard(sock)
            sock.close()
            self._local.sock = None

    def _round_trip(
        self,
        payload: bytes,
        read_safe: bool,
        deadline: Deadline | None,
    ) -> bytes:
        """One send + receive; raises a classified :mod:`repro.errors`."""
        sock = self._connection()
        # Never wait past the caller's deadline: the per-round-trip
        # socket timeout is the transport ceiling or the remaining
        # budget, whichever is tighter.
        wait_s = self._timeout_s
        if deadline is not None:
            wait_s = min(wait_s, max(deadline.remaining_s(), 1e-4))
        try:
            sock.settimeout(wait_s)
            _write_frame(sock, payload)
            _corr, frame = _read_frame(sock)
            return frame
        except (ConnectionError, OSError) as exc:
            # A timed-out or broken round trip leaves an unknown amount
            # of a frame in the stream — the connection cannot be
            # reused either way.
            self._drop_connection()
            if (
                isinstance(exc, TimeoutError)
                and deadline is not None
                and deadline.expired
            ):
                raise DeadlineExceededError(
                    f"no response from {self._address[0]}:"
                    f"{self._address[1]} within the deadline budget"
                ) from exc
            if self._closed:
                # close() yanked this socket out from under a call
                # already in flight. Without this check the caller
                # saw a spurious retry (for reads) or a misleading
                # "round-trip failed" — the deterministic outcome
                # is the same typed "closed" failure a fresh call
                # gets.
                raise TransportError(
                    "socket transport is closed"
                ) from exc
            error = TransportError(
                f"socket round-trip to {self._address[0]}:"
                f"{self._address[1]} failed: {exc}"
            )
            # Only pure reads are re-sent over a fresh connection: a
            # write whose response was lost may already have landed,
            # and at-least-once writes are a semantics change nothing
            # upstream accounts for.
            error.retryable = read_safe
            raise error from exc

    def call(self, src: str, dst: str, request: Any) -> Any:
        read_safe = isinstance(request, _RETRY_SAFE)
        trace = _wire_trace()

        def attempt(_index: int) -> Any:
            deadline = current_deadline()
            budget_us = None
            if deadline is not None:
                deadline.check(f"call to {dst!r}")
                budget_us = deadline.budget_us()
            payload = _pack_request(
                dst, request, budget_us=budget_us, trace=trace
            )
            with span(f"call:{dst}") as call_span:
                frame = self._round_trip(payload, read_safe, deadline)
                call_span.wire_bytes = len(payload) + len(frame)
            return raise_for_error(decode_message(frame))

        return self._retry_policy.run(attempt)

    def endpoints(self) -> list[str]:
        response = self.call("", "", EndpointsRequest())
        return list(response.names)

    def has_endpoint(self, name: str) -> bool:
        try:
            return name in self.endpoints()
        except TransportError:
            return False

    def close(self) -> None:
        self._closed = True
        with self._lock:
            sockets = list(self._sockets)
            self._sockets.clear()
        for sock in sockets:
            sock.close()
        self._local = threading.local()
