"""Sharded cluster coordination: pods, placement, routing, failover.

The paper's §5 deployment is one *pod*: n index servers that each hold
one Shamir share of every posting element. That replicates every merged
posting list n times and caps throughput at one fleet's capacity. The
cluster layer shards the merged lists across many pods:

- a :class:`~repro.extensions.dht.ConsistentHashRing` over pod names
  places each ``pl_id`` on ``replication_factor`` pods (``pl_id ->
  [pod, ...]``), so a pod stores — and a compromised pod reveals — only
  its fraction of the index, the §8 "DHT-based infrastructure"
  direction; with ``replication_factor >= 2`` the loss of an *entire*
  pod costs nothing but a read failover;
- within each replica pod, an element is still split k-of-n across that
  pod's servers, so confidentiality and the §5.4.2 query protocol are
  unchanged — a replica pod holds the same slot-aligned shares, never
  more reconstruction power;
- every pod shares one :class:`~repro.secretsharing.shamir.ShamirScheme`
  (slot ``s`` of every pod uses ``x_of(s)``), which keeps owners and
  searchers pod-agnostic: shares are index-aligned with *slots*, not
  with global server numbers — and lets replica pods answer
  interchangeably, byte for byte.

The :class:`ClusterCoordinator` is the control plane: it owns the
placement, routes writes to every replica pod's live servers
(invalidating the share cache first), remembers which seats missed
which lists (the staleness ledger read preference and owner
re-provisioning lean on), tracks which servers are dead, and restarts
them — from their durable seat store (a flat
:class:`~repro.server.persistence.PostingLog` WAL or a
:class:`~repro.storage.SegmentedStore` snapshot + segment-suffix
store) when one is attached, which is the recovery path §5.4.1's
element IDs exist for. Pods join and leave at runtime: :meth:`add_pod` /
:meth:`retire_pod` move only the lists whose ownership changed —
shipped as sealed snapshot images per seat pair, not record by record —
and report the movement as :class:`RebalanceStats`. Staleness no longer
waits on owners alone: :meth:`repair_sweep` (one-shot or on the
background repair thread) walks the ledger and heals stale seats from
trusted same-slot replicas, so the cluster converges even when the
owner that dropped the writes never reconnects.
"""

from __future__ import annotations

import pathlib
import threading
import time
import weakref
from collections import deque
from dataclasses import dataclass, field
from random import Random
from typing import Callable, Iterable, Sequence

from repro.client.owner import DroppedRoute, WriteRoute
from repro.cluster.cache import LRUShareCache
from repro.errors import ClusterDegradedError, ClusterError, ReproError
from repro.extensions.dht import ConsistentHashRing
from repro.observability.metrics import MetricsRegistry
from repro.protocol.messages import (
    AdoptListRequest,
    AdoptSnapshotRequest,
    CacheInvalidateRequest,
    DropListRequest,
    ExportListRequest,
    ShipSnapshotRequest,
)
from repro.protocol.service import IndexServerService
from repro.protocol.transport import InProcessTransport
from repro.resilience.breaker import BreakerRegistry
from repro.secretsharing.shamir import ShamirScheme
from repro.server.auth import AuthService
from repro.server.groups import GroupDirectory
from repro.server.index_server import IndexServer
from repro.storage.engine import open_seat_store

#: EWMA smoothing factor for observed per-pod read latency.
READ_LATENCY_ALPHA = 0.25

#: Latency bucket width (seconds per posting list) used when ranking
#: replicas. Replica choice compares *buckets*, not raw floats, so
#: micro-jitter between equally healthy pods never flips the ranking —
#: only a genuinely slower pod (>= one bucket worse per list) loses its
#: place, and ties fall back to the load counters deterministically.
READ_LATENCY_BUCKET_S = 1e-4

#: Recent whole-fetch latency samples kept per pod for the p95 the
#: hedged-read delay derives from.
LATENCY_SAMPLE_WINDOW = 64

#: Hedge delay when no pod of the list has latency samples yet.
DEFAULT_HEDGE_DELAY_S = 0.05


@dataclass
class ServerSlot:
    """One server's seat in a pod: the live object plus its lifecycle state.

    Attributes:
        pod_index: which pod the seat belongs to.
        slot_index: the seat number — also the Shamir share index, so
            ``scheme.x_of(slot_index)`` is this server's x-coordinate.
        server: the current :class:`IndexServer` occupying the seat (a
            restart from WAL replaces the object; the seat persists).
        alive: False between :meth:`ClusterCoordinator.kill_server` and
            the matching restart.
        wal_path: the seat's durable-store location, when durability is
            on — a ``.wal`` file for the flat engine, a directory for
            the segmented engine.
        log: the open seat store attached to ``server`` (a
            :class:`~repro.server.persistence.PostingLog` or a
            :class:`~repro.storage.SegmentedStore`; both speak the same
            facade).
        storage_engine: which engine ``wal_path`` holds, so a restart
            reopens the seat with the right one.
        storage_options: the engine options the store was attached
            with, so a restart round-trips them (a seat configured
            with ``auto_compact=False`` must not come back compacting).
    """

    pod_index: int
    slot_index: int
    server: IndexServer
    alive: bool = True
    wal_path: pathlib.Path | None = None
    log: object | None = field(default=None, repr=False)
    storage_engine: str = "flat"
    storage_options: dict = field(default_factory=dict, repr=False)

    @property
    def server_id(self) -> str:
        return self.server.server_id


class Pod:
    """One k-of-n server fleet owning a shard of the merged posting lists."""

    def __init__(self, index: int, name: str, slots: Sequence[ServerSlot]) -> None:
        if not slots:
            raise ClusterError(f"pod {name!r} needs at least one server")
        self.index = index
        self.name = name
        self.slots = list(slots)

    @property
    def servers(self) -> list[IndexServer]:
        return [slot.server for slot in self.slots]

    def live_slots(self) -> list[ServerSlot]:
        return [slot for slot in self.slots if slot.alive]

    def slot(self, slot_index: int) -> ServerSlot:
        if not 0 <= slot_index < len(self.slots):
            raise ClusterError(
                f"pod {self.name!r} has no slot {slot_index} "
                f"(0..{len(self.slots) - 1})"
            )
        return self.slots[slot_index]

    def slot_by_id(self, server_id: str) -> ServerSlot | None:
        for slot in self.slots:
            if slot.server_id == server_id:
                return slot
        return None


def attach_wal_to_slot(
    slot: ServerSlot, path, engine: str = "flat", **store_options
):
    """Wire a durable store into one seat (usable before the pod joins
    a ring). Returns the opened store."""
    if slot.log is not None:
        raise ClusterError(f"server {slot.server_id!r} already has a WAL")
    store = open_seat_store(path, engine=engine, **store_options)
    slot.server.attach_store(store)
    slot.wal_path = pathlib.Path(path)
    slot.log = store
    slot.storage_engine = engine
    slot.storage_options = dict(store_options)
    return store


def slot_service(slot: ServerSlot) -> IndexServerService:
    """The protocol endpoint for one seat; a dead seat drops every request.

    The service reads ``slot.server`` at call time, so a WAL restart
    that swaps the server object needs no transport re-registration.
    """
    return IndexServerService.for_slot(slot)


@dataclass
class RebalanceStats:
    """What one ring-membership change actually moved.

    Attributes:
        pod_name: the pod that joined or left.
        action: ``"join"`` or ``"leave"``.
        moved_lists: posting lists whose replica set changed.
        copied_elements: share records copied slot-to-slot onto new
            owners (summed over slots, so n copies of a list count n x).
        gc_elements: records garbage-collected from pods that lost
            ownership of a list.
        dropped_copy_routes: (list, slot) pairs that could not transfer
            (source or destination seat dead, or a ship that failed
            mid-flight) — nonzero means a replica starts life
            incomplete; under snapshot-shipping those gaps land in the
            staleness ledger for the repair sweep to close.
        snapshot_ships: bulk ship/adopt round trips performed (one per
            distinct source-seat/destination-seat pair, covering every
            moved list those seats share).
        shipped_bytes: total sealed ``ZSNP`` image bytes moved.
    """

    pod_name: str
    action: str
    moved_lists: int = 0
    copied_elements: int = 0
    gc_elements: int = 0
    dropped_copy_routes: int = 0
    snapshot_ships: int = 0
    shipped_bytes: int = 0


@dataclass
class RepairSweepStats:
    """What one anti-entropy sweep over the staleness ledger did.

    Attributes:
        examined: ledger entries the sweep looked at.
        healed_seats: stale (seat, list) pairs healed from a trusted
            source (one ship/adopt round trip each).
        repaired_routes: dropped write routes those heals retired from
            the ledger.
        shipped_bytes: sealed snapshot bytes moved by the heals.
        skipped_no_source: stale pairs left alone because no live,
            trusted same-slot source seat exists (``R == 1``, or every
            replica slept through the same writes) — owner
            re-provisioning remains their only cure.
        skipped_dead_seat: stale pairs whose target seat is down (a
            heal needs a live destination; the entry survives for a
            post-restart sweep).
        failed: heals that errored mid-flight (source or target died
            between election and transfer); the ledger entry survives
            and the next sweep retries.
        budget_exhausted: True when the sweep stopped early because it
            hit its heal budget.
    """

    examined: int = 0
    healed_seats: int = 0
    repaired_routes: int = 0
    shipped_bytes: int = 0
    skipped_no_source: int = 0
    skipped_dead_seat: int = 0
    failed: int = 0
    budget_exhausted: bool = False


class ClusterCoordinator:
    """Control plane of a sharded Zerber cluster.

    Owners use it as their write router (:meth:`targets`); searchers use
    it for read placement (:meth:`group_by_pod`), the shared
    :attr:`cache`, and liveness. Operators use :meth:`kill_server` /
    :meth:`restart_server` for failure drills.
    """

    def __init__(
        self,
        scheme: ShamirScheme,
        pods: Sequence[Pod],
        auth: AuthService,
        groups: GroupDirectory,
        share_bytes: int,
        cache_entries: int = 4096,
        virtual_nodes: int = 64,
        replication_factor: int = 1,
        transport: InProcessTransport | None = None,
        bulk_rebalance: bool = True,
        repair_budget: int | None = None,
        clock: Callable[[], float] = time.monotonic,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        """Args:
        scheme: the k-of-n scheme every pod shares (n = pod size).
        pods: the server fleets; every pod must have exactly ``scheme.n``
            slots so shares stay slot-aligned.
        auth: enterprise auth service (needed to rebuild servers on
            WAL restart).
        groups: the replicated group table (also feeds the cache's
            membership fingerprints).
        share_bytes: wire size of one share value.
        cache_entries: LRU share-cache capacity; 0 disables caching.
        virtual_nodes: ring smoothness for pod placement.
        replication_factor: pods each merged posting list lives on.
            1 reproduces the PR 1 single-owner sharding; >= 2 keeps
            every list fully readable with an entire pod dead.
        transport: the endpoint registry the control plane's admin
            traffic (slot-to-slot replication during rebalancing) flows
            through. A deployment passes its shared registry — with
            every seat already registered; standalone coordinators get
            a private registry with the seats registered here.
        bulk_rebalance: True moves rebalanced lists as sealed snapshot
            images (one ship per source/destination seat pair); False
            keeps the record-by-record export/adopt transfer — the
            baseline the rebalance benchmark measures against.
        repair_budget: default per-sweep heal cap for
            :meth:`repair_sweep` (None = unbounded). A budget turns the
            sweep into a rate limiter: a huge backlog is worked off
            across sweeps instead of one long stop-the-world pass.
        clock: the single monotonic clock behind every latency-
            sensitive path the coordinator owns — breaker open/half-open
            windows, :meth:`note_pod_read` EWMA + p95 samples, and
            (through :attr:`clock`) the search clients' per-pod fetch
            timing. Inject a fake to make latency tests deterministic
            without sleeps.
        metrics: optional observability registry; when set,
            :meth:`note_pod_read` publishes per-pod fetch latency
            histograms and read counters into it on the hot path.
        """
        if not pods:
            raise ClusterError("cluster needs at least one pod")
        for pod in pods:
            if len(pod.slots) != scheme.n:
                raise ClusterError(
                    f"pod {pod.name!r} has {len(pod.slots)} servers, "
                    f"scheme expects n={scheme.n}"
                )
        names = [pod.name for pod in pods]
        if len(set(names)) != len(names):
            raise ClusterError("duplicate pod names")
        if not 1 <= replication_factor <= len(pods):
            raise ClusterError(
                f"replication_factor must be in 1..{len(pods)} (the pod "
                f"count), got {replication_factor}"
            )
        self.scheme = scheme
        self.pods = list(pods)
        self.replication_factor = replication_factor
        self._pod_by_name = {pod.name: pod for pod in self.pods}
        self._ring = ConsistentHashRing(names, virtual_nodes=virtual_nodes)
        self._placement_memo: dict[int, tuple[Pod, ...]] = {}
        self._auth = auth
        self._groups = groups
        self._share_bytes = share_bytes
        if transport is None:
            transport = InProcessTransport(share_bytes=share_bytes)
            for pod in self.pods:
                for slot in pod.slots:
                    transport.register(slot.server_id, slot_service(slot))
        self.transport = transport
        self.bulk_rebalance = bulk_rebalance
        self.repair_budget = repair_budget
        #: The injected monotonic clock (satellite of the observability
        #: PR): breakers, hedge-delay p95 samples, and the clients'
        #: fetch timing all read this one source, so a fake clock moves
        #: every latency surface together.
        self.clock = clock
        #: Optional observability registry note_pod_read publishes into.
        self.metrics = metrics
        self.cache = LRUShareCache(cache_entries)
        #: Routing decisions (one per distinct posting list per batch,
        #: per dead seat, per replica pod) made while a seat was down. A
        #: lower bound on missed per-operation writes — owners memoize
        #: route() per batch — so dropped > repaired means some seat is
        #: missing data until an owner or the repair sweep re-provisions.
        self.dropped_write_routes = 0
        #: Per replica pod slice of :attr:`dropped_write_routes`.
        self.dropped_write_routes_by_pod: dict[str, int] = {}
        #: Routes retired from the ledger — by owner re-provisioning,
        #: by the anti-entropy sweep, or by a list leaving the pod that
        #: missed it. Credited *from the ledger's own counts* when an
        #: entry clears, so it converges on dropped_write_routes no
        #: matter which repair path wins the race.
        self.repaired_write_routes = 0
        #: (pod_name, pl_id) -> {server_id: dropped route count}. Seats
        #: known to be missing writes for the list, with how many routed
        #: batches each missed. The read path deprioritizes stale
        #: (pod, list) pairs so a replica that slept through a write is
        #: never the only source of an answer; owner re-provisioning and
        #: the repair sweep clear entries (crediting the counts).
        self._incomplete: dict[tuple[str, int], dict[str, int]] = {}
        #: Guards :attr:`_incomplete` and the dropped/repaired counters
        #: — route(), note_repaired(), and the sweep touch them from
        #: different threads. Always taken *inside* :attr:`repair_mutex`
        #: when both are held.
        self._ledger_lock = threading.Lock()
        #: Serializes whole repair/delivery *spans*: owners hold it
        #: across each route+deliver pair, the anti-entropy sweep holds
        #: it per heal, and rebalances hold it for their transfer phase.
        #: This is the hard guarantee that a heal (replace from a
        #: trusted source) never interleaves with a write mid-delivery —
        #: without it, a write landing on the source after its export
        #: but before the target's adopt would be silently erased from
        #: the healed seat. Reentrant so coordinator-internal paths
        #: (retire_pod -> rebalance) can nest.
        self.repair_mutex = threading.RLock()
        #: Lifetime anti-entropy accounting (surfaced in
        #: :meth:`status_snapshot` and ``repro cluster status``).
        self.repair_sweeps = 0
        self.repair_healed_seats = 0
        self.repair_shipped_bytes = 0
        self.repair_failures = 0
        self.last_sweep: RepairSweepStats | None = None
        self._repair_thread: threading.Thread | None = None
        self._repair_stop = threading.Event()
        #: pod name -> posting-list lookups routed to it (read balancing).
        self.pod_read_load: dict[str, int] = {}
        #: pod name -> EWMA of observed fetch latency in seconds *per
        #: posting list* (normalized so batched and single-list fetches
        #: are comparable). Fed by :meth:`note_pod_read`; consulted by
        #: :meth:`read_replicas`.
        self.pod_read_latency: dict[str, float] = {}
        #: pod name -> posting lists served from share-cache entries
        #: this pod originally fetched (cache-hit-aware accounting: a
        #: pod whose entries absorb a hot list's reads is still carrying
        #: that list's traffic, and the balancer should know).
        self.pod_cache_reads: dict[str, int] = {}
        #: pl_id -> pod whose fetch last actually served the list (the
        #: provenance note_cache_read charges hits against).
        self._read_origin: dict[int, str] = {}
        #: The parallel fan-out reports per-pod accounting from the
        #: query thread after every round, but nothing stops multiple
        #: searchers (or future async paths) from reporting
        #: concurrently — the counters and EWMA updates take this lock.
        self._read_stats_lock = threading.Lock()
        #: Per-pod circuit breakers, fed by the search clients' fetch
        #: outcomes; an open breaker deprioritizes its pod in
        #: :meth:`read_replicas` (never forbids it — when everything is
        #: open the failover ladder still tries every replica).
        self.breakers = BreakerRegistry(clock=clock)
        #: pod name -> recent whole-fetch latency samples (seconds),
        #: the raw material for :meth:`pod_latency_p95`.
        self._pod_latency_samples: dict[str, deque] = {}
        #: The repair thread's current backoff (None: not running);
        #: surfaced in ``status_snapshot()["repair"]``.
        self.repair_backoff_s: float | None = None
        #: Searcher-local L1 caches subscribed to write invalidations.
        #: Weakly referenced: a searcher that goes away takes its L1
        #: with it, with no unsubscribe ceremony.
        self._l1_caches: weakref.WeakSet = weakref.WeakSet()
        #: Endpoint name of the shared cache tier, when one is attached
        #: (:meth:`attach_cache_tier`); invalidations fan out to it
        #: through :attr:`transport` before any write is delivered.
        self.cache_tier_endpoint: str | None = None
        #: pl_id -> write epoch (absent = 0). Bumped by
        #: :meth:`invalidate_list` and :meth:`complete_write`; baked
        #: into every cache key so a look-aside fill that raced a
        #: concurrent write lands under an unreachable key instead of
        #: re-installing pre-write shares (see :meth:`write_epoch`).
        self._write_epochs: dict[int, int] = {}
        self._epoch_lock = threading.Lock()
        # Eager L1 eviction on membership change: key rotation alone
        # would leave a revoked user's entries resident until LRU aged
        # them out; the subscription drops them the moment the group
        # table changes.
        groups.subscribe(self._on_membership_change)

    # -- placement -------------------------------------------------------------

    def pods_of(self, pl_id: int) -> tuple[Pod, ...]:
        """The replica pods owning one merged posting list, ring order
        (the first is the primary, the rest successors on the ring)."""
        replicas = self._placement_memo.get(pl_id)
        if replicas is None:
            names = self._ring.owners(
                f"pl:{pl_id}", replicas=self.replication_factor
            )
            replicas = tuple(self._pod_by_name[name] for name in names)
            self._placement_memo[pl_id] = replicas
        return replicas

    def pod_of(self, pl_id: int) -> Pod:
        """The primary pod of one merged posting list."""
        return self.pods_of(pl_id)[0]

    def group_by_pod(self, pl_ids: Sequence[int]) -> dict[Pod, list[int]]:
        """Partition a query's posting lists by primary pod (routing plan)."""
        plan: dict[Pod, list[int]] = {}
        for pl_id in pl_ids:
            plan.setdefault(self.pod_of(pl_id), []).append(pl_id)
        return plan

    def shard_distribution(self, num_lists: int) -> dict[str, int]:
        """pod name -> hosted list count over ``[0, num_lists)`` (balance;
        every replica counts, so values sum to num_lists x R)."""
        counts = {pod.name: 0 for pod in self.pods}
        for pl_id in range(num_lists):
            for pod in self.pods_of(pl_id):
                counts[pod.name] += 1
        return counts

    # -- cache-tier fan-out ------------------------------------------------------

    def register_l1(self, cache) -> None:
        """Subscribe a searcher-local L1 to write invalidations.

        Weakly held: dropping the searcher (and its cache) is the
        unsubscribe.
        """
        self._l1_caches.add(cache)

    def attach_cache_tier(self, endpoint: str) -> None:
        """Route invalidations to a shared cache-tier endpoint too."""
        self.cache_tier_endpoint = endpoint

    def write_epoch(self, pl_id: int) -> int:
        """The list's current write epoch, part of every cache key.

        Readers capture the epoch *before* fetching and fill caches
        under the captured value; gets always key by the current value.
        Any invalidation (or write completion) in between bumps the
        epoch, so a racing fill installs under a key no later reader
        derives — eviction alone cannot guarantee that, because a fill
        can execute after the eviction it raced.
        """
        with self._epoch_lock:
            return self._write_epochs.get(pl_id, 0)

    def _bump_epoch(self, pl_id: int) -> None:
        with self._epoch_lock:
            self._write_epochs[pl_id] = (
                self._write_epochs.get(pl_id, 0) + 1
            )

    def complete_write(self, pl_id: int) -> None:
        """A write (route + delivery) finished for the list: fence it.

        :meth:`invalidate_list` runs before delivery, so a reader that
        starts *inside* the invalidate→delivery window captures the
        post-invalidate epoch yet can still fetch pre-write shares.
        Owners call this after the last seat took the write; the extra
        bump makes that window's fills unreachable too. No eviction is
        needed — the pre-delivery invalidation already emptied every
        tier for the list.
        """
        self._bump_epoch(pl_id)

    def invalidate_list(self, pl_id: int) -> None:
        """Evict a list from every tier: local share cache, subscribed
        L1s, and the attached cache tier.

        Called *before* any write (or rebalance, or heal) touches the
        list on any seat — the invalidate-before-write rule, applied
        uniformly, is what keeps every tier byte-identical to a fresh
        fetch. A cache-tier failure propagates: delivering the write
        anyway would let the tier serve pre-write shares forever, so
        the write fails loudly instead. The epoch bump comes first:
        once any tier is emptied, every in-flight fill must already be
        fenced out of the new key space.
        """
        self._bump_epoch(pl_id)
        self.cache.invalidate(pl_id)
        for l1 in list(self._l1_caches):
            l1.invalidate(pl_id)
        if self.cache_tier_endpoint is not None:
            self.transport.call(
                src="coordinator",
                dst=self.cache_tier_endpoint,
                request=CacheInvalidateRequest(pl_ids=(pl_id,)),
            )

    def _on_membership_change(self, group_id: int, user_id: str) -> None:
        """Group table changed: evict the affected user's L1 entries now.

        The share cache and L2 keys rotate with the fingerprint (the
        old entries become unreachable), but eager eviction frees the
        space and removes even the theoretical stale-replay window.
        """
        for l1 in list(self._l1_caches):
            l1.evict_user(user_id)

    # -- write routing (the owner's router) --------------------------------------

    def route(self, pl_id: int) -> WriteRoute:
        """The full write route for one posting list, replicas included.

        Invalidate-before-write: every cached entry for the list is
        evicted first, so no reader can observe pre-write shares after
        the write lands. Each replica pod with >= k live seats receives
        the write on its live seats (dead seats drop their route); a
        replica pod *below* k live seats is skipped entirely — partial
        sub-k replicas would never reconstruct on their own, so the
        whole pod's routes are dropped, every seat is marked incomplete
        for the list, and the owner's re-provisioning ledger gets the
        full slot set back. The write fails only when no replica pod can
        take >= k shares.
        """
        self.invalidate_list(pl_id)
        live: list[tuple[int, str]] = []
        missed_by_pod: list[tuple[Pod, list[ServerSlot]]] = []
        for pod in self.pods_of(pl_id):
            pod_live = pod.live_slots()
            if len(pod_live) >= self.scheme.k:
                live.extend(
                    (slot.slot_index, slot.server_id) for slot in pod_live
                )
                missed = [slot for slot in pod.slots if not slot.alive]
            else:
                missed = list(pod.slots)
            if missed:
                missed_by_pod.append((pod, missed))
        if not live:
            # The write never happened anywhere: fail loudly and leave
            # the dropped/staleness ledgers untouched.
            raise ClusterDegradedError(
                f"no replica pod of list {pl_id} has k={self.scheme.k} "
                "live servers to accept writes"
            )
        dropped: list[DroppedRoute] = []
        with self._ledger_lock:
            for pod, missed in missed_by_pod:
                for slot in missed:
                    dropped.append(
                        DroppedRoute(
                            pod_name=pod.name,
                            share_slot=slot.slot_index,
                            server_id=slot.server_id,
                        )
                    )
                    cell = self._incomplete.setdefault(
                        (pod.name, pl_id), {}
                    )
                    cell[slot.server_id] = cell.get(slot.server_id, 0) + 1
                self.dropped_write_routes += len(missed)
                self.dropped_write_routes_by_pod[pod.name] = (
                    self.dropped_write_routes_by_pod.get(pod.name, 0)
                    + len(missed)
                )
        return WriteRoute(live=tuple(live), dropped=tuple(dropped))

    def targets(self, pl_id: int) -> list[tuple[int, str]]:
        """The live ``(share_slot, server_id)`` pairs a write must reach
        (:meth:`route` without the dropped-seat ledger view)."""
        return list(self.route(pl_id).live)

    def note_repaired(
        self, server_id: str, pl_ids: Iterable[int], routes: int = 0
    ) -> None:
        """An owner re-delivered a seat's missed writes; clear the ledger.

        The credit comes from the ledger's own per-seat route counts,
        not from the caller's tally (``routes`` is accepted for
        interface compatibility and ignored): the coordinator is the
        accounting authority, so a seat the anti-entropy sweep already
        healed credits nothing a second time, and
        :attr:`outstanding_write_routes` converges to zero no matter
        which repair path — owner or sweep — clears each entry.
        """
        slot = self.find_slot(server_id)
        if slot is None:
            return
        pod_name = self.pods[slot.pod_index].name
        with self._ledger_lock:
            for pl_id in pl_ids:
                self._clear_ledger_seat_locked(pod_name, pl_id, server_id)

    def _clear_ledger_seat_locked(
        self, pod_name: str, pl_id: int, server_id: str
    ) -> int:
        """Retire one seat from one ledger cell; credit and return its
        route count. Caller holds :attr:`_ledger_lock`."""
        cell = self._incomplete.get((pod_name, pl_id))
        if cell is None:
            return 0
        count = cell.pop(server_id, None)
        if count is None:
            return 0
        if not cell:
            del self._incomplete[(pod_name, pl_id)]
        self.repaired_write_routes += count
        return count

    def _credit_ledger_cell_locked(self, pod_name: str, pl_id: int) -> int:
        """Retire a whole ledger cell (list left the pod, or the pod
        left the cluster); credit and return its route counts. Caller
        holds :attr:`_ledger_lock`."""
        cell = self._incomplete.pop((pod_name, pl_id), None)
        if not cell:
            return 0
        credit = sum(cell.values())
        self.repaired_write_routes += credit
        return credit

    @property
    def outstanding_write_routes(self) -> int:
        """Dropped routes nothing has re-provisioned yet."""
        return self.dropped_write_routes - self.repaired_write_routes

    # -- read-side helpers ----------------------------------------------------------

    def group_fingerprint(self, user_id: str) -> frozenset[int]:
        """The user's current group set — part of every cache key, so a
        membership change re-keys (and thereby bypasses) old entries."""
        return frozenset(self._groups.groups_of(user_id))

    def is_complete_for(self, pod: Pod, pl_id: int) -> bool:
        """Whether no seat of ``pod`` is known to be missing writes for
        the list (the staleness ledger's read-side view)."""
        return not self._incomplete.get((pod.name, pl_id))

    def incomplete_seats(self, pod_name: str, pl_id: int) -> frozenset[str]:
        """Seats of one pod known to be missing writes for one list.

        The read path must not consume these seats' responses for the
        list at all: a seat that slept through an insert would silently
        *omit* it (no share-shortfall signal exists for an element it
        never saw), and a seat that slept through a delete still holds
        the share and could help a deleted element reach k again.
        """
        return frozenset(self._incomplete.get((pod_name, pl_id), ()))

    def trusted_live_slots(self, pod: Pod, pl_id: int) -> int:
        """Live seats of ``pod`` whose data for the list is complete."""
        missing = self._incomplete.get((pod.name, pl_id))
        if not missing:
            return len(pod.live_slots())
        return sum(
            1
            for slot in pod.live_slots()
            if slot.server_id not in missing
        )

    def read_replicas(self, pl_id: int) -> list[Pod]:
        """The list's replica pods in read-preference order.

        A pod is ranked by how much *trustworthy* capacity it has for
        the list: live seats that did not miss any write (the staleness
        ledger). Pods that can answer alone (>= k trusted live seats)
        come first; among those, the lowest observed fetch latency wins
        (EWMA per list, compared in coarse buckets so jitter between
        equally healthy pods never flips the order), then the smallest
        effective read load — lookups actually routed *plus* lists the
        pod's fetches keep serving from the share cache, so a pod whose
        entry absorbs a hot list's reads is not mistaken for idle. The
        rest stay as last resorts — even a sub-k pod contributes
        trusted slots that union with another replica's.

        An *open circuit breaker* outranks everything: a pod that has
        failed its last N legs outright goes behind every healthy pod
        regardless of its latency history (which predates the failures),
        until its cooldown releases a half-open probe. Reading the
        breaker here is what *performs* the probe release — ranking is
        the only consumer of breaker state.
        """
        k = self.scheme.k
        ranked = list(enumerate(self.pods_of(pl_id)))
        with self._read_stats_lock:
            latency = dict(self.pod_read_latency)
            load = dict(self.pod_read_load)
            cache_reads = dict(self.pod_cache_reads)
        ranked.sort(
            key=lambda item: (
                self.breakers.deprioritize(item[1].name),
                self.trusted_live_slots(item[1], pl_id) < k,
                int(
                    latency.get(item[1].name, 0.0) / READ_LATENCY_BUCKET_S
                ),
                load.get(item[1].name, 0)
                + cache_reads.get(item[1].name, 0),
                item[0],
            )
        )
        return [pod for _rank, pod in ranked]

    def note_pod_read(
        self,
        pod_name: str,
        num_lists: int,
        latency_s: float | None = None,
        pl_ids: Iterable[int] = (),
    ) -> None:
        """Account lookups routed to one pod (feeds read balancing).

        Args:
            pod_name: the pod that served the fetch.
            num_lists: posting lists the fetch covered.
            latency_s: observed wall-clock duration of the fetch; folded
                into the pod's per-list latency EWMA when given.
            pl_ids: the fetched lists — recorded as cache provenance so
                later cache hits can be charged to this pod.

        Race-safe: callers may report from concurrent query threads.
        """
        with self._read_stats_lock:
            self.pod_read_load[pod_name] = (
                self.pod_read_load.get(pod_name, 0) + num_lists
            )
            if latency_s is not None and num_lists > 0:
                per_list = latency_s / num_lists
                previous = self.pod_read_latency.get(pod_name)
                self.pod_read_latency[pod_name] = (
                    per_list
                    if previous is None
                    else previous
                    + READ_LATENCY_ALPHA * (per_list - previous)
                )
                # Whole-fetch samples (not per-list): the hedged-read
                # delay races whole fetch legs, so its p95 must be in
                # the same unit.
                samples = self._pod_latency_samples.get(pod_name)
                if samples is None:
                    samples = self._pod_latency_samples[pod_name] = deque(
                        maxlen=LATENCY_SAMPLE_WINDOW
                    )
                samples.append(latency_s)
            for pl_id in pl_ids:
                self._read_origin[pl_id] = pod_name
        # Registry publication happens outside _read_stats_lock: the
        # instruments carry their own locks, and holding two at once
        # would order this lock against every metrics reader.
        if self.metrics is not None:
            self.metrics.counter(
                "zerber_pod_read_lists_total", pod=pod_name
            ).inc(num_lists)
            if latency_s is not None:
                self.metrics.histogram(
                    "zerber_pod_fetch_latency_seconds", pod=pod_name
                ).observe(latency_s)

    def pod_latency_p95(self, pod_name: str) -> float | None:
        """p95 of the pod's recent whole-fetch latencies (None: no data)."""
        with self._read_stats_lock:
            samples = self._pod_latency_samples.get(pod_name)
            if not samples:
                return None
            ordered = sorted(samples)
        return ordered[int(0.95 * (len(ordered) - 1))]

    def hedge_delay_s(
        self, pl_id: int, fallback: float = DEFAULT_HEDGE_DELAY_S
    ) -> float:
        """How long a hedged read waits before firing its backup leg.

        The delay is the *minimum* over the list's replica pods of
        their p95 fetch latency: "if the best replica would have
        answered by now 95% of the time, something is wrong with this
        leg." Deriving it from the contacted pod instead would
        self-defeat exactly when hedging matters — a stalling pod's own
        p95 *is* the stall, so the hedge would never fire.
        """
        best: float | None = None
        for pod in self.pods_of(pl_id):
            p95 = self.pod_latency_p95(pod.name)
            if p95 is not None and (best is None or p95 < best):
                best = p95
        if best is None:
            return fallback
        return max(best, 1e-4)

    def note_cache_read(self, pl_id: int, num_lists: int = 1) -> None:
        """A list was served from the share cache; charge its origin pod.

        Cache keys are pod-agnostic, so the provenance comes from the
        last real fetch of the list (:meth:`note_pod_read`). Unknown
        provenance (entry outlived its origin pod, or predates the
        ledger) is simply not charged.
        """
        with self._read_stats_lock:
            # Checked under the lock so a concurrent retire_pod purge
            # cannot interleave between the check and the increment and
            # leave a phantom counter behind for a reused pod name.
            origin = self._read_origin.get(pl_id)
            if origin is None or origin not in self._pod_by_name:
                return
            self.pod_cache_reads[origin] = (
                self.pod_cache_reads.get(origin, 0) + num_lists
            )

    # -- failure injection & recovery ----------------------------------------------

    def kill_server(self, pod_index: int, slot_index: int) -> str:
        """Take one server down; in-flight state is lost, the WAL survives.

        Returns the downed server's id.
        """
        slot = self._slot(pod_index, slot_index)
        if not slot.alive:
            raise ClusterError(f"server {slot.server_id!r} is already down")
        slot.alive = False
        if slot.log is not None:
            slot.log.close()
        return slot.server_id

    def restart_server(self, pod_index: int, slot_index: int) -> IndexServer:
        """Bring a dead seat back.

        With a WAL attached, the crash is taken seriously: the old
        server object (its memory) is discarded, a fresh
        :class:`IndexServer` replays the log, and the WAL is re-attached
        so post-restart writes keep logging. Without a WAL the seat's
        in-memory store is reused (a network partition, not a crash).
        """
        slot = self._slot(pod_index, slot_index)
        if slot.alive:
            raise ClusterError(f"server {slot.server_id!r} is not down")
        if slot.wal_path is not None:
            old = slot.server
            fresh = IndexServer(
                server_id=old.server_id,
                x_coordinate=old.x_coordinate,
                auth=self._auth,
                groups=self._groups,
                share_bytes=self._share_bytes,
            )
            store = open_seat_store(
                slot.wal_path,
                engine=slot.storage_engine,
                **slot.storage_options,
            )
            fresh.bulk_load(store.replay())
            fresh.attach_store(store)
            slot.server = fresh
            slot.log = store
        slot.alive = True
        return slot.server

    def kill_pod(self, pod_index: int) -> list[str]:
        """Take an entire pod down (rack loss, AZ outage drill).

        Every live seat is killed; with ``replication_factor >= 2`` the
        cluster keeps answering byte-identically from the surviving
        replicas. Returns the downed server ids.
        """
        pod = self._pod(pod_index)
        live = pod.live_slots()
        if not live:
            raise ClusterError(f"pod {pod.name!r} is already down")
        return [
            self.kill_server(pod_index, slot.slot_index) for slot in live
        ]

    def restart_pod(self, pod_index: int) -> list[IndexServer]:
        """Bring every dead seat of one pod back (WAL recovery per seat).

        Seats that missed writes while down stay marked incomplete until
        an owner re-provisions them — the read path keeps preferring
        complete replicas in the meantime.
        """
        pod = self._pod(pod_index)
        dead = [slot for slot in pod.slots if not slot.alive]
        if not dead:
            raise ClusterError(f"pod {pod.name!r} has no dead servers")
        return [
            self.restart_server(pod_index, slot.slot_index) for slot in dead
        ]

    def attach_wal(
        self, pod_index: int, slot_index: int, path, engine: str = "flat"
    ):
        """Give one seat a durable store (once per seat); returns it."""
        return attach_wal_to_slot(
            self._slot(pod_index, slot_index), path, engine=engine
        )

    def _pod(self, pod_index: int) -> Pod:
        if not 0 <= pod_index < len(self.pods):
            raise ClusterError(
                f"no pod {pod_index} (0..{len(self.pods) - 1})"
            )
        return self.pods[pod_index]

    def _slot(self, pod_index: int, slot_index: int) -> ServerSlot:
        return self._pod(pod_index).slot(slot_index)

    def find_slot(self, server_id: str) -> ServerSlot | None:
        """The seat currently answering to one server id (None if gone)."""
        for pod in self.pods:
            for slot in pod.slots:
                if slot.server_id == server_id:
                    return slot
        return None

    # -- ring membership & rebalancing -------------------------------------------

    def add_pod(self, pod: Pod, num_lists: int) -> RebalanceStats:
        """Join a new pod: re-ring, move only the lists it now owns.

        For every posting list whose replica set changed, share records
        are copied slot-to-slot from a surviving owner (complete
        replicas preferred) onto the new pod, appended to the
        destination seats' WALs, and garbage-collected from any pod the
        join displaced. The cache entries of moved lists are
        invalidated. This is the DHT's operational win the paper's §8
        points at: a join shuffles per-list transfers, never the whole
        index.
        """
        if len(pod.slots) != self.scheme.n:
            raise ClusterError(
                f"pod {pod.name!r} has {len(pod.slots)} servers, "
                f"scheme expects n={self.scheme.n}"
            )
        if pod.name in self._pod_by_name:
            raise ClusterError(f"duplicate pod name {pod.name!r}")
        with self.repair_mutex:
            before = {
                pl_id: self.pods_of(pl_id) for pl_id in range(num_lists)
            }
            self._ring.add_peer(pod.name)
            pod.index = len(self.pods)
            for slot in pod.slots:
                slot.pod_index = pod.index
            self.pods.append(pod)
            self._pod_by_name[pod.name] = pod
            self._placement_memo.clear()
            return self._rebalance(pod.name, "join", before, num_lists)

    def retire_pod(self, pod_index: int, num_lists: int) -> RebalanceStats:
        """Gracefully drain one pod off the ring and out of the cluster.

        Lists the pod owned gain a new replica elsewhere, copied from
        the surviving owners (or from the retiring pod itself when it
        held the only copy). The retiring pod's servers stop being part
        of the cluster; remaining pods are re-indexed.
        """
        pod = self._pod(pod_index)
        if len(self.pods) - 1 < self.replication_factor:
            raise ClusterError(
                f"cannot retire {pod.name!r}: {len(self.pods) - 1} pods "
                f"cannot hold replication_factor="
                f"{self.replication_factor}"
            )
        with self.repair_mutex:
            before = {
                pl_id: self.pods_of(pl_id) for pl_id in range(num_lists)
            }
            self._ring.remove_peer(pod.name)
            self.pods.pop(pod_index)
            del self._pod_by_name[pod.name]
            for index, remaining in enumerate(self.pods):
                remaining.index = index
                for slot in remaining.slots:
                    slot.pod_index = index
            self._placement_memo.clear()
            with self._read_stats_lock:
                self.pod_read_load.pop(pod.name, None)
                self.pod_read_latency.pop(pod.name, None)
                self.pod_cache_reads.pop(pod.name, None)
                self._pod_latency_samples.pop(pod.name, None)
                for pl_id in [
                    pl_id
                    for pl_id, origin in self._read_origin.items()
                    if origin == pod.name
                ]:
                    del self._read_origin[pl_id]
            # A later pod under a reused name starts with a clean
            # breaker, not the retiree's failure history.
            self.breakers.forget(pod.name)
            stats = self._rebalance(pod.name, "leave", before, num_lists)
            with self._ledger_lock:
                # The pod's unhealed gaps leave the cluster with it —
                # retire the routes so the outstanding counter converges.
                for key in [
                    k for k in self._incomplete if k[0] == pod.name
                ]:
                    self._credit_ledger_cell_locked(*key)
                self.dropped_write_routes_by_pod.pop(pod.name, None)
            return stats

    def _rebalance(
        self,
        pod_name: str,
        action: str,
        before: dict[int, tuple[Pod, ...]],
        num_lists: int,
    ) -> RebalanceStats:
        """Diff old vs new placement; copy gained lists, GC lost ones.

        Two transfer modes share the placement diff. Record-by-record
        (``bulk_rebalance=False``) is the original per-list export/adopt
        loop. Snapshot-shipping groups every moved list by (source
        seat, destination seat) pair during the diff, then moves each
        group as one sealed ``ZSNP`` image + bulk load — one round trip
        and one sequential pass per seat pair instead of two round
        trips and a per-record merge per list per slot. GC of displaced
        copies runs after the transfer phase in both modes, so a
        displaced pod can still serve as a copy source.
        """
        stats = RebalanceStats(pod_name=pod_name, action=action)
        #: (source server_id, dest pod name, slot index) -> moved lists.
        shipments: dict[tuple[str, str, int], list[int]] = {}
        gc_actions: list[tuple[int, Pod]] = []
        for pl_id in range(num_lists):
            after = self.pods_of(pl_id)
            if tuple(p.name for p in after) == tuple(
                p.name for p in before[pl_id]
            ):
                continue
            stats.moved_lists += 1
            self.invalidate_list(pl_id)
            after_names = {p.name for p in after}
            before_names = {p.name for p in before[pl_id]}
            gained = [p for p in after if p.name not in before_names]
            lost = [p for p in before[pl_id] if p.name not in after_names]
            # Complete old owners first; an incomplete source would hand
            # its gaps to the new replica.
            sources = sorted(
                before[pl_id],
                key=lambda p: (
                    not self.is_complete_for(p, pl_id),
                    p.name != pod_name if action == "leave" else False,
                ),
            )
            for dest in gained:
                if self.bulk_rebalance:
                    self._plan_ship(pl_id, sources, dest, shipments, stats)
                else:
                    copied, dropped = self._copy_list(pl_id, sources, dest)
                    stats.copied_elements += copied
                    stats.dropped_copy_routes += dropped
                if all(
                    not self.is_complete_for(p, pl_id) for p in sources
                ):
                    self._mark_seats_stale(
                        dest.name,
                        pl_id,
                        [slot.server_id for slot in dest.slots],
                    )
            for displaced in lost:
                if displaced.name == pod_name and action == "leave":
                    continue  # the pod is gone; nothing to GC
                gc_actions.append((pl_id, displaced))
        for key in sorted(shipments):
            self._execute_shipment(key, shipments[key], stats)
        for pl_id, displaced in gc_actions:
            stats.gc_elements += self._gc_list(pl_id, displaced)
        return stats

    def _mark_seats_stale(
        self, pod_name: str, pl_id: int, server_ids: Iterable[str]
    ) -> None:
        """Record seats as missing the list (count 0: no dropped write
        route, just a copy that never happened — the repair sweep's
        problem now)."""
        with self._ledger_lock:
            cell = self._incomplete.setdefault((pod_name, pl_id), {})
            for server_id in server_ids:
                cell.setdefault(server_id, 0)

    def _plan_ship(
        self,
        pl_id: int,
        sources: Sequence[Pod],
        dest: Pod,
        shipments: dict[tuple[str, str, int], list[int]],
        stats: RebalanceStats,
    ) -> None:
        """Assign one moved list's slot transfers to shipment groups.

        Source election matches :meth:`_copy_list`: slot s of the first
        source pod (complete owners first) whose seat s is alive feeds
        slot s of the destination. Untransferable slots (no live
        source, dead destination seat) are dropped routes — and, unlike
        the record-by-record path, immediately ledgered so the repair
        sweep can close the gap once a source or the seat returns.
        """
        for slot_index in range(self.scheme.n):
            source = next(
                (
                    p.slots[slot_index]
                    for p in sources
                    if p.slots[slot_index].alive
                ),
                None,
            )
            dest_slot = dest.slots[slot_index]
            if source is None or not dest_slot.alive:
                stats.dropped_copy_routes += 1
                self._mark_seats_stale(
                    dest.name, pl_id, (dest_slot.server_id,)
                )
                continue
            shipments.setdefault(
                (source.server_id, dest.name, slot_index), []
            ).append(pl_id)

    def _execute_shipment(
        self,
        key: tuple[str, str, int],
        pl_ids: list[int],
        stats: RebalanceStats,
    ) -> None:
        """One bulk transfer: ship a sealed image, bulk-load it.

        A failure mid-flight (the source died between election and
        export, the destination between export and adopt, or a torn
        image) drops the whole group's routes into the ledger — the
        anti-entropy sweep re-elects a source and retries; the
        rebalance itself never raises for a transfer it can record as
        pending repair.
        """
        source_id, dest_pod_name, slot_index = key
        dest_pod = self._pod_by_name.get(dest_pod_name)
        if dest_pod is None:  # pragma: no cover - dest pods are members
            return
        dest_slot = dest_pod.slots[slot_index]
        try:
            shipped = self.transport.call(
                src="coordinator",
                dst=source_id,
                request=ShipSnapshotRequest(pl_ids=tuple(pl_ids)),
            )
            adopted = self.transport.call(
                src="coordinator",
                dst=dest_slot.server_id,
                request=AdoptSnapshotRequest(
                    pl_ids=tuple(pl_ids), snapshot=shipped.snapshot
                ),
            )
        except ReproError:
            stats.dropped_copy_routes += len(pl_ids)
            for pl_id in pl_ids:
                self._mark_seats_stale(
                    dest_pod_name, pl_id, (dest_slot.server_id,)
                )
            return
        stats.snapshot_ships += 1
        stats.shipped_bytes += len(shipped.snapshot)
        stats.copied_elements += adopted.count

    def _copy_list(
        self, pl_id: int, sources: Sequence[Pod], dest: Pod
    ) -> tuple[int, int]:
        """Slot-aligned transfer of one list onto a new replica pod.

        Slot s of every replica holds the same share, so slot s of any
        live source seat feeds slot s of the destination; the transfer
        ships shares only, as export/adopt protocol messages over the
        transport (the control plane is a network peer like any other).
        Returns (records copied, slot routes dropped because no live
        source seat or a dead destination seat).
        """
        copied = dropped = 0
        for slot_index in range(self.scheme.n):
            source = next(
                (
                    p.slots[slot_index]
                    for p in sources
                    if p.slots[slot_index].alive
                ),
                None,
            )
            dest_slot = dest.slots[slot_index]
            if source is None or not dest_slot.alive:
                dropped += 1
                continue
            exported = self.transport.call(
                src="coordinator",
                dst=source.server_id,
                request=ExportListRequest(pl_id=pl_id),
            )
            if not exported.records:
                continue
            # The destination seat's own persistence hook logs the
            # adopted records — the control plane no longer reaches into
            # anyone's WAL.
            adopted = self.transport.call(
                src="coordinator",
                dst=dest_slot.server_id,
                request=AdoptListRequest(
                    pl_id=pl_id, records=exported.records
                ),
            )
            copied += len(adopted.records)
        return copied, dropped

    def _gc_list(self, pl_id: int, pod: Pod) -> int:
        """Drop one list from a pod that lost its ownership."""
        removed_total = 0
        for slot in pod.slots:
            if not slot.alive:
                continue
            # The seat's persistence hook logs the drop as deletes. GC
            # only needs the count — shipping every discarded record
            # back would cost as much wire as the transfer itself.
            response = self.transport.call(
                src="coordinator",
                dst=slot.server_id,
                request=DropListRequest(pl_id=pl_id, count_only=True),
            )
            removed_total += response.count
        with self._ledger_lock:
            # Gaps in a list the pod no longer owns are moot; retire
            # their routes so the outstanding counter converges.
            self._credit_ledger_cell_locked(pod.name, pl_id)
        return removed_total

    # -- anti-entropy repair ---------------------------------------------------------

    def repair_sweep(self, budget: int | None = None) -> RepairSweepStats:
        """One pass over the staleness ledger, healing what it can.

        For every (pod, list) gap, each live stale seat is healed by
        electing a **trusted same-slot source**: the same slot index of
        another replica pod, live and not itself stale for the list
        (slot s of every pod holds the share at ``scheme.x_of(s)``, so
        only a same-slot seat has the right bytes). The heal ships the
        source's sealed snapshot image of the list and bulk-loads it
        with replace semantics — a stale seat may have slept through
        deletes, so merge cannot cure it. Each heal runs under
        :attr:`repair_mutex`, so it can never interleave with an
        owner's route+deliver span; the ledger credit comes from the
        entry's own route counts, keeping
        :attr:`outstanding_write_routes` convergent whether the owner
        or the sweep gets there first.

        Args:
            budget: max heals this sweep (None falls back to the
                coordinator's ``repair_budget``; that too being None
                means unbounded). Exhausting it sets
                ``budget_exhausted`` and leaves the rest for the next
                sweep — the sweep is a rate-limited background chore,
                not a stop-the-world pass.

        Unhealable gaps are left in place and classified: a dead target
        seat waits for its restart; a gap with no trusted source
        (``R == 1``, or every replica missed the same writes) waits for
        owner re-provisioning. Mid-flight failures (a seat dying
        between election and transfer) are counted and retried next
        sweep.
        """
        if budget is None:
            budget = self.repair_budget
        stats = RepairSweepStats()
        with self._ledger_lock:
            backlog = sorted(self._incomplete)
        for key in backlog:
            if budget is not None and stats.healed_seats >= budget:
                stats.budget_exhausted = True
                break
            with self.repair_mutex:
                self._repair_entry(key, budget, stats)
        self.repair_sweeps += 1
        self.repair_healed_seats += stats.healed_seats
        self.repair_shipped_bytes += stats.shipped_bytes
        self.repair_failures += stats.failed
        self.last_sweep = stats
        return stats

    def _repair_entry(
        self,
        key: tuple[str, int],
        budget: int | None,
        stats: RepairSweepStats,
    ) -> None:
        """Heal one ledger entry's stale seats (repair_mutex held)."""
        pod_name, pl_id = key
        with self._ledger_lock:
            cell = self._incomplete.get(key)
            seats = sorted(cell) if cell else []
        if not seats:
            return  # an owner's reprovision won the race; nothing left
        stats.examined += 1
        pod = self._pod_by_name.get(pod_name)
        if pod is None:
            return  # pod retired between snapshot and heal
        replicas = self.pods_of(pl_id)
        if pod not in replicas:
            # Placement moved on; the list is no longer this pod's to
            # host. GC retires the entry on the next rebalance.
            return
        for server_id in seats:
            if budget is not None and stats.healed_seats >= budget:
                stats.budget_exhausted = True
                return
            slot = pod.slot_by_id(server_id)
            if slot is None:
                continue
            if not slot.alive:
                stats.skipped_dead_seat += 1
                continue
            source = self._elect_repair_source(
                replicas, pod, pl_id, slot.slot_index
            )
            if source is None:
                stats.skipped_no_source += 1
                continue
            try:
                shipped = self.transport.call(
                    src="coordinator",
                    dst=source.server_id,
                    request=ShipSnapshotRequest(pl_ids=(pl_id,)),
                )
                self.transport.call(
                    src="coordinator",
                    dst=slot.server_id,
                    request=AdoptSnapshotRequest(
                        pl_ids=(pl_id,), snapshot=shipped.snapshot
                    ),
                )
            except (ReproError, ValueError, OSError):
                # Source or target died mid-ship (the drill case), or
                # the image tore in flight: the entry stays; the next
                # sweep re-elects and retries.
                stats.failed += 1
                continue
            self.invalidate_list(pl_id)
            with self._ledger_lock:
                stats.repaired_routes += self._clear_ledger_seat_locked(
                    pod_name, pl_id, server_id
                )
            stats.healed_seats += 1
            stats.shipped_bytes += len(shipped.snapshot)

    def _elect_repair_source(
        self,
        replicas: Sequence[Pod],
        stale_pod: Pod,
        pl_id: int,
        slot_index: int,
    ) -> ServerSlot | None:
        """A live, trusted seat holding the same share slot, or None.

        Only the same slot index of *another* replica pod qualifies —
        any other slot holds a different Shamir x-coordinate's share,
        and shipping it would corrupt reconstruction. Trust is
        per-seat: a source pod may be stale on other seats as long as
        this slot's seat never missed a write for the list.
        """
        for candidate in replicas:
            if candidate.name == stale_pod.name:
                continue
            seat = candidate.slots[slot_index]
            if not seat.alive:
                continue
            with self._ledger_lock:
                cell = self._incomplete.get((candidate.name, pl_id))
                if cell and seat.server_id in cell:
                    continue
            return seat
        return None

    def start_repair_thread(
        self,
        interval_s: float = 0.05,
        budget: int | None = None,
        max_backoff_s: float | None = None,
        jitter: float = 0.25,
        seed: int = 0xA17E,
    ) -> None:
        """Run :meth:`repair_sweep` periodically in a daemon thread.

        A sweep that hits mid-flight failures doubles the wait (up to
        ``max_backoff_s``, default 8x the interval) before retrying —
        a flapping seat should not be hammered; a clean sweep resets
        the backoff. Each actual sleep is the current backoff with a
        seeded jitter fraction (``wait * (1 - jitter + jitter * u)``):
        many coordinators recovering from the same outage spread their
        sweeps out instead of thundering in lockstep, and the same
        seed replays the same schedule. The *un*-jittered backoff is
        exposed as :attr:`repair_backoff_s` (and in
        ``status_snapshot()["repair"]["current_backoff_s"]``) so an
        operator can see a sweeping-vs-backing-off thread at a glance.
        """
        if self._repair_thread is not None:
            raise ClusterError("repair thread is already running")
        if max_backoff_s is None:
            max_backoff_s = interval_s * 8
        rng = Random(seed)

        def run() -> None:
            wait = interval_s
            while True:
                self.repair_backoff_s = wait
                sleep_s = wait
                if jitter > 0.0:
                    sleep_s = wait * (1.0 - jitter + jitter * rng.random())
                if self._repair_stop.wait(sleep_s):
                    return
                try:
                    swept = self.repair_sweep(budget)
                except Exception:  # noqa: BLE001 - the chore must survive
                    self.repair_failures += 1
                    wait = min(wait * 2, max_backoff_s)
                    continue
                if swept.failed:
                    wait = min(wait * 2, max_backoff_s)
                else:
                    wait = interval_s

        self._repair_stop.clear()
        self.repair_backoff_s = interval_s
        thread = threading.Thread(
            target=run, name="repro-anti-entropy", daemon=True
        )
        self._repair_thread = thread
        thread.start()

    def stop_repair_thread(self) -> None:
        """Stop the background sweep (idempotent; joins the thread)."""
        thread = self._repair_thread
        if thread is None:
            return
        self._repair_stop.set()
        thread.join()
        self._repair_thread = None
        self.repair_backoff_s = None

    # -- introspection ---------------------------------------------------------------

    def status_snapshot(self, num_lists: int) -> dict:
        """One observability snapshot of the whole cluster.

        The structure ``repro cluster status`` renders — and the first
        thing to pull from a socket deployment when a query slows down:

        - per pod: seat liveness, hosted-list count (replicas included),
          per-list read-latency EWMA (seconds), effective read load
          (routed lookups + cache hits charged to the pod), and how many
          (pod, list) pairs the staleness ledger still distrusts;
        - cluster-wide: replication factor, outstanding (dropped minus
          repaired) write routes, and share-cache counters.
        """
        shards = self.shard_distribution(num_lists)
        with self._read_stats_lock:
            latency = dict(self.pod_read_latency)
            load = dict(self.pod_read_load)
            cache_reads = dict(self.pod_cache_reads)
        with self._ledger_lock:
            stale_by_pod: dict[str, int] = {}
            for (name, _pl), seats in self._incomplete.items():
                if seats:
                    stale_by_pod[name] = stale_by_pod.get(name, 0) + 1
            pending_entries = len(self._incomplete)
        pods = []
        for pod in self.pods:
            stale_lists = stale_by_pod.get(pod.name, 0)
            pods.append(
                {
                    "name": pod.name,
                    "index": pod.index,
                    "seats": [
                        {
                            "server_id": slot.server_id,
                            "slot": slot.slot_index,
                            "alive": slot.alive,
                            "wal": str(slot.wal_path)
                            if slot.wal_path is not None
                            else None,
                        }
                        for slot in pod.slots
                    ],
                    "live_seats": len(pod.live_slots()),
                    "dead_seats": len(pod.slots) - len(pod.live_slots()),
                    "hosted_lists": shards.get(pod.name, 0),
                    "read_latency_ewma_s": latency.get(pod.name),
                    "read_load": load.get(pod.name, 0)
                    + cache_reads.get(pod.name, 0),
                    "stale_lists": stale_lists,
                }
            )
        last = self.last_sweep
        return {
            "replication_factor": self.replication_factor,
            "num_lists": num_lists,
            "pods": pods,
            "dead_servers": self.dead_servers(),
            "outstanding_write_routes": self.outstanding_write_routes,
            "cache": {
                "hits": self.cache.stats.hits,
                "misses": self.cache.stats.misses,
                "evictions": self.cache.stats.evictions,
                "invalidations": self.cache.stats.invalidations,
                "entries": len(self.cache),
                "capacity": self.cache.capacity,
            },
            "health": self.breakers.snapshot(),
            "repair": {
                "current_backoff_s": self.repair_backoff_s,
                "sweeps": self.repair_sweeps,
                "healed_seats": self.repair_healed_seats,
                "shipped_bytes": self.repair_shipped_bytes,
                "failures": self.repair_failures,
                "pending_entries": pending_entries,
                "thread_running": self._repair_thread is not None,
                "last_sweep": None
                if last is None
                else {
                    "examined": last.examined,
                    "healed_seats": last.healed_seats,
                    "repaired_routes": last.repaired_routes,
                    "shipped_bytes": last.shipped_bytes,
                    "skipped_no_source": last.skipped_no_source,
                    "skipped_dead_seat": last.skipped_dead_seat,
                    "failed": last.failed,
                    "budget_exhausted": last.budget_exhausted,
                },
            },
        }

    def register_collectors(
        self, registry: MetricsRegistry, num_lists: int
    ) -> None:
        """Publish the coordinator's state surfaces as registry gauges.

        Pull-at-dump, not mirror-on-mutation: a collector callback runs
        at ``registry.samples()`` time and sets gauges straight from
        :meth:`status_snapshot`, so the metrics surface can never drift
        from the snapshot dict the CLI used to render — they are the
        same numbers read at the same instant. Hot-path instruments
        (the fetch-latency histograms in :meth:`note_pod_read`) update
        directly instead; only snapshot-style state goes through here.
        """
        state_rank = {"closed": 0.0, "half-open": 1.0, "open": 2.0}

        def collect(_registry: MetricsRegistry) -> None:
            snap = self.status_snapshot(num_lists)
            for pod in snap["pods"]:
                name = pod["name"]
                registry.gauge("zerber_pod_live_seats", pod=name).set(
                    pod["live_seats"]
                )
                registry.gauge("zerber_pod_dead_seats", pod=name).set(
                    pod["dead_seats"]
                )
                registry.gauge("zerber_pod_hosted_lists", pod=name).set(
                    pod["hosted_lists"]
                )
                registry.gauge("zerber_pod_read_load", pod=name).set(
                    pod["read_load"]
                )
                registry.gauge(
                    "zerber_pod_read_latency_ewma_seconds", pod=name
                ).set(pod["read_latency_ewma_s"] or 0.0)
                registry.gauge("zerber_pod_stale_lists", pod=name).set(
                    pod["stale_lists"]
                )
                for seat in pod["seats"]:
                    registry.gauge(
                        "zerber_seat_alive",
                        pod=name,
                        server=seat["server_id"],
                    ).set(1.0 if seat["alive"] else 0.0)
            registry.gauge("zerber_replication_factor").set(
                snap["replication_factor"]
            )
            registry.gauge("zerber_num_lists").set(snap["num_lists"])
            registry.gauge("zerber_outstanding_write_routes").set(
                snap["outstanding_write_routes"]
            )
            cache = snap["cache"]
            for key in (
                "hits",
                "misses",
                "evictions",
                "invalidations",
                "entries",
                "capacity",
            ):
                registry.gauge(f"zerber_share_cache_{key}").set(cache[key])
            for pod_name, health in snap["health"].items():
                registry.gauge("zerber_breaker_state", pod=pod_name).set(
                    state_rank.get(health["state"], 0.0)
                )
                registry.gauge(
                    "zerber_breaker_consecutive_failures", pod=pod_name
                ).set(health["consecutive_failures"])
                registry.gauge(
                    "zerber_breaker_times_opened", pod=pod_name
                ).set(health["times_opened"])
            repair = snap["repair"]
            registry.gauge("zerber_repair_sweeps").set(repair["sweeps"])
            registry.gauge("zerber_repair_healed_seats").set(
                repair["healed_seats"]
            )
            registry.gauge("zerber_repair_shipped_bytes").set(
                repair["shipped_bytes"]
            )
            registry.gauge("zerber_repair_failures").set(repair["failures"])
            registry.gauge("zerber_repair_pending_entries").set(
                repair["pending_entries"]
            )
            registry.gauge("zerber_repair_thread_running").set(
                1.0 if repair["thread_running"] else 0.0
            )
            registry.gauge("zerber_repair_backoff_seconds").set(
                repair["current_backoff_s"] or 0.0
            )

        registry.add_collector(collect)
        self.metrics = registry

    def live_servers(self) -> list[str]:
        return [
            slot.server_id
            for pod in self.pods
            for slot in pod.slots
            if slot.alive
        ]

    def dead_servers(self) -> list[str]:
        return [
            slot.server_id
            for pod in self.pods
            for slot in pod.slots
            if not slot.alive
        ]

    def total_elements(self) -> int:
        """Stored posting elements summed over every live server."""
        return sum(
            slot.server.num_elements
            for pod in self.pods
            for slot in pod.slots
            if slot.alive
        )

    def storage_bytes(self) -> int:
        """Wire-encoded storage across the cluster (n x per-pod shard)."""
        return sum(
            slot.server.storage_bytes()
            for pod in self.pods
            for slot in pod.slots
            if slot.alive
        )
