"""Sharded cluster coordination: pods, placement, routing, failover.

The paper's §5 deployment is one *pod*: n index servers that each hold
one Shamir share of every posting element. That replicates every merged
posting list n times and caps throughput at one fleet's capacity. The
cluster layer shards the merged lists across many pods:

- a :class:`~repro.extensions.dht.ConsistentHashRing` over pod names
  places each ``pl_id`` on exactly one pod (``pl_id -> pod``), so a pod
  stores — and a compromised pod reveals — only its fraction of the
  index, the §8 "DHT-based infrastructure" direction;
- within its pod, an element is still split k-of-n across that pod's
  servers, so confidentiality and the §5.4.2 query protocol are
  unchanged;
- every pod shares one :class:`~repro.secretsharing.shamir.ShamirScheme`
  (slot ``s`` of every pod uses ``x_of(s)``), which keeps owners and
  searchers pod-agnostic: shares are index-aligned with *slots*, not
  with global server numbers.

The :class:`ClusterCoordinator` is the control plane: it owns the
placement, routes writes to the owning pod's live servers (invalidating
the share cache first), tracks which servers are dead, and restarts them
— from their :class:`~repro.server.persistence.PostingLog` WAL when one
is attached, which is the recovery path §5.4.1's element IDs exist for.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Sequence

from repro.cluster.cache import LRUShareCache
from repro.errors import ClusterDegradedError, ClusterError, TransportError
from repro.extensions.dht import ConsistentHashRing
from repro.secretsharing.shamir import ShamirScheme
from repro.server.auth import AuthService
from repro.server.groups import GroupDirectory
from repro.server.index_server import IndexServer
from repro.server.persistence import PostingLog, attach_log, recover_server


@dataclass
class ServerSlot:
    """One server's seat in a pod: the live object plus its lifecycle state.

    Attributes:
        pod_index: which pod the seat belongs to.
        slot_index: the seat number — also the Shamir share index, so
            ``scheme.x_of(slot_index)`` is this server's x-coordinate.
        server: the current :class:`IndexServer` occupying the seat (a
            restart from WAL replaces the object; the seat persists).
        alive: False between :meth:`ClusterCoordinator.kill_server` and
            the matching restart.
        wal_path: the seat's write-ahead log file, when durability is on.
        log: the open :class:`PostingLog` attached to ``server``.
    """

    pod_index: int
    slot_index: int
    server: IndexServer
    alive: bool = True
    wal_path: pathlib.Path | None = None
    log: PostingLog | None = field(default=None, repr=False)

    @property
    def server_id(self) -> str:
        return self.server.server_id


class Pod:
    """One k-of-n server fleet owning a shard of the merged posting lists."""

    def __init__(self, index: int, name: str, slots: Sequence[ServerSlot]) -> None:
        if not slots:
            raise ClusterError(f"pod {name!r} needs at least one server")
        self.index = index
        self.name = name
        self.slots = list(slots)

    @property
    def servers(self) -> list[IndexServer]:
        return [slot.server for slot in self.slots]

    def live_slots(self) -> list[ServerSlot]:
        return [slot for slot in self.slots if slot.alive]

    def slot(self, slot_index: int) -> ServerSlot:
        if not 0 <= slot_index < len(self.slots):
            raise ClusterError(
                f"pod {self.name!r} has no slot {slot_index} "
                f"(0..{len(self.slots) - 1})"
            )
        return self.slots[slot_index]


def slot_handler(slot: ServerSlot):
    """Network adapter for one seat; a dead seat drops every request.

    The closure reads ``slot.server`` at call time, so a WAL restart that
    swaps the server object needs no network re-registration.
    """

    def handler(kind: str, message):
        if not slot.alive:
            raise TransportError(f"server {slot.server_id!r} is down")
        token, payload = message
        if kind == "insert":
            return slot.server.insert_batch(token, payload)
        if kind == "delete":
            return slot.server.delete(token, payload)
        if kind == "lookup":
            return slot.server.get_posting_lists(token, payload)
        raise TransportError(f"unknown message kind {kind!r}")

    return handler


class ClusterCoordinator:
    """Control plane of a sharded Zerber cluster.

    Owners use it as their write router (:meth:`targets`); searchers use
    it for read placement (:meth:`group_by_pod`), the shared
    :attr:`cache`, and liveness. Operators use :meth:`kill_server` /
    :meth:`restart_server` for failure drills.
    """

    def __init__(
        self,
        scheme: ShamirScheme,
        pods: Sequence[Pod],
        auth: AuthService,
        groups: GroupDirectory,
        share_bytes: int,
        cache_entries: int = 4096,
        virtual_nodes: int = 64,
    ) -> None:
        """Args:
        scheme: the k-of-n scheme every pod shares (n = pod size).
        pods: the server fleets; every pod must have exactly ``scheme.n``
            slots so shares stay slot-aligned.
        auth: enterprise auth service (needed to rebuild servers on
            WAL restart).
        groups: the replicated group table (also feeds the cache's
            membership fingerprints).
        share_bytes: wire size of one share value.
        cache_entries: LRU share-cache capacity; 0 disables caching.
        virtual_nodes: ring smoothness for pod placement.
        """
        if not pods:
            raise ClusterError("cluster needs at least one pod")
        for pod in pods:
            if len(pod.slots) != scheme.n:
                raise ClusterError(
                    f"pod {pod.name!r} has {len(pod.slots)} servers, "
                    f"scheme expects n={scheme.n}"
                )
        names = [pod.name for pod in pods]
        if len(set(names)) != len(names):
            raise ClusterError("duplicate pod names")
        self.scheme = scheme
        self.pods = list(pods)
        self._pod_by_name = {pod.name: pod for pod in self.pods}
        self._ring = ConsistentHashRing(names, virtual_nodes=virtual_nodes)
        self._placement_memo: dict[int, Pod] = {}
        self._auth = auth
        self._groups = groups
        self._share_bytes = share_bytes
        self.cache = LRUShareCache(cache_entries)
        #: Routing decisions (one per distinct posting list per batch,
        #: per dead seat) made while a seat was down. A lower bound on
        #: missed per-operation writes — owners memoize targets() per
        #: batch — so nonzero means some restarted WAL is missing data.
        self.dropped_write_routes = 0

    # -- placement -------------------------------------------------------------

    def pod_of(self, pl_id: int) -> Pod:
        """The pod owning one merged posting list (consistent hashing)."""
        pod = self._placement_memo.get(pl_id)
        if pod is None:
            name = self._ring.owners(f"pl:{pl_id}", replicas=1)[0]
            pod = self._pod_by_name[name]
            self._placement_memo[pl_id] = pod
        return pod

    def group_by_pod(self, pl_ids: Sequence[int]) -> dict[Pod, list[int]]:
        """Partition a query's posting lists by owning pod (routing plan)."""
        plan: dict[Pod, list[int]] = {}
        for pl_id in pl_ids:
            plan.setdefault(self.pod_of(pl_id), []).append(pl_id)
        return plan

    def shard_distribution(self, num_lists: int) -> dict[str, int]:
        """pod name -> owned list count over ``[0, num_lists)`` (balance)."""
        counts = {pod.name: 0 for pod in self.pods}
        for pl_id in range(num_lists):
            counts[self.pod_of(pl_id).name] += 1
        return counts

    # -- write routing (the owner's router) --------------------------------------

    def targets(self, pl_id: int) -> list[tuple[int, IndexServer]]:
        """The ``(share_slot, server)`` pairs a write to ``pl_id`` must reach.

        Invalidate-before-write: every cached entry for the list is
        evicted first, so no reader can observe pre-write shares after
        the write lands. Dead seats are skipped (and the skipped route
        counted in :attr:`dropped_write_routes`); the write still
        succeeds as long as ``k`` servers remain, and the element simply
        has fewer than n live shares until an owner re-provisions.
        """
        self.cache.invalidate(pl_id)
        pod = self.pod_of(pl_id)
        live = pod.live_slots()
        if len(live) < self.scheme.k:
            raise ClusterDegradedError(
                f"pod {pod.name!r} has {len(live)} live servers, "
                f"needs k={self.scheme.k} to accept writes"
            )
        self.dropped_write_routes += len(pod.slots) - len(live)
        return [(slot.slot_index, slot.server) for slot in live]

    # -- read-side helpers ----------------------------------------------------------

    def group_fingerprint(self, user_id: str) -> frozenset[int]:
        """The user's current group set — part of every cache key, so a
        membership change re-keys (and thereby bypasses) old entries."""
        return frozenset(self._groups.groups_of(user_id))

    # -- failure injection & recovery ----------------------------------------------

    def kill_server(self, pod_index: int, slot_index: int) -> str:
        """Take one server down; in-flight state is lost, the WAL survives.

        Returns the downed server's id.
        """
        slot = self._slot(pod_index, slot_index)
        if not slot.alive:
            raise ClusterError(f"server {slot.server_id!r} is already down")
        slot.alive = False
        if slot.log is not None:
            slot.log.close()
        return slot.server_id

    def restart_server(self, pod_index: int, slot_index: int) -> IndexServer:
        """Bring a dead seat back.

        With a WAL attached, the crash is taken seriously: the old
        server object (its memory) is discarded, a fresh
        :class:`IndexServer` replays the log, and the WAL is re-attached
        so post-restart writes keep logging. Without a WAL the seat's
        in-memory store is reused (a network partition, not a crash).
        """
        slot = self._slot(pod_index, slot_index)
        if slot.alive:
            raise ClusterError(f"server {slot.server_id!r} is not down")
        if slot.wal_path is not None:
            old = slot.server
            fresh = IndexServer(
                server_id=old.server_id,
                x_coordinate=old.x_coordinate,
                auth=self._auth,
                groups=self._groups,
                share_bytes=self._share_bytes,
            )
            log = PostingLog(slot.wal_path)
            recover_server(fresh, log)
            attach_log(fresh, log)
            slot.server = fresh
            slot.log = log
        slot.alive = True
        return slot.server

    def attach_wal(self, pod_index: int, slot_index: int, path) -> PostingLog:
        """Give one seat a write-ahead log (idempotent per seat)."""
        slot = self._slot(pod_index, slot_index)
        if slot.log is not None:
            raise ClusterError(f"server {slot.server_id!r} already has a WAL")
        log = PostingLog(path)
        attach_log(slot.server, log)
        slot.wal_path = pathlib.Path(path)
        slot.log = log
        return log

    def _slot(self, pod_index: int, slot_index: int) -> ServerSlot:
        if not 0 <= pod_index < len(self.pods):
            raise ClusterError(
                f"no pod {pod_index} (0..{len(self.pods) - 1})"
            )
        return self.pods[pod_index].slot(slot_index)

    # -- introspection ---------------------------------------------------------------

    def live_servers(self) -> list[str]:
        return [
            slot.server_id
            for pod in self.pods
            for slot in pod.slots
            if slot.alive
        ]

    def dead_servers(self) -> list[str]:
        return [
            slot.server_id
            for pod in self.pods
            for slot in pod.slots
            if not slot.alive
        ]

    def total_elements(self) -> int:
        """Stored posting elements summed over every live server."""
        return sum(
            slot.server.num_elements
            for pod in self.pods
            for slot in pod.slots
            if slot.alive
        )

    def storage_bytes(self) -> int:
        """Wire-encoded storage across the cluster (n x per-pod shard)."""
        return sum(
            slot.server.storage_bytes()
            for pod in self.pods
            for slot in pod.slots
            if slot.alive
        )
