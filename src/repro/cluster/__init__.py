"""Sharded cluster query engine: pods, placement, failover, caching.

This package composes the seed's pieces — the §5 k-of-n server fleet,
the §8 DHT placement sketch, Shamir reconstruction from any k shares,
and the simulated transport — into a cluster that shards merged posting
lists across server *pods*, batches multi-term lookups into one message
per server, survives up to n - k server failures per pod, and fronts
reads with an LRU share cache invalidated on writes.
"""

from repro.cluster.cache import CacheStats, LRUShareCache
from repro.cluster.clients import ClusterDiagnostics, ClusterSearchClient
from repro.cluster.coordinator import (
    ClusterCoordinator,
    Pod,
    RebalanceStats,
    ServerSlot,
    attach_wal_to_slot,
    slot_service,
)
from repro.cluster.deployment import ClusterDeployment

__all__ = [
    "CacheStats",
    "ClusterCoordinator",
    "ClusterDeployment",
    "ClusterDiagnostics",
    "ClusterSearchClient",
    "LRUShareCache",
    "Pod",
    "RebalanceStats",
    "ServerSlot",
    "attach_wal_to_slot",
    "slot_service",
]
