"""LRU cache of fetched posting-list shares (cluster front, ROADMAP).

Lookups dominate a production workload (the §7.4.3 query log runs
millions of queries against a corpus that changes slowly), so the cluster
coordinator fronts the server fleet with a share cache: one entry holds
the *raw share responses* one user fetched for one merged posting list —
already ACL-filtered by the servers, already joined with enough shares to
reconstruct every element.

Two rules keep the cache exactly as safe as talking to the servers:

- **Invalidation on write**: any insert or delete routed to a posting
  list evicts every cached entry for that list *before* the write is
  delivered, so a subsequent read refetches.
- **Group fingerprinting**: the cache key includes a fingerprint of the
  user's current group memberships. When memberships change, the key
  changes, so stale ACL-filtered entries become unreachable and age out
  via LRU instead of ever being served.

Cached values are Shamir-share *bundles*: one entry joins >= k shares
per element, enough to reconstruct, so unlike a single compromised
server (one r-confidential share, §5) this cache must stay inside the
coordinator/client trust boundary — it is never exposed to other
principals.

Keys are deliberately **pod-agnostic**: ``(user, group fingerprint,
fetch width, pl_id, write epoch)`` — never the pod that served the
fetch. The epoch is bumped by the coordinator on every invalidation and
on write completion, so a slow fill that raced a write re-installs
under a dead key. Replica
pods hold identical slot-aligned shares, so an entry fetched from pod A
is byte-equal to what pod B would have returned, and it keeps serving
hits after A dies; likewise writes invalidate by ``pl_id`` alone, which
covers every replica at once.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.errors import ClusterError


@dataclass
class CacheStats:
    """Hit/miss accounting for the bench and diagnostics surfaces."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0


@dataclass
class _Entry:
    pl_id: int
    value: Any = field(default=None)


class LRUShareCache:
    """Bounded LRU of ``key -> fetched share responses``, keyed per list.

    Keys are opaque hashables (the cluster uses
    ``(user_id, group_fingerprint, pl_id)``); the separate ``pl_id``
    argument to :meth:`put` feeds the write-invalidation index.
    """

    def __init__(self, capacity: int = 4096) -> None:
        """Args:
        capacity: maximum entries; 0 disables caching entirely (every
            ``get`` misses, every ``put`` is dropped).
        """
        if capacity < 0:
            raise ClusterError(f"cache capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        self._entries: OrderedDict[Hashable, _Entry] = OrderedDict()
        self._keys_of_pl: dict[int, set[Hashable]] = {}
        self.stats = CacheStats()

    # -- core operations -----------------------------------------------------

    def get(self, key: Hashable) -> Any | None:
        """The cached value, refreshed as most-recently-used; None on miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry.value

    def put(self, key: Hashable, pl_id: int, value: Any) -> None:
        """Insert (or refresh) one entry, evicting the LRU tail if full."""
        if self._capacity == 0:
            return
        if key in self._entries:
            self._drop(key)
        while len(self._entries) >= self._capacity:
            oldest_key = next(iter(self._entries))
            self._drop(oldest_key)
            self.stats.evictions += 1
        self._entries[key] = _Entry(pl_id=pl_id, value=value)
        self._keys_of_pl.setdefault(pl_id, set()).add(key)

    def invalidate(self, pl_id: int) -> int:
        """Evict every entry for one posting list; returns how many."""
        keys = self._keys_of_pl.pop(pl_id, None)
        if not keys:
            return 0
        for key in list(keys):
            self._entries.pop(key, None)
        self.stats.invalidations += len(keys)
        return len(keys)

    def clear(self) -> None:
        self._entries.clear()
        self._keys_of_pl.clear()

    # -- internals ------------------------------------------------------------

    def _drop(self, key: Hashable) -> None:
        entry = self._entries.pop(key)
        keys = self._keys_of_pl.get(entry.pl_id)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._keys_of_pl[entry.pl_id]

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def capacity(self) -> int:
        return self._capacity
