"""The sharded cluster's query client (cluster front of §5.4.2).

:class:`ClusterSearchClient` speaks the exact :class:`SearchClient`
surface — same :class:`~repro.client.searcher.SearchResult`, same
Algorithm 2 pipeline — but replaces the fetch stage with cluster-aware
routing:

- **batched lookups**: a query's posting lists are grouped by owning pod
  and each contacted server receives *one* lookup message carrying every
  list it owns that the query needs — one round-trip per server per
  query instead of one per term (set ``batch_lookups=False`` to get the
  naive fan-out for comparison benches);
- **replica choice**: with ``replication_factor >= 2`` each list lives
  on several pods holding the *same* slot-aligned shares; the client
  reads from the least-loaded replica with the most *trusted* live
  seats for the list — seats the coordinator's staleness ledger marks
  as having missed writes are never asked about those lists at all
  (a stale seat omits inserts it slept through and still holds shares
  of deletes it missed; neither is detectable from responses);
- **failover ladder**: within a pod, trusted servers are tried in slot
  order — a dead one costs a :class:`TransportError` and the next slot
  takes its place; when an element still comes back with fewer than k
  shares (**share-shortfall escalation** — shares lost in ways the
  ledger cannot see, e.g. disk rot), extra live servers of the pod are
  asked; when the *pod* cannot finish the job, the next replica pod
  takes over the unresolved lists, its slots unioning with what was
  already fetched (slot s shares are identical across replicas, so the
  merge dedups by slot). Only when every replica is exhausted below k
  trusted answered slots does the query degrade loudly;
- **share cache**: reads are fronted by the coordinator's LRU cache
  (invalidated on writes, re-keyed on membership changes); a cache hit
  costs zero messages and zero bytes. Cache keys are pod-agnostic —
  ``(user, group fingerprint, width, pl_id)`` — so an entry fetched
  from one replica serves reads even after that pod dies;
- **parallel fan-out**: each failover round assigns disjoint list sets
  to its pods, so the per-pod fetches run concurrently on a shared
  :class:`~repro.server.transport.ConcurrentDispatcher` and fold back
  in deterministic pod order — byte-identical *results* versus the
  sequential path (``parallel_fanout=False``) always; diagnostics
  counts are identical too whenever replica choice cannot diverge
  (``replication_factor=1``, or tied EWMA buckets). At R >= 2 the
  latency-aware ranking is deliberately wall-clock-sensitive, so the
  two modes may route the same query to different (equally correct)
  replicas.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, wait as futures_wait
from dataclasses import dataclass
from typing import Sequence

from repro.cachetier.l1 import L1PostingCache
from repro.cachetier.wire import decode_entry, encode_entry, entry_key
from repro.client.searcher import SearchClient
from repro.client.snippets import SnippetService
from repro.cluster.coordinator import ClusterCoordinator, Pod, ServerSlot
from repro.core.dictionary import TermDictionary
from repro.core.mapping_table import MappingTable
from repro.core.posting import PostingElement, PostingElementCodec
from repro.errors import (
    ClusterDegradedError,
    ProtocolError,
    TransportError,
    UnknownEndpointError,
)
from repro.protocol.messages import (
    CacheGetRequest,
    CachePutRequest,
    FetchListsRequest,
)
from repro.observability.tracing import (
    TraceContext,
    current_trace,
    record_span,
    span,
    trace_scope,
)
from repro.protocol.transport import Transport
from repro.resilience.deadline import (
    Deadline,
    current_deadline,
    deadline_scope,
)
from repro.server.auth import AuthToken
from repro.server.index_server import PostingListResponse
from repro.server.transport import ConcurrentDispatcher, SimulatedNetwork

#: Shared worker pool for the parallel pod fan-out. Module-level so the
#: threads are reused across every client (and every test) instead of
#: being churned per searcher; single-pod rounds never touch it.
_FANOUT_DISPATCHER = ConcurrentDispatcher(max_workers=8)


@dataclass
class ClusterDiagnostics:
    """Per-query accounting of the cluster fetch stage.

    Attributes:
        pods_contacted: pods that actually received a lookup message.
        lookup_messages: lookup RPCs actually sent (cache hits send none).
        cache_hits: posting lists served entirely from the share cache.
        failovers: servers skipped because they were down.
        escalations: extra fetches issued to cover share shortfalls.
        pod_failovers: lists retried on a further replica pod because
            the preferred pod could not finish them.
        hedged_fetches: backup replica legs actually fired because the
            primary leg outlived the hedge delay.
        hedge_wins: hedged fetches where the backup leg answered first.
        l1_hits: lists served from the searcher-local L1 (no network,
            no reconstruction).
        l2_hits: lists served from the shared cache tier (one cache
            round-trip instead of k seat fetches).
    """

    pods_contacted: int = 0
    lookup_messages: int = 0
    cache_hits: int = 0
    failovers: int = 0
    escalations: int = 0
    pod_failovers: int = 0
    parallel_rounds: int = 0
    hedged_fetches: int = 0
    hedge_wins: int = 0
    l1_hits: int = 0
    l2_hits: int = 0


@dataclass
class _PodFetchOutcome:
    """One pod's leg of a fan-out round, tallied thread-locally.

    The parallel fan-out runs one :meth:`ClusterSearchClient
    ._fetch_from_pod` per assigned pod concurrently; each leg records
    its accounting here instead of mutating shared diagnostics, and the
    query thread folds the outcomes back in deterministic pod order
    once the round completes.
    """

    contacted: bool = False
    failovers: int = 0
    escalations: int = 0
    lookup_messages: int = 0
    response_bytes: int = 0
    latency_s: float = 0.0


class ClusterSearchClient(SearchClient):
    """A group member searching the sharded cluster."""

    def __init__(
        self,
        user_id: str,
        token: AuthToken,
        coordinator: ClusterCoordinator,
        mapping_table: MappingTable,
        dictionary: TermDictionary,
        codec: PostingElementCodec | None = None,
        network: SimulatedNetwork | None = None,
        snippet_service: SnippetService | None = None,
        reconstruct_method: str = "lagrange",
        verify_consistency: bool = False,
        use_cache: bool = True,
        batch_lookups: bool = True,
        parallel_fanout: bool = True,
        transport: Transport | None = None,
        dispatcher: ConcurrentDispatcher | None = None,
        hedge_reads: bool = False,
        hedge_delay_s: float | None = None,
        cache_tier: str | None = None,
        l1_entries: int = 0,
    ) -> None:
        """Args:
        user_id: the searching principal (network endpoint name too).
        token: enterprise auth ticket.
        coordinator: the cluster control plane (placement, liveness,
            share cache, public Shamir parameters).
        mapping_table: public term -> posting-list resolver.
        dictionary: public term -> term_id registry.
        codec: posting-element unpacker.
        network: optional simulated network for byte accounting.
        snippet_service: optional hosting-peer registry.
        reconstruct_method: "lagrange" (default) or "gaussian".
        verify_consistency: cross-check reconstructions when more than k
            shares arrive (see :class:`SearchClient`).
        use_cache: front lookups with the coordinator's share cache.
        batch_lookups: one lookup message per server per query (True,
            the default) vs one message per posting list per server
            (False — the naive fan-out, kept for benches).
        parallel_fanout: fetch from the pods assigned in one failover
            round concurrently (True, the default) instead of one pod
            at a time. Results are byte-identical either way (outcomes
            merge in deterministic pod order); diagnostics counts
            match as well unless the latency-aware replica ranking —
            wall-clock-fed, hence timing-sensitive at
            ``replication_factor >= 2`` — routes the modes to
            different replicas. False exists for A/B tests and
            debugging.
        transport: where lookup messages go; defaults to the
            coordinator's transport (deployments pass their own — the
            in-process registry or a socket client).
        dispatcher: worker pool for the parallel fan-out; deployments
            pass their own so ``close()`` can reap the threads. Falls
            back to a module-shared pool.
        hedge_reads: race a delayed backup replica leg against a slow
            primary leg (first answer wins, the loser's result is
            discarded). Opt-in: replicas hold byte-identical slot
            shares so results never differ, but hedging spends extra
            lookup messages — the historical message-count invariants
            assume it off.
        hedge_delay_s: fixed hedge delay override; None (default)
            derives it per list from the replica pods' observed p95
            fetch latency (:meth:`ClusterCoordinator.hedge_delay_s`).
        cache_tier: endpoint name of a shared cache-tier service
            (:class:`repro.cachetier.CacheTierService`); None (default)
            skips the L2 consult entirely. Obeys the same gating as
            the share cache (``use_cache``, and never under
            ``verify_consistency``); a dead or unknown tier degrades
            silently to a fleet fetch.
        l1_entries: capacity of a searcher-local L1 of *reconstructed*
            postings; 0 (default) disables it. The L1 registers with
            the coordinator for write-fan-out invalidation and eager
            membership eviction, so hot repeat queries skip the
            network and Lagrange reconstruction while staying
            byte-identical to fresh fetches.
        """
        super().__init__(
            user_id=user_id,
            token=token,
            scheme=coordinator.scheme,
            mapping_table=mapping_table,
            dictionary=dictionary,
            servers=None,
            codec=codec,
            network=network,
            snippet_service=snippet_service,
            reconstruct_method=reconstruct_method,
            verify_consistency=verify_consistency,
            transport=transport or coordinator.transport,
        )
        self._coordinator = coordinator
        self._use_cache = use_cache
        self._batch_lookups = batch_lookups
        self._parallel_fanout = parallel_fanout
        self._dispatcher = dispatcher or _FANOUT_DISPATCHER
        self._hedge_reads = hedge_reads
        self._hedge_delay_s = hedge_delay_s
        self._cache_tier = cache_tier
        self._l1: L1PostingCache | None = None
        if l1_entries:
            self._l1 = L1PostingCache(l1_entries)
            coordinator.register_l1(self._l1)
        #: Lists whose last fetch left an element below k shares — never
        #: cacheable, in any tier (set per _fetch_lists call).
        self._last_unresolved: set[int] = set()
        self.last_cluster_diagnostics = ClusterDiagnostics()

    @property
    def l1_cache(self) -> L1PostingCache | None:
        """The searcher-local L1, for observability (None when off)."""
        return self._l1

    def fetch_elements(self, terms, num_servers=None):
        """Publish per-query counters into the coordinator's registry.

        The instrumented path is byte-identical to the base pipeline —
        it only counts and times around it. ``zerber_search_queries
        _total`` and the fetch-latency histogram are what ``repro
        cluster top`` derives its qps and quantile columns from.
        """
        metrics = self._coordinator.metrics
        if metrics is None:
            return super().fetch_elements(terms, num_servers)
        started = time.perf_counter()
        try:
            return super().fetch_elements(terms, num_servers)
        finally:
            metrics.counter("zerber_search_queries_total").inc()
            metrics.histogram("zerber_search_latency_seconds").observe(
                time.perf_counter() - started
            )

    # -- the cluster fetch stage ------------------------------------------------

    def _fetch_lists(
        self, pl_ids: Sequence[int], num_servers: int
    ) -> list[tuple[int, list[PostingListResponse]]]:
        """Route, batch, fail over, escalate; returns (slot_index, responses).

        Slot indices repeat across pods, but replica pods of a list hold
        *identical* slot-aligned shares, so the base class's
        ``(pl_id, element_id)`` share join never mixes incompatible
        shares — slot ``s`` of every pod shares the x-coordinate
        ``scheme.x_of(s)``, and the per-list merge below keeps at most
        one response per slot.
        """
        self.last_cluster_diagnostics = ClusterDiagnostics()
        self._last_unresolved = set()
        diag = self.last_cluster_diagnostics
        coordinator = self._coordinator
        # verify_consistency needs fresh shares from > k servers every
        # time — serving a k-share cached entry would silently disable
        # the lying-server cross-check, so the cache steps aside. The
        # same gate covers the shared cache tier.
        caching = self._use_cache and not self._verify
        cache = coordinator.cache if caching else None
        tier = self._cache_tier if caching else None
        fingerprint = (
            coordinator.group_fingerprint(self.user_id)
            if caching
            else None
        )
        # Epochs are captured once, before any share leaves a seat: a
        # fill is installed under the captured epoch, so a write that
        # invalidates (and bumps) mid-fetch fences the fill into a key
        # no later reader derives — re-installing pre-write shares
        # after an invalidation is the race this closes.
        epochs = (
            {pl_id: coordinator.write_epoch(pl_id) for pl_id in pl_ids}
            if caching
            else {}
        )
        out: list[tuple[int, list[PostingListResponse]]] = []
        need: list[int] = []
        with span("cache-lookup"):
            for pl_id in pl_ids:
                # num_servers is part of the key: a wider request must
                # not be satisfied by a narrower fetch.
                key = (
                    self.user_id,
                    fingerprint,
                    num_servers,
                    pl_id,
                    epochs.get(pl_id),
                )
                entry = cache.get(key) if cache is not None else None
                if entry is not None:
                    diag.cache_hits += 1
                    # Cache-hit-aware balancing: the pod whose fetch
                    # produced this entry is still absorbing the list's
                    # read traffic; tell the coordinator so its replica
                    # ranking doesn't mistake it for idle.
                    coordinator.note_cache_read(pl_id)
                    for slot_index, response in entry:
                        out.append((slot_index, [response]))
                else:
                    need.append(pl_id)
        if tier is not None and need:
            # Consult the shared tier before paying a fleet fetch. A
            # hit is the same sorted (slot, response) pairs a fetch
            # would have produced; it also warms the local share cache
            # so the next repeat stays process-local.
            still: list[int] = []
            for pl_id in need:
                entry = self._cache_tier_get(
                    fingerprint, num_servers, pl_id, epochs[pl_id]
                )
                if entry is None:
                    still.append(pl_id)
                    continue
                diag.l2_hits += 1
                coordinator.note_cache_read(pl_id)
                for slot_index, response in entry:
                    out.append((slot_index, [response]))
                if cache is not None:
                    cache.put(
                        (
                            self.user_id,
                            fingerprint,
                            num_servers,
                            pl_id,
                            epochs[pl_id],
                        ),
                        pl_id,
                        entry,
                    )
            need = still
        if not need:
            return out
        merged, unresolved = self._fetch_with_failover(
            need, num_servers, diag
        )
        self._last_unresolved = set(unresolved)
        for pl_id in need:
            pairs = sorted(merged[pl_id].items())
            for slot_index, response in pairs:
                out.append((slot_index, [response]))
            # A list with an unresolved share shortfall is served but
            # never cached: the missing shares may reappear when a
            # server recovers, and a cached short entry would hide
            # them until an unrelated write evicted it.
            if pairs and pl_id not in unresolved:
                if cache is not None:
                    cache.put(
                        (
                            self.user_id,
                            fingerprint,
                            num_servers,
                            pl_id,
                            epochs[pl_id],
                        ),
                        pl_id,
                        pairs,
                    )
                if tier is not None:
                    self._cache_tier_put(
                        fingerprint, num_servers, pl_id, epochs[pl_id], pairs
                    )
        return out

    def _cache_tier_get(
        self, fingerprint, num_servers: int, pl_id: int, epoch: int
    ) -> list[tuple[int, PostingListResponse]] | None:
        """One L2 lookup; None on miss, tier failure, or a torn entry."""
        key = entry_key(fingerprint, num_servers, pl_id, epoch)
        try:
            with span("l2-get"):
                response = self._transport.call(
                    src=self.user_id,
                    dst=self._cache_tier,
                    request=CacheGetRequest(token=self._token, key=key),
                )
        except (TransportError, UnknownEndpointError):
            return None  # the tier is an accelerator, never a dependency
        self.last_diagnostics.response_bytes += response.wire_bytes(
            self._share_bytes
        )
        if not response.hit:
            return None
        try:
            return decode_entry(response.value)
        except ProtocolError:
            return None  # corrupt value: treat as a miss, refetch

    def _cache_tier_put(
        self, fingerprint, num_servers: int, pl_id: int, epoch: int, pairs
    ) -> None:
        """Best-effort L2 fill; a lost put only costs a future miss.

        ``epoch`` is the value captured before the fetch that produced
        ``pairs`` — never re-read here, or a fill racing an
        invalidation could install pre-write shares under the current
        key.
        """
        try:
            self._transport.call(
                src=self.user_id,
                dst=self._cache_tier,
                request=CachePutRequest(
                    token=self._token,
                    key=entry_key(fingerprint, num_servers, pl_id, epoch),
                    pl_id=pl_id,
                    value=encode_entry(pairs),
                ),
            )
        except (TransportError, UnknownEndpointError):
            pass

    # -- the searcher-local L1 ---------------------------------------------------

    def _elements_by_list(
        self, pl_ids: Sequence[int], num_servers: int
    ) -> dict[int, list[PostingElement]]:
        """Front reconstruction with the L1 when one is attached.

        An L1 entry is the reconstructed-but-unfiltered element tuple of
        one list for this exact (user, group fingerprint, width) — the
        same inputs that determine a fresh fetch's bytes, so a hit is
        byte-identical by construction. Shortfall lists are never
        stored; verify_consistency bypasses the L1 exactly like every
        other cache.
        """
        l1 = (
            self._l1
            if self._l1 is not None
            and self._use_cache
            and not self._verify
            else None
        )
        if l1 is None:
            return self._reconstruct_lists(pl_ids, num_servers)
        coordinator = self._coordinator
        fingerprint = coordinator.group_fingerprint(self.user_id)
        # Same fence as the share tiers: the epoch rides in the key,
        # captured before any fetch, so an L1 fill racing the
        # coordinator's invalidation thread lands under a dead key
        # instead of resurrecting pre-write postings.
        epochs = {
            pl_id: coordinator.write_epoch(pl_id) for pl_id in pl_ids
        }
        out: dict[int, list[PostingElement]] = {}
        missing: list[int] = []
        l1_hits = 0
        with span("l1-lookup"):
            for pl_id in pl_ids:
                entry = l1.get(
                    (
                        self.user_id,
                        fingerprint,
                        num_servers,
                        pl_id,
                        epochs[pl_id],
                    )
                )
                if entry is None:
                    missing.append(pl_id)
                else:
                    out[pl_id] = list(entry)
                    l1_hits += 1
                    coordinator.note_cache_read(pl_id)
        if missing:
            # _fetch_lists (inside) resets last_cluster_diagnostics for
            # this query; the L1 tallies are re-applied after.
            fetched = self._reconstruct_lists(missing, num_servers)
            for pl_id in missing:
                elements = fetched[pl_id]
                out[pl_id] = elements
                if pl_id not in self._last_unresolved:
                    l1.put(
                        (
                            self.user_id,
                            fingerprint,
                            num_servers,
                            pl_id,
                            epochs[pl_id],
                        ),
                        pl_id,
                        tuple(elements),
                    )
        else:
            self.last_cluster_diagnostics = ClusterDiagnostics()
        self.last_cluster_diagnostics.l1_hits += l1_hits
        return out

    def _fetch_with_failover(
        self,
        need: Sequence[int],
        num_servers: int,
        diag: ClusterDiagnostics,
    ) -> tuple[dict[int, dict[int, PostingListResponse]], set[int]]:
        """Fetch every list from its replica chain, best pod first.

        Each round assigns every still-unfinished list to its next
        untried replica pod (preference order from
        :meth:`ClusterCoordinator.read_replicas`), fetches — from all
        assigned pods *concurrently* when more than one pod is involved
        (the pods' list sets are disjoint within a round, so their
        merges touch disjoint state) — and merges slot-deduplicated
        responses in deterministic pod order. A list is finished when
        >= k slots answered for it and no element is short of k shares;
        it degrades loudly only when the whole replica chain is
        exhausted below k answered slots.

        Returns ``(merged, unresolved)`` — per list, one response per
        answering slot; and the lists that still contain an element with
        fewer than k shares after the whole ladder (uncacheable).
        """
        coordinator = self._coordinator
        k = self._scheme.k
        merged: dict[int, dict[int, PostingListResponse]] = {
            pl_id: {} for pl_id in need
        }
        #: pl_id -> element_id -> shares gathered so far (kept
        #: incrementally by _merge_response; shortfall checks are O(1)
        #: per element instead of rescanning every response).
        counts: dict[int, dict[int, int]] = {pl_id: {} for pl_id in need}
        tried: dict[int, set[str]] = {pl_id: set() for pl_id in need}
        contacted: set[str] = set()
        # Sampled once: worker threads re-apply it explicitly (the
        # scope is thread-local), and every failover round checks it —
        # a degraded query walks the replica chain only as far as its
        # caller's remaining budget allows, never past it.
        deadline = current_deadline()
        # The ambient trace is thread-local for the same reason; legs
        # dispatched to the pool re-apply it so their spans (and the
        # TRACE-flagged frames they send) stay on the query's trace.
        trace = current_trace()
        pending = list(need)
        while pending:
            if deadline is not None:
                deadline.check("cluster fetch")
            assignment: dict[Pod, list[int]] = {}
            for pl_id in pending:
                pod = next(
                    (
                        p
                        for p in coordinator.read_replicas(pl_id)
                        if p.name not in tried[pl_id]
                    ),
                    None,
                )
                if pod is None:
                    continue  # replica chain exhausted
                if tried[pl_id]:
                    diag.pod_failovers += 1
                tried[pl_id].add(pod.name)
                assignment.setdefault(pod, []).append(pl_id)
            if not assignment:
                break
            # One job per assigned pod. The jobs are independent: each
            # list belongs to exactly one pod this round, so the merges
            # mutate disjoint per-list state, and every job tallies its
            # accounting thread-locally in a _PodFetchOutcome.
            jobs = [
                (pod, assignment[pod])
                for pod in sorted(assignment, key=lambda p: p.index)
            ]
            if self._hedge_reads:
                for pod, lists in jobs:
                    self._hedged_job(
                        deadline,
                        trace,
                        pod,
                        lists,
                        num_servers,
                        merged,
                        counts,
                        tried,
                        contacted,
                        diag,
                    )
                pending = [
                    pl_id
                    for pl_id in need
                    if self._needs_more(merged[pl_id], counts[pl_id], k)
                    and any(
                        pod.name not in tried[pl_id]
                        for pod in coordinator.pods_of(pl_id)
                    )
                ]
                continue
            if self._parallel_fanout and len(jobs) > 1:
                diag.parallel_rounds += 1
                outcomes = self._dispatcher.map_ordered(
                    [
                        (
                            lambda p=pod, ls=lists: self._pod_leg(
                                deadline,
                                trace,
                                p,
                                ls,
                                num_servers,
                                merged,
                                counts,
                            )
                        )
                        for pod, lists in jobs
                    ]
                )
            else:
                outcomes = [
                    self._fetch_from_pod(
                        pod, lists, num_servers, merged, counts
                    )
                    for pod, lists in jobs
                ]
            # Deterministic merge: outcomes fold in pod-index order no
            # matter which thread finished first.
            for (pod, lists), outcome in zip(jobs, outcomes):
                diag.failovers += outcome.failovers
                diag.escalations += outcome.escalations
                diag.lookup_messages += outcome.lookup_messages
                self.last_diagnostics.response_bytes += (
                    outcome.response_bytes
                )
                if outcome.contacted:
                    contacted.add(pod.name)
                    coordinator.breakers.record_success(pod.name)
                    coordinator.note_pod_read(
                        pod.name,
                        len(lists),
                        latency_s=outcome.latency_s,
                        pl_ids=lists,
                    )
                else:
                    # No seat of the pod answered a thing: the whole
                    # leg failed. (A partially degraded pod that still
                    # answered counts as success — the breaker guards
                    # against dead pods, not slow seats.)
                    coordinator.breakers.record_failure(pod.name)
            pending = [
                pl_id
                for pl_id in need
                if self._needs_more(merged[pl_id], counts[pl_id], k)
                and any(
                    pod.name not in tried[pl_id]
                    for pod in coordinator.pods_of(pl_id)
                )
            ]
        diag.pods_contacted = len(contacted)
        for pl_id in need:
            answered = len(merged[pl_id])
            if answered < k:
                raise ClusterDegradedError(
                    f"list {pl_id}: only {answered} of the required "
                    f"k={k} trusted server slots answered across "
                    f"{len(tried[pl_id])} replica pod(s)"
                )
        unresolved = {
            pl_id
            for pl_id in need
            if self._share_shortfall(counts[pl_id], k)
        }
        return merged, unresolved

    @staticmethod
    def _share_shortfall(share_counts: dict[int, int], k: int) -> bool:
        """True when some element of the list has < k shares so far."""
        return bool(share_counts) and min(share_counts.values()) < k

    def _needs_more(
        self,
        slot_map: dict[int, PostingListResponse],
        share_counts: dict[int, int],
        k: int,
    ) -> bool:
        return len(slot_map) < k or self._share_shortfall(share_counts, k)

    @staticmethod
    def _merge_response(
        slot_map: dict[int, PostingListResponse],
        share_counts: dict[int, int],
        slot_index: int,
        response: PostingListResponse,
    ) -> None:
        """Fold one slot's response in, unioning records per element.

        Replica pods hold identical shares per slot, so a record seen
        twice is byte-equal; the union matters when an earlier replica's
        seat answered short (e.g. lost shares) and a later replica's
        same slot fills the gap. ``share_counts`` tracks per-element
        share totals incrementally.
        """
        existing = slot_map.get(slot_index)
        if existing is None:
            slot_map[slot_index] = response
            for record in response.records:
                share_counts[record.element_id] = (
                    share_counts.get(record.element_id, 0) + 1
                )
            return
        known = {record.element_id for record in existing.records}
        extra = [
            record
            for record in response.records
            if record.element_id not in known
        ]
        if extra:
            slot_map[slot_index] = PostingListResponse(
                pl_id=existing.pl_id,
                records=tuple(
                    sorted(
                        (*existing.records, *extra),
                        key=lambda record: record.element_id,
                    )
                ),
            )
            for record in extra:
                share_counts[record.element_id] = (
                    share_counts.get(record.element_id, 0) + 1
                )

    def _pod_leg(
        self,
        deadline: Deadline | None,
        trace: TraceContext | None,
        pod: Pod,
        need: Sequence[int],
        num_servers: int,
        merged: dict[int, dict[int, PostingListResponse]],
        counts: dict[int, dict[int, int]],
    ) -> _PodFetchOutcome:
        """A :meth:`_fetch_from_pod` on a worker thread.

        The ambient deadline and trace are thread-local, so the fan-out
        worker re-applies the query thread's scopes before fetching —
        without this, a leg dispatched to the pool would be unbounded
        (and its spans orphaned off the query's trace).
        """
        with deadline_scope(deadline=deadline), trace_scope(trace=trace):
            return self._fetch_from_pod(pod, need, num_servers, merged, counts)

    def _hedge_backup(
        self,
        pod: Pod,
        lists: Sequence[int],
        tried: dict[int, set[str]],
    ) -> Pod | None:
        """The backup replica a hedged leg would race against ``pod``.

        Must replicate *every* list of the leg and be untried for all
        of them; preference order from the first list's ranking. None
        when the leg cannot be hedged (no common untried replica).
        """
        coordinator = self._coordinator
        for candidate in coordinator.read_replicas(lists[0]):
            if candidate.name == pod.name:
                continue
            if all(
                candidate.name not in tried[pl_id]
                and any(
                    p.name == candidate.name
                    for p in coordinator.pods_of(pl_id)
                )
                for pl_id in lists
            ):
                return candidate
        return None

    def _hedged_job(
        self,
        deadline: Deadline | None,
        trace: TraceContext | None,
        pod: Pod,
        lists: list[int],
        num_servers: int,
        merged: dict[int, dict[int, PostingListResponse]],
        counts: dict[int, dict[int, int]],
        tried: dict[int, set[str]],
        contacted: set[str],
        diag: ClusterDiagnostics,
    ) -> None:
        """One hedged leg of a failover round (Dean-style backup read).

        The primary leg runs on the dispatcher; if it has not answered
        within the hedge delay (p95-derived — "the best replica would
        have answered by now"), a backup leg fires against the next
        untried replica and the first *successful* answer wins. Each
        leg fetches into private dicts, so the racing legs never touch
        shared state; only the winner's responses are folded in (on
        this thread, deterministically). Replica pods hold identical
        slot-aligned shares, so whichever leg wins, the folded bytes
        are the same — hedging buys latency, never different results.
        The loser is abandoned, its result discarded on completion.
        """
        coordinator = self._coordinator
        backup = self._hedge_backup(pod, lists, tried)

        def leg(target: Pod):
            local_merged: dict[int, dict[int, PostingListResponse]] = {
                pl_id: {} for pl_id in lists
            }
            local_counts: dict[int, dict[int, int]] = {
                pl_id: {} for pl_id in lists
            }
            with deadline_scope(deadline=deadline), trace_scope(trace=trace):
                outcome = self._fetch_from_pod(
                    target, lists, num_servers, local_merged, local_counts
                )
            return target, outcome, local_merged, local_counts

        completed: list[tuple] = []  # (target, outcome, lm, lc, is_backup)
        error: BaseException | None = None
        winner: tuple | None = None
        if backup is None:
            completed.append((*leg(pod), False))
            if completed[0][1].contacted:
                winner = completed[0]
        else:
            delay = self._hedge_delay_s
            if delay is None:
                delay = coordinator.hedge_delay_s(lists[0])
            primary = self._dispatcher.submit(lambda: leg(pod))
            done, _running = futures_wait([primary], timeout=delay)
            if done:
                try:
                    completed.append((*primary.result(), False))
                    if completed[0][1].contacted:
                        winner = completed[0]
                except Exception as exc:  # noqa: BLE001 - re-raised below
                    error = exc
            else:
                diag.hedged_fetches += 1
                backup_future = self._dispatcher.submit(lambda: leg(backup))
                # The backup attempt is consumed whether it wins or
                # not — a later failover round must not re-ask it.
                for pl_id in lists:
                    tried[pl_id].add(backup.name)
                remaining = {primary, backup_future}
                while remaining and winner is None:
                    if deadline is not None:
                        deadline.check("hedged fetch")
                    done, remaining = futures_wait(
                        remaining,
                        timeout=(
                            None
                            if deadline is None
                            else max(deadline.remaining_s(), 1e-4)
                        ),
                        return_when=FIRST_COMPLETED,
                    )
                    # Primary first on a simultaneous finish, for a
                    # deterministic tiebreak.
                    for future in sorted(
                        done, key=lambda f: f is backup_future
                    ):
                        try:
                            target, outcome, lm, lc = future.result()
                        except Exception as exc:  # noqa: BLE001
                            if error is None:
                                error = exc
                            continue
                        entry = (
                            target,
                            outcome,
                            lm,
                            lc,
                            future is backup_future,
                        )
                        completed.append(entry)
                        if outcome.contacted and winner is None:
                            winner = entry
                if winner is not None and winner[4]:
                    diag.hedge_wins += 1
        # Every completed leg is a real observation for the breaker,
        # winner or not.
        for target, outcome, _lm, _lc, _is_backup in completed:
            if outcome.contacted:
                coordinator.breakers.record_success(target.name)
            else:
                coordinator.breakers.record_failure(target.name)
        folded = winner if winner is not None else (
            completed[0] if completed else None
        )
        if folded is None:
            if error is not None:
                raise error
            return
        target, outcome, local_merged, local_counts, _is_backup = folded
        diag.failovers += outcome.failovers
        diag.escalations += outcome.escalations
        diag.lookup_messages += outcome.lookup_messages
        self.last_diagnostics.response_bytes += outcome.response_bytes
        for pl_id in lists:
            for slot_index, response in sorted(local_merged[pl_id].items()):
                self._merge_response(
                    merged[pl_id], counts[pl_id], slot_index, response
                )
        if outcome.contacted:
            contacted.add(target.name)
            coordinator.note_pod_read(
                target.name,
                len(lists),
                latency_s=outcome.latency_s,
                pl_ids=lists,
            )
        elif error is not None:
            raise error

    def _fetch_from_pod(
        self,
        pod: Pod,
        need: Sequence[int],
        num_servers: int,
        merged: dict[int, dict[int, PostingListResponse]],
        counts: dict[int, dict[int, int]],
    ) -> _PodFetchOutcome:
        """One pod's leg of the ladder: slot failover, then escalation.

        Seats the staleness ledger marks incomplete for a list are never
        asked for that list — a stale seat's answer is wrong in ways no
        shortfall signal can catch (it omits inserts it slept through
        and still holds shares of deletes it missed). Mutates ``merged``
        with slot-deduplicated responses (safe under the parallel
        fan-out: each list is assigned to exactly one pod per round, so
        concurrent legs touch disjoint per-list dicts) and tallies all
        accounting into the returned :class:`_PodFetchOutcome`. Never
        raises on a degraded pod — the caller decides whether further
        replicas can cover.
        """
        k = self._scheme.k
        coordinator = self._coordinator
        outcome = _PodFetchOutcome()
        # The coordinator's injected clock times the leg: breakers,
        # hedge-delay p95s, and this latency sample must share one
        # source or a fake clock in tests would move them apart. Span
        # timing stays on perf_counter — spans compare against other
        # spans, not against the EWMA.
        started = coordinator.clock()
        span_start = time.perf_counter()
        untrusted = {
            pl_id: coordinator.incomplete_seats(pod.name, pl_id)
            for pl_id in need
        }
        want = max(k, min(num_servers, len(pod.slots)))
        successes = 0
        shortfall: set[int] = set()
        for slot in pod.slots:
            if successes >= want:
                if not shortfall:
                    break
                base: list[int] = sorted(shortfall)
                escalating = True
            else:
                base = list(need)
                escalating = False
            request = [
                pl_id
                for pl_id in base
                if slot.server_id not in untrusted[pl_id]
            ]
            if not request:
                continue  # nothing trustworthy to ask this seat for
            try:
                responses = self._lookup_slot(slot, request, outcome)
            except TransportError:
                outcome.failovers += 1
                continue
            outcome.contacted = True
            if escalating:
                outcome.escalations += 1
            else:
                successes += 1
            for response in responses:
                self._merge_response(
                    merged[response.pl_id],
                    counts[response.pl_id],
                    slot.slot_index,
                    response,
                )
            if successes >= want:
                shortfall = {
                    pl_id
                    for pl_id in need
                    if self._share_shortfall(counts[pl_id], k)
                }
        outcome.latency_s = coordinator.clock() - started
        record_span(
            f"fetch:{pod.name}",
            start_s=span_start,
            duration_s=time.perf_counter() - span_start,
            wire_bytes=outcome.response_bytes,
        )
        return outcome

    def _lookup_slot(
        self,
        slot: ServerSlot,
        pl_ids: Sequence[int],
        outcome: _PodFetchOutcome,
    ) -> list[PostingListResponse]:
        """One seat's lookup traffic: one batched message, or per-list.

        Pure protocol dispatch: a :class:`FetchListsRequest` per chunk
        to the seat's endpoint, whatever the transport backend. A dead
        seat raises :class:`TransportError` from the far side's service
        — the failover ladder treats it exactly like a lost packet.
        """
        if self._batch_lookups:
            chunks = [tuple(pl_ids)]
        else:
            chunks = [(pl_id,) for pl_id in pl_ids]
        responses: list[PostingListResponse] = []
        for chunk in chunks:
            response = self._transport.call(
                src=self.user_id,
                dst=slot.server_id,
                request=FetchListsRequest(token=self._token, pl_ids=chunk),
            )
            outcome.response_bytes += response.wire_bytes(self._share_bytes)
            outcome.lookup_messages += 1
            responses.extend(response.lists)
        return responses
