"""The sharded cluster's query client (cluster front of §5.4.2).

:class:`ClusterSearchClient` speaks the exact :class:`SearchClient`
surface — same :class:`~repro.client.searcher.SearchResult`, same
Algorithm 2 pipeline — but replaces the fetch stage with cluster-aware
routing:

- **batched lookups**: a query's posting lists are grouped by owning pod
  and each contacted server receives *one* lookup message carrying every
  list it owns that the query needs — one round-trip per server per
  query instead of one per term (set ``batch_lookups=False`` to get the
  naive fan-out for comparison benches);
- **replica choice**: with ``replication_factor >= 2`` each list lives
  on several pods holding the *same* slot-aligned shares; the client
  reads from the least-loaded replica with the most *trusted* live
  seats for the list — seats the coordinator's staleness ledger marks
  as having missed writes are never asked about those lists at all
  (a stale seat omits inserts it slept through and still holds shares
  of deletes it missed; neither is detectable from responses);
- **failover ladder**: within a pod, trusted servers are tried in slot
  order — a dead one costs a :class:`TransportError` and the next slot
  takes its place; when an element still comes back with fewer than k
  shares (**share-shortfall escalation** — shares lost in ways the
  ledger cannot see, e.g. disk rot), extra live servers of the pod are
  asked; when the *pod* cannot finish the job, the next replica pod
  takes over the unresolved lists, its slots unioning with what was
  already fetched (slot s shares are identical across replicas, so the
  merge dedups by slot). Only when every replica is exhausted below k
  trusted answered slots does the query degrade loudly;
- **share cache**: reads are fronted by the coordinator's LRU cache
  (invalidated on writes, re-keyed on membership changes); a cache hit
  costs zero messages and zero bytes. Cache keys are pod-agnostic —
  ``(user, group fingerprint, width, pl_id)`` — so an entry fetched
  from one replica serves reads even after that pod dies;
- **parallel fan-out**: each failover round assigns disjoint list sets
  to its pods, so the per-pod fetches run concurrently on a shared
  :class:`~repro.server.transport.ConcurrentDispatcher` and fold back
  in deterministic pod order — byte-identical *results* versus the
  sequential path (``parallel_fanout=False``) always; diagnostics
  counts are identical too whenever replica choice cannot diverge
  (``replication_factor=1``, or tied EWMA buckets). At R >= 2 the
  latency-aware ranking is deliberately wall-clock-sensitive, so the
  two modes may route the same query to different (equally correct)
  replicas.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.client.searcher import SearchClient
from repro.client.snippets import SnippetService
from repro.cluster.coordinator import ClusterCoordinator, Pod, ServerSlot
from repro.core.dictionary import TermDictionary
from repro.core.mapping_table import MappingTable
from repro.core.posting import PostingElementCodec
from repro.errors import ClusterDegradedError, TransportError
from repro.protocol.messages import FetchListsRequest
from repro.protocol.transport import Transport
from repro.server.auth import AuthToken
from repro.server.index_server import PostingListResponse
from repro.server.transport import ConcurrentDispatcher, SimulatedNetwork

#: Shared worker pool for the parallel pod fan-out. Module-level so the
#: threads are reused across every client (and every test) instead of
#: being churned per searcher; single-pod rounds never touch it.
_FANOUT_DISPATCHER = ConcurrentDispatcher(max_workers=8)


@dataclass
class ClusterDiagnostics:
    """Per-query accounting of the cluster fetch stage.

    Attributes:
        pods_contacted: pods that actually received a lookup message.
        lookup_messages: lookup RPCs actually sent (cache hits send none).
        cache_hits: posting lists served entirely from the share cache.
        failovers: servers skipped because they were down.
        escalations: extra fetches issued to cover share shortfalls.
        pod_failovers: lists retried on a further replica pod because
            the preferred pod could not finish them.
    """

    pods_contacted: int = 0
    lookup_messages: int = 0
    cache_hits: int = 0
    failovers: int = 0
    escalations: int = 0
    pod_failovers: int = 0
    parallel_rounds: int = 0


@dataclass
class _PodFetchOutcome:
    """One pod's leg of a fan-out round, tallied thread-locally.

    The parallel fan-out runs one :meth:`ClusterSearchClient
    ._fetch_from_pod` per assigned pod concurrently; each leg records
    its accounting here instead of mutating shared diagnostics, and the
    query thread folds the outcomes back in deterministic pod order
    once the round completes.
    """

    contacted: bool = False
    failovers: int = 0
    escalations: int = 0
    lookup_messages: int = 0
    response_bytes: int = 0
    latency_s: float = 0.0


class ClusterSearchClient(SearchClient):
    """A group member searching the sharded cluster."""

    def __init__(
        self,
        user_id: str,
        token: AuthToken,
        coordinator: ClusterCoordinator,
        mapping_table: MappingTable,
        dictionary: TermDictionary,
        codec: PostingElementCodec | None = None,
        network: SimulatedNetwork | None = None,
        snippet_service: SnippetService | None = None,
        reconstruct_method: str = "lagrange",
        verify_consistency: bool = False,
        use_cache: bool = True,
        batch_lookups: bool = True,
        parallel_fanout: bool = True,
        transport: Transport | None = None,
        dispatcher: ConcurrentDispatcher | None = None,
    ) -> None:
        """Args:
        user_id: the searching principal (network endpoint name too).
        token: enterprise auth ticket.
        coordinator: the cluster control plane (placement, liveness,
            share cache, public Shamir parameters).
        mapping_table: public term -> posting-list resolver.
        dictionary: public term -> term_id registry.
        codec: posting-element unpacker.
        network: optional simulated network for byte accounting.
        snippet_service: optional hosting-peer registry.
        reconstruct_method: "lagrange" (default) or "gaussian".
        verify_consistency: cross-check reconstructions when more than k
            shares arrive (see :class:`SearchClient`).
        use_cache: front lookups with the coordinator's share cache.
        batch_lookups: one lookup message per server per query (True,
            the default) vs one message per posting list per server
            (False — the naive fan-out, kept for benches).
        parallel_fanout: fetch from the pods assigned in one failover
            round concurrently (True, the default) instead of one pod
            at a time. Results are byte-identical either way (outcomes
            merge in deterministic pod order); diagnostics counts
            match as well unless the latency-aware replica ranking —
            wall-clock-fed, hence timing-sensitive at
            ``replication_factor >= 2`` — routes the modes to
            different replicas. False exists for A/B tests and
            debugging.
        transport: where lookup messages go; defaults to the
            coordinator's transport (deployments pass their own — the
            in-process registry or a socket client).
        dispatcher: worker pool for the parallel fan-out; deployments
            pass their own so ``close()`` can reap the threads. Falls
            back to a module-shared pool.
        """
        super().__init__(
            user_id=user_id,
            token=token,
            scheme=coordinator.scheme,
            mapping_table=mapping_table,
            dictionary=dictionary,
            servers=None,
            codec=codec,
            network=network,
            snippet_service=snippet_service,
            reconstruct_method=reconstruct_method,
            verify_consistency=verify_consistency,
            transport=transport or coordinator.transport,
        )
        self._coordinator = coordinator
        self._use_cache = use_cache
        self._batch_lookups = batch_lookups
        self._parallel_fanout = parallel_fanout
        self._dispatcher = dispatcher or _FANOUT_DISPATCHER
        self.last_cluster_diagnostics = ClusterDiagnostics()

    # -- the cluster fetch stage ------------------------------------------------

    def _fetch_lists(
        self, pl_ids: Sequence[int], num_servers: int
    ) -> list[tuple[int, list[PostingListResponse]]]:
        """Route, batch, fail over, escalate; returns (slot_index, responses).

        Slot indices repeat across pods, but replica pods of a list hold
        *identical* slot-aligned shares, so the base class's
        ``(pl_id, element_id)`` share join never mixes incompatible
        shares — slot ``s`` of every pod shares the x-coordinate
        ``scheme.x_of(s)``, and the per-list merge below keeps at most
        one response per slot.
        """
        self.last_cluster_diagnostics = ClusterDiagnostics()
        diag = self.last_cluster_diagnostics
        coordinator = self._coordinator
        # verify_consistency needs fresh shares from > k servers every
        # time — serving a k-share cached entry would silently disable
        # the lying-server cross-check, so the cache steps aside.
        cache = (
            coordinator.cache
            if self._use_cache and not self._verify
            else None
        )
        fingerprint = (
            coordinator.group_fingerprint(self.user_id)
            if cache is not None
            else None
        )
        out: list[tuple[int, list[PostingListResponse]]] = []
        need: list[int] = []
        for pl_id in pl_ids:
            # num_servers is part of the key: a wider request must
            # not be satisfied by a narrower fetch.
            key = (self.user_id, fingerprint, num_servers, pl_id)
            entry = cache.get(key) if cache is not None else None
            if entry is not None:
                diag.cache_hits += 1
                # Cache-hit-aware balancing: the pod whose fetch
                # produced this entry is still absorbing the list's
                # read traffic; tell the coordinator so its replica
                # ranking doesn't mistake it for idle.
                coordinator.note_cache_read(pl_id)
                for slot_index, response in entry:
                    out.append((slot_index, [response]))
            else:
                need.append(pl_id)
        if not need:
            return out
        merged, unresolved = self._fetch_with_failover(
            need, num_servers, diag
        )
        for pl_id in need:
            pairs = sorted(merged[pl_id].items())
            for slot_index, response in pairs:
                out.append((slot_index, [response]))
            # A list with an unresolved share shortfall is served but
            # never cached: the missing shares may reappear when a
            # server recovers, and a cached short entry would hide
            # them until an unrelated write evicted it.
            if cache is not None and pairs and pl_id not in unresolved:
                cache.put(
                    (self.user_id, fingerprint, num_servers, pl_id),
                    pl_id,
                    pairs,
                )
        return out

    def _fetch_with_failover(
        self,
        need: Sequence[int],
        num_servers: int,
        diag: ClusterDiagnostics,
    ) -> tuple[dict[int, dict[int, PostingListResponse]], set[int]]:
        """Fetch every list from its replica chain, best pod first.

        Each round assigns every still-unfinished list to its next
        untried replica pod (preference order from
        :meth:`ClusterCoordinator.read_replicas`), fetches — from all
        assigned pods *concurrently* when more than one pod is involved
        (the pods' list sets are disjoint within a round, so their
        merges touch disjoint state) — and merges slot-deduplicated
        responses in deterministic pod order. A list is finished when
        >= k slots answered for it and no element is short of k shares;
        it degrades loudly only when the whole replica chain is
        exhausted below k answered slots.

        Returns ``(merged, unresolved)`` — per list, one response per
        answering slot; and the lists that still contain an element with
        fewer than k shares after the whole ladder (uncacheable).
        """
        coordinator = self._coordinator
        k = self._scheme.k
        merged: dict[int, dict[int, PostingListResponse]] = {
            pl_id: {} for pl_id in need
        }
        #: pl_id -> element_id -> shares gathered so far (kept
        #: incrementally by _merge_response; shortfall checks are O(1)
        #: per element instead of rescanning every response).
        counts: dict[int, dict[int, int]] = {pl_id: {} for pl_id in need}
        tried: dict[int, set[str]] = {pl_id: set() for pl_id in need}
        contacted: set[str] = set()
        pending = list(need)
        while pending:
            assignment: dict[Pod, list[int]] = {}
            for pl_id in pending:
                pod = next(
                    (
                        p
                        for p in coordinator.read_replicas(pl_id)
                        if p.name not in tried[pl_id]
                    ),
                    None,
                )
                if pod is None:
                    continue  # replica chain exhausted
                if tried[pl_id]:
                    diag.pod_failovers += 1
                tried[pl_id].add(pod.name)
                assignment.setdefault(pod, []).append(pl_id)
            if not assignment:
                break
            # One job per assigned pod. The jobs are independent: each
            # list belongs to exactly one pod this round, so the merges
            # mutate disjoint per-list state, and every job tallies its
            # accounting thread-locally in a _PodFetchOutcome.
            jobs = [
                (pod, assignment[pod])
                for pod in sorted(assignment, key=lambda p: p.index)
            ]
            if self._parallel_fanout and len(jobs) > 1:
                diag.parallel_rounds += 1
                outcomes = self._dispatcher.map_ordered(
                    [
                        (
                            lambda p=pod, ls=lists: self._fetch_from_pod(
                                p, ls, num_servers, merged, counts
                            )
                        )
                        for pod, lists in jobs
                    ]
                )
            else:
                outcomes = [
                    self._fetch_from_pod(
                        pod, lists, num_servers, merged, counts
                    )
                    for pod, lists in jobs
                ]
            # Deterministic merge: outcomes fold in pod-index order no
            # matter which thread finished first.
            for (pod, lists), outcome in zip(jobs, outcomes):
                diag.failovers += outcome.failovers
                diag.escalations += outcome.escalations
                diag.lookup_messages += outcome.lookup_messages
                self.last_diagnostics.response_bytes += (
                    outcome.response_bytes
                )
                if outcome.contacted:
                    contacted.add(pod.name)
                    coordinator.note_pod_read(
                        pod.name,
                        len(lists),
                        latency_s=outcome.latency_s,
                        pl_ids=lists,
                    )
            pending = [
                pl_id
                for pl_id in need
                if self._needs_more(merged[pl_id], counts[pl_id], k)
                and any(
                    pod.name not in tried[pl_id]
                    for pod in coordinator.pods_of(pl_id)
                )
            ]
        diag.pods_contacted = len(contacted)
        for pl_id in need:
            answered = len(merged[pl_id])
            if answered < k:
                raise ClusterDegradedError(
                    f"list {pl_id}: only {answered} of the required "
                    f"k={k} trusted server slots answered across "
                    f"{len(tried[pl_id])} replica pod(s)"
                )
        unresolved = {
            pl_id
            for pl_id in need
            if self._share_shortfall(counts[pl_id], k)
        }
        return merged, unresolved

    @staticmethod
    def _share_shortfall(share_counts: dict[int, int], k: int) -> bool:
        """True when some element of the list has < k shares so far."""
        return bool(share_counts) and min(share_counts.values()) < k

    def _needs_more(
        self,
        slot_map: dict[int, PostingListResponse],
        share_counts: dict[int, int],
        k: int,
    ) -> bool:
        return len(slot_map) < k or self._share_shortfall(share_counts, k)

    @staticmethod
    def _merge_response(
        slot_map: dict[int, PostingListResponse],
        share_counts: dict[int, int],
        slot_index: int,
        response: PostingListResponse,
    ) -> None:
        """Fold one slot's response in, unioning records per element.

        Replica pods hold identical shares per slot, so a record seen
        twice is byte-equal; the union matters when an earlier replica's
        seat answered short (e.g. lost shares) and a later replica's
        same slot fills the gap. ``share_counts`` tracks per-element
        share totals incrementally.
        """
        existing = slot_map.get(slot_index)
        if existing is None:
            slot_map[slot_index] = response
            for record in response.records:
                share_counts[record.element_id] = (
                    share_counts.get(record.element_id, 0) + 1
                )
            return
        known = {record.element_id for record in existing.records}
        extra = [
            record
            for record in response.records
            if record.element_id not in known
        ]
        if extra:
            slot_map[slot_index] = PostingListResponse(
                pl_id=existing.pl_id,
                records=tuple(
                    sorted(
                        (*existing.records, *extra),
                        key=lambda record: record.element_id,
                    )
                ),
            )
            for record in extra:
                share_counts[record.element_id] = (
                    share_counts.get(record.element_id, 0) + 1
                )

    def _fetch_from_pod(
        self,
        pod: Pod,
        need: Sequence[int],
        num_servers: int,
        merged: dict[int, dict[int, PostingListResponse]],
        counts: dict[int, dict[int, int]],
    ) -> _PodFetchOutcome:
        """One pod's leg of the ladder: slot failover, then escalation.

        Seats the staleness ledger marks incomplete for a list are never
        asked for that list — a stale seat's answer is wrong in ways no
        shortfall signal can catch (it omits inserts it slept through
        and still holds shares of deletes it missed). Mutates ``merged``
        with slot-deduplicated responses (safe under the parallel
        fan-out: each list is assigned to exactly one pod per round, so
        concurrent legs touch disjoint per-list dicts) and tallies all
        accounting into the returned :class:`_PodFetchOutcome`. Never
        raises on a degraded pod — the caller decides whether further
        replicas can cover.
        """
        k = self._scheme.k
        coordinator = self._coordinator
        outcome = _PodFetchOutcome()
        started = time.perf_counter()
        untrusted = {
            pl_id: coordinator.incomplete_seats(pod.name, pl_id)
            for pl_id in need
        }
        want = max(k, min(num_servers, len(pod.slots)))
        successes = 0
        shortfall: set[int] = set()
        for slot in pod.slots:
            if successes >= want:
                if not shortfall:
                    break
                base: list[int] = sorted(shortfall)
                escalating = True
            else:
                base = list(need)
                escalating = False
            request = [
                pl_id
                for pl_id in base
                if slot.server_id not in untrusted[pl_id]
            ]
            if not request:
                continue  # nothing trustworthy to ask this seat for
            try:
                responses = self._lookup_slot(slot, request, outcome)
            except TransportError:
                outcome.failovers += 1
                continue
            outcome.contacted = True
            if escalating:
                outcome.escalations += 1
            else:
                successes += 1
            for response in responses:
                self._merge_response(
                    merged[response.pl_id],
                    counts[response.pl_id],
                    slot.slot_index,
                    response,
                )
            if successes >= want:
                shortfall = {
                    pl_id
                    for pl_id in need
                    if self._share_shortfall(counts[pl_id], k)
                }
        outcome.latency_s = time.perf_counter() - started
        return outcome

    def _lookup_slot(
        self,
        slot: ServerSlot,
        pl_ids: Sequence[int],
        outcome: _PodFetchOutcome,
    ) -> list[PostingListResponse]:
        """One seat's lookup traffic: one batched message, or per-list.

        Pure protocol dispatch: a :class:`FetchListsRequest` per chunk
        to the seat's endpoint, whatever the transport backend. A dead
        seat raises :class:`TransportError` from the far side's service
        — the failover ladder treats it exactly like a lost packet.
        """
        if self._batch_lookups:
            chunks = [tuple(pl_ids)]
        else:
            chunks = [(pl_id,) for pl_id in pl_ids]
        responses: list[PostingListResponse] = []
        for chunk in chunks:
            response = self._transport.call(
                src=self.user_id,
                dst=slot.server_id,
                request=FetchListsRequest(token=self._token, pl_ids=chunk),
            )
            outcome.response_bytes += response.wire_bytes(self._share_bytes)
            outcome.lookup_messages += 1
            responses.extend(response.lists)
        return responses
