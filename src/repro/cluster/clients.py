"""The sharded cluster's query client (cluster front of §5.4.2).

:class:`ClusterSearchClient` speaks the exact :class:`SearchClient`
surface — same :class:`~repro.client.searcher.SearchResult`, same
Algorithm 2 pipeline — but replaces the fetch stage with cluster-aware
routing:

- **batched lookups**: a query's posting lists are grouped by owning pod
  and each contacted server receives *one* lookup message carrying every
  list it owns that the query needs — one round-trip per server per
  query instead of one per term (set ``batch_lookups=False`` to get the
  naive fan-out for comparison benches);
- **failover**: servers are tried in slot order; a dead one costs a
  :class:`TransportError` and the next slot takes its place, so any k
  live servers per pod keep every query answerable;
- **share-shortfall escalation**: a server restarted from a stale WAL
  (or one that missed writes while down) may lack elements its peers
  hold; when an element comes back with fewer than k shares, the lists
  involved are refetched from additional live servers until every
  element reconstructs or the pod is exhausted;
- **share cache**: reads are fronted by the coordinator's LRU cache
  (invalidated on writes, re-keyed on membership changes); a cache hit
  costs zero messages and zero bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.client.searcher import SearchClient
from repro.client.snippets import SnippetService
from repro.cluster.coordinator import ClusterCoordinator, Pod, ServerSlot
from repro.core.dictionary import TermDictionary
from repro.core.mapping_table import MappingTable
from repro.core.posting import PostingElementCodec
from repro.errors import ClusterDegradedError, TransportError
from repro.server.auth import AuthToken
from repro.server.index_server import PostingListResponse
from repro.server.transport import SimulatedNetwork


@dataclass
class ClusterDiagnostics:
    """Per-query accounting of the cluster fetch stage.

    Attributes:
        pods_contacted: pods owning at least one requested list.
        lookup_messages: lookup RPCs actually sent (cache hits send none).
        cache_hits: posting lists served entirely from the share cache.
        failovers: servers skipped because they were down.
        escalations: extra fetches issued to cover share shortfalls.
    """

    pods_contacted: int = 0
    lookup_messages: int = 0
    cache_hits: int = 0
    failovers: int = 0
    escalations: int = 0


class ClusterSearchClient(SearchClient):
    """A group member searching the sharded cluster."""

    def __init__(
        self,
        user_id: str,
        token: AuthToken,
        coordinator: ClusterCoordinator,
        mapping_table: MappingTable,
        dictionary: TermDictionary,
        codec: PostingElementCodec | None = None,
        network: SimulatedNetwork | None = None,
        snippet_service: SnippetService | None = None,
        reconstruct_method: str = "lagrange",
        verify_consistency: bool = False,
        use_cache: bool = True,
        batch_lookups: bool = True,
    ) -> None:
        """Args:
        user_id: the searching principal (network endpoint name too).
        token: enterprise auth ticket.
        coordinator: the cluster control plane (placement, liveness,
            share cache, public Shamir parameters).
        mapping_table: public term -> posting-list resolver.
        dictionary: public term -> term_id registry.
        codec: posting-element unpacker.
        network: optional simulated network for byte accounting.
        snippet_service: optional hosting-peer registry.
        reconstruct_method: "lagrange" (default) or "gaussian".
        verify_consistency: cross-check reconstructions when more than k
            shares arrive (see :class:`SearchClient`).
        use_cache: front lookups with the coordinator's share cache.
        batch_lookups: one lookup message per server per query (True,
            the default) vs one message per posting list per server
            (False — the naive fan-out, kept for benches).
        """
        super().__init__(
            user_id=user_id,
            token=token,
            scheme=coordinator.scheme,
            mapping_table=mapping_table,
            dictionary=dictionary,
            servers=None,
            codec=codec,
            network=network,
            snippet_service=snippet_service,
            reconstruct_method=reconstruct_method,
            verify_consistency=verify_consistency,
        )
        self._coordinator = coordinator
        self._use_cache = use_cache
        self._batch_lookups = batch_lookups
        self.last_cluster_diagnostics = ClusterDiagnostics()

    # -- the cluster fetch stage ------------------------------------------------

    def _fetch_lists(
        self, pl_ids: Sequence[int], num_servers: int
    ) -> list[tuple[int, list[PostingListResponse]]]:
        """Route, batch, fail over, escalate; returns (slot_index, responses).

        Slot indices repeat across pods, but each pod owns a disjoint set
        of posting lists, so the base class's ``(pl_id, element_id)``
        share join never mixes pods — and slot ``s`` of every pod shares
        the x-coordinate ``scheme.x_of(s)``.
        """
        self.last_cluster_diagnostics = ClusterDiagnostics()
        diag = self.last_cluster_diagnostics
        coordinator = self._coordinator
        # verify_consistency needs fresh shares from > k servers every
        # time — serving a k-share cached entry would silently disable
        # the lying-server cross-check, so the cache steps aside.
        cache = (
            coordinator.cache
            if self._use_cache and not self._verify
            else None
        )
        fingerprint = (
            coordinator.group_fingerprint(self.user_id)
            if cache is not None
            else None
        )
        out: list[tuple[int, list[PostingListResponse]]] = []
        for pod, pod_pl_ids in coordinator.group_by_pod(pl_ids).items():
            diag.pods_contacted += 1
            need: list[int] = []
            for pl_id in pod_pl_ids:
                # num_servers is part of the key: a wider request must
                # not be satisfied by a narrower fetch.
                key = (self.user_id, fingerprint, num_servers, pl_id)
                entry = cache.get(key) if cache is not None else None
                if entry is not None:
                    diag.cache_hits += 1
                    for slot_index, response in entry:
                        out.append((slot_index, [response]))
                else:
                    need.append(pl_id)
            if not need:
                continue
            fetched, unresolved = self._fetch_from_pod(
                pod, need, num_servers, diag
            )
            for pl_id in need:
                pairs = fetched[pl_id]
                for slot_index, response in pairs:
                    out.append((slot_index, [response]))
                # A list with an unresolved share shortfall is served but
                # never cached: the missing shares may reappear when a
                # server recovers, and a cached short entry would hide
                # them until an unrelated write evicted it.
                if cache is not None and pairs and pl_id not in unresolved:
                    cache.put(
                        (self.user_id, fingerprint, num_servers, pl_id),
                        pl_id,
                        pairs,
                    )
        return out

    def _fetch_from_pod(
        self,
        pod: Pod,
        need: Sequence[int],
        num_servers: int,
        diag: ClusterDiagnostics,
    ) -> tuple[
        dict[int, list[tuple[int, PostingListResponse]]], set[int]
    ]:
        """Fetch ``need`` from one pod with failover and escalation.

        Returns ``(fetched, unresolved)`` — the responses per list, and
        the lists that still contain an element with fewer than k shares
        after exhausting every live server (uncacheable).
        """
        k = self._scheme.k
        want = max(k, min(num_servers, len(pod.slots)))
        fetched: dict[int, list[tuple[int, PostingListResponse]]] = {
            pl_id: [] for pl_id in need
        }
        share_count: dict[tuple[int, int], int] = {}
        successes = 0
        shortfall: set[int] = set()
        for slot in pod.slots:
            if successes >= want:
                if not shortfall:
                    break
                request: list[int] = sorted(shortfall)
                escalating = True
            else:
                request = list(need)
                escalating = False
            try:
                responses = self._lookup_slot(slot, request, diag)
            except TransportError:
                diag.failovers += 1
                continue
            if escalating:
                diag.escalations += 1
            else:
                successes += 1
            for response in responses:
                fetched[response.pl_id].append((slot.slot_index, response))
                for record in response.records:
                    key = (response.pl_id, record.element_id)
                    share_count[key] = share_count.get(key, 0) + 1
            if successes >= want:
                shortfall = {
                    pl_id
                    for (pl_id, _eid), count in share_count.items()
                    if count < k
                }
        if successes < k:
            raise ClusterDegradedError(
                f"pod {pod.name!r}: only {successes} of the required "
                f"k={k} servers answered"
            )
        unresolved = {
            pl_id
            for (pl_id, _eid), count in share_count.items()
            if count < k
        }
        return fetched, unresolved

    def _lookup_slot(
        self,
        slot: ServerSlot,
        pl_ids: Sequence[int],
        diag: ClusterDiagnostics,
    ) -> list[PostingListResponse]:
        """One server's lookup traffic: one batched message, or per-list."""
        server = slot.server
        if self._batch_lookups:
            chunks = [list(pl_ids)]
        else:
            chunks = [[pl_id] for pl_id in pl_ids]
        responses: list[PostingListResponse] = []
        for chunk in chunks:
            if self._network is not None:
                request_bytes = self._token.wire_bytes() + 4 * len(chunk)
                chunk_responses = self._network.call(
                    src=self.user_id,
                    dst=server.server_id,
                    kind="lookup",
                    message=(self._token, chunk),
                    request_bytes=request_bytes,
                    response_bytes_of=lambda rs: sum(
                        r.wire_bytes(server.share_bytes) for r in rs
                    ),
                )
                self.last_diagnostics.response_bytes += sum(
                    r.wire_bytes(server.share_bytes)
                    for r in chunk_responses
                )
            else:
                if not slot.alive:
                    raise TransportError(
                        f"server {server.server_id!r} is down"
                    )
                chunk_responses = server.get_posting_lists(
                    self._token, chunk
                )
            diag.lookup_messages += 1
            responses.extend(chunk_responses)
        return responses
