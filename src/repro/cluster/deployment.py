"""The sharded cluster facade — a multi-pod :class:`ZerberDeployment` (§8).

Where :class:`~repro.core.zerber_index.ZerberDeployment` stands up one
pod of n servers replicating the whole index, :class:`ClusterDeployment`
stands up ``num_pods`` of them and shards the merged posting lists
across pods by consistent hashing. The enterprise plane (auth service,
group table, dictionary, mapping table, snippet registry) stays shared
— there is still one logical Zerber installation, it just no longer fits
on one fleet.

Typical use (see ``examples/cluster_tour.py``)::

    cluster = ClusterDeployment.bootstrap(
        stats.term_probabilities(), num_pods=3, k=3, n=6, num_lists=256,
        replication_factor=2)
    cluster.create_group(1, coordinator="alice")
    cluster.share_document("alice", doc)
    cluster.flush_all()
    cluster.kill_server(pod_index=0, slot_index=2)   # survives n-k per pod
    cluster.kill_pod(1)                              # survives a whole pod
    results = cluster.search("alice", ["budget"], top_k=10)
"""

from __future__ import annotations

import pathlib
import random
import time
from typing import Callable, Mapping, Sequence

from repro.cachetier import (
    CACHE_TIER_ENDPOINT,
    CacheTierService,
    CacheTierStore,
)
from repro.client.batching import BatchPolicy
from repro.client.owner import DocumentOwner
from repro.client.searcher import SearchResult
from repro.client.snippets import SnippetService
from repro.cluster.clients import ClusterSearchClient
from repro.cluster.coordinator import (
    ClusterCoordinator,
    Pod,
    RebalanceStats,
    ServerSlot,
    attach_wal_to_slot,
    slot_service,
)
from repro.core.dictionary import TermDictionary
from repro.core.mapping_table import MappingTable
from repro.core.merging.base import MergingHeuristic
from repro.core.posting import PackingSpec, PostingElementCodec
from repro.core.zerber_index import build_mapping_table
from repro.errors import ClusterError
from repro.observability.metrics import MetricsRegistry
from repro.observability.service import METRICS_ENDPOINT, MetricsService
from repro.protocol.async_transport import (
    AsyncSocketServer,
    AsyncSocketTransport,
)
from repro.protocol.messages import DropListRequest
from repro.protocol.service import SnippetHostService
from repro.protocol.transport import (
    InProcessTransport,
    SocketServer,
    SocketTransport,
    Transport,
)
from repro.secretsharing.field import DEFAULT_PRIME, PrimeField
from repro.storage.engine import ENGINES
from repro.secretsharing.shamir import ShamirScheme
from repro.server.auth import AuthService, AuthToken
from repro.server.groups import GroupDirectory
from repro.server.index_server import IndexServer
from repro.server.transport import (
    ConcurrentDispatcher,
    LinkSpec,
    SimulatedNetwork,
    WLAN_55_MBPS,
)


class ClusterDeployment:
    """A complete sharded Zerber installation: pods, placement, clients."""

    def __init__(
        self,
        mapping_table: MappingTable,
        num_pods: int = 3,
        k: int = 2,
        n: int = 3,
        field: PrimeField | None = None,
        packing: PackingSpec | None = None,
        use_network: bool = True,
        batch_policy: BatchPolicy | None = None,
        cache_entries: int = 4096,
        virtual_nodes: int = 64,
        wal_dir: str | pathlib.Path | None = None,
        replication_factor: int = 1,
        seed: int = 0x2E4B,
        transport: str = "in-process",
        socket_host: str = "127.0.0.1",
        socket_port: int = 0,
        socket_idle_timeout_s: float | None = None,
        fanout_workers: int = 8,
        storage: str = "flat",
        bulk_rebalance: bool = True,
        anti_entropy_interval_s: float | None = None,
        repair_budget: int | None = None,
        admission_max_pending: int | None = None,
        cache_tier: str | None = None,
        cache_tier_entries: int = 4096,
        l1_entries: int = 0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        """Args:
        mapping_table: the public term -> posting-list table.
        num_pods: server fleets to shard the merged lists across.
        k: Shamir reconstruction threshold within each pod.
        n: servers per pod (each pod tolerates n - k failures).
        field: the Z_p field; defaults to the 64-bit+ prime.
        packing: posting-element bit layout.
        use_network: charge all in-process traffic against a
            :class:`SimulatedNetwork` for byte/message accounting (the
            socket backend moves real bytes instead).
        batch_policy: default owner batching policy.
        cache_entries: coordinator share-cache capacity (0 disables).
        virtual_nodes: consistent-hash smoothness for pod placement.
        wal_dir: when given, every server gets a durable seat store
            under this directory and :meth:`restart_server` recovers
            from it.
        replication_factor: pods each merged posting list lives on;
            >= 2 keeps the cluster byte-identical with a whole pod dead
            at the cost of R x storage and write fan-out.
        seed: master seed for all deployment randomness.
        transport: ``"in-process"`` (default), ``"socket"``, or
            ``"async-socket"``. With ``"socket"`` the deployment embeds
            a loopback TCP :class:`SocketServer` (thread per
            connection) and every client (owners, searchers, failover
            fetches) speaks real length-prefixed frames through a
            :class:`SocketTransport`. With ``"async-socket"`` it
            embeds the pipelined :class:`AsyncSocketServer` and a
            single multiplexed :class:`AsyncSocketTransport`
            connection carries every client's correlated frames.
            Search results are byte-identical across all backends; CI
            gates it.
        socket_host / socket_port: the socket backends' listener
            address (port 0 picks a free port; see
            ``self.transport.address``).
        socket_idle_timeout_s: close server-side connections idle for
            this long (both socket backends; None: never).
        fanout_workers: width of this deployment's parallel-fan-out
            worker pool (reaped by :meth:`close`).
        storage: the seat-store engine under ``wal_dir`` —
            ``"flat"`` (one line-per-record ``.wal`` file per seat,
            full-history replay on restart) or ``"segmented"`` (a
            per-seat directory holding a binary segment log, immutable
            snapshots written by a background compactor, and a fsync'd
            manifest; restarts load one snapshot and replay only the
            segment suffix). See :mod:`repro.storage`.
        bulk_rebalance: move rebalanced lists as sealed snapshot
            images (default) instead of record-by-record transfers —
            the False path is the baseline the rebalance benchmark
            measures against.
        anti_entropy_interval_s: when given, a background repair
            thread runs :meth:`repair_sweep` at this cadence (with
            failure backoff) until :meth:`close`; None leaves repair
            to explicit sweeps and owner re-provisioning.
        repair_budget: per-sweep heal cap for the repair thread and
            default for :meth:`repair_sweep` (None = unbounded).
        admission_max_pending: bound on concurrently dispatched
            requests at the embedded socket server; excess requests
            are shed with a retryable
            :class:`~repro.errors.OverloadedError` instead of queueing
            without limit. None (default) admits everything — the
            byte-level equivalence suites depend on an unbounded
            server, so shedding is strictly opt-in.
        cache_tier: when given, the eviction/admission policy name
            (``"lru"`` or ``"tinylfu"``) of an embedded shared L2
            cache-tier service, registered as the ordinary protocol
            endpoint ``"cache-tier"`` — so it is reachable over every
            transport backend — and wired into the coordinator's
            write-path invalidation fan-out. None (default) runs
            without a cache tier.
        cache_tier_entries: L2 cache-tier capacity in entries.
        l1_entries: default searcher-local L1 capacity (reconstructed
            postings); 0 (default) disables the L1. Per-searcher
            overrides via ``searcher(..., l1_entries=...)``.
        clock: the monotonic clock behind every coordinator latency
            surface (fetch timing, EWMA/p95, breakers, hedge delays).
            Inject a fake for deterministic latency tests — no sleeps.
        """
        if num_pods < 1:
            raise ClusterError(f"need at least one pod, got {num_pods}")
        self._rng = random.Random(seed)
        self.field = field or PrimeField(DEFAULT_PRIME)
        self.scheme = ShamirScheme(k=k, n=n, field=self.field, rng=self._rng)
        self.mapping_table = mapping_table
        self.dictionary = TermDictionary()
        self.packing = packing or PackingSpec()
        self.codec = PostingElementCodec(self.packing)
        self.auth = AuthService()
        self.groups = GroupDirectory()
        self._batch_policy = batch_policy or BatchPolicy()
        share_bytes = (self.field.p.bit_length() + 7) // 8
        self._share_bytes = share_bytes
        self._wal_dir = (
            pathlib.Path(wal_dir) if wal_dir is not None else None
        )
        if storage not in ENGINES:
            raise ClusterError(
                f"unknown storage engine {storage!r}; "
                f"expected one of {ENGINES}"
            )
        self.storage = storage
        pods: list[Pod] = [
            self._build_pod(pod_index, f"pod{pod_index}", n)
            for pod_index in range(num_pods)
        ]
        self._next_pod_ordinal = num_pods
        self.network: SimulatedNetwork | None = None
        if use_network:
            self.network = SimulatedNetwork(
                default_link=LinkSpec(bandwidth_bps=WLAN_55_MBPS)
            )
        self.registry = InProcessTransport(
            network=self.network, share_bytes=share_bytes
        )
        for pod in pods:
            for slot in pod.slots:
                self.registry.register(slot.server_id, slot_service(slot))
        #: The deployment-wide observability registry. Every subsystem
        #: publishes into this one object — coordinator read/write
        #: paths, socket-server frame counters, cache tiers, breakers,
        #: admission, repair — and the ``metrics`` endpoint serves it
        #: over every transport backend.
        self.metrics = MetricsRegistry()
        self.coordinator = ClusterCoordinator(
            scheme=self.scheme,
            pods=pods,
            auth=self.auth,
            groups=self.groups,
            share_bytes=share_bytes,
            cache_entries=cache_entries,
            virtual_nodes=virtual_nodes,
            replication_factor=replication_factor,
            transport=self.registry,
            bulk_rebalance=bulk_rebalance,
            repair_budget=repair_budget,
            clock=clock,
            metrics=self.metrics,
        )
        self.coordinator.register_collectors(
            self.metrics, mapping_table.num_lists
        )
        self.metrics.add_collector(self._collect_deployment_metrics)
        self.registry.register(
            METRICS_ENDPOINT, MetricsService(self.metrics)
        )
        self.cache_tier_store: CacheTierStore | None = None
        if cache_tier is not None:
            # The L2 tier is just another endpoint on the shared
            # registry, so every transport backend reaches it through
            # the same dispatch path as the index servers.
            self.cache_tier_store = CacheTierStore(
                capacity=cache_tier_entries, policy=cache_tier
            )
            # The tier holds the same enterprise trust anchors an index
            # server holds: it authenticates every get/put and checks
            # the key's fingerprint against the live group table.
            self.registry.register(
                CACHE_TIER_ENDPOINT,
                CacheTierService(
                    self.cache_tier_store,
                    auth=self.auth,
                    groups=self.groups,
                ),
            )
            self.coordinator.attach_cache_tier(CACHE_TIER_ENDPOINT)
        self._l1_entries = l1_entries
        if anti_entropy_interval_s is not None:
            self.coordinator.start_repair_thread(
                interval_s=anti_entropy_interval_s, budget=repair_budget
            )
        if self._wal_dir is not None:
            for pod in pods:
                for slot in pod.slots:
                    self.coordinator.attach_wal(
                        pod.index,
                        slot.slot_index,
                        self._seat_store_path(slot.server_id),
                        engine=self.storage,
                    )
        self._socket_server: SocketServer | AsyncSocketServer | None = (
            None
        )
        self.transport: Transport = self.registry
        if transport == "socket":
            self._socket_server = SocketServer(
                self.registry,
                host=socket_host,
                port=socket_port,
                idle_timeout_s=socket_idle_timeout_s,
                max_pending=admission_max_pending,
                metrics=self.metrics,
            )
            self.transport = SocketTransport(
                self._socket_server.address, share_bytes=share_bytes
            )
        elif transport == "async-socket":
            self._socket_server = AsyncSocketServer(
                self.registry,
                host=socket_host,
                port=socket_port,
                idle_timeout_s=socket_idle_timeout_s,
                max_pending=admission_max_pending,
                metrics=self.metrics,
            )
            self.transport = AsyncSocketTransport(
                self._socket_server.address, share_bytes=share_bytes
            )
        elif transport != "in-process":
            raise ClusterError(
                f"unknown transport {transport!r}; expected "
                "'in-process', 'socket', or 'async-socket'"
            )
        #: Per-deployment fan-out pool: closing the deployment reaps its
        #: worker threads (the dispatcher-leak regression of this PR).
        self.dispatcher = ConcurrentDispatcher(
            max_workers=fanout_workers,
            thread_name_prefix=f"zerber-fanout-{id(self):x}",
        )
        self._closed = False
        self.snippets = SnippetService(self.groups)
        self._tokens: dict[str, AuthToken] = {}
        self._owners: dict[str, DocumentOwner] = {}

    def _collect_deployment_metrics(self, _registry: MetricsRegistry) -> None:
        """Registry collector for the deployment-owned surfaces.

        Runs at dump time (``metrics.samples()``), setting gauges from
        the live admission controller, cache tiers, and seat stores —
        the same sources :meth:`status_snapshot` reads, so the two
        surfaces can never disagree.
        """
        metrics = self.metrics
        server = self._socket_server
        if server is not None and server.admission is not None:
            for key, value in server.admission.stats().items():
                metrics.gauge(f"zerber_admission_{key}").set(
                    float(value if value is not None else 0)
                )
        if self.cache_tier_store is not None:
            snap = self.cache_tier_store.stats_snapshot()
            metrics.gauge(
                "zerber_cache_tier_info", policy=snap.pop("policy")
            ).set(1.0)
            for key, value in snap.items():
                metrics.gauge(f"zerber_cache_tier_{key}").set(value)
        # Searcher-local L1s are per-client; the fleet view sums the
        # live ones (the coordinator's weak registry of caches that
        # subscribed for invalidation).
        l1_totals: dict[str, int] = {}
        l1_count = 0
        for l1 in list(self.coordinator._l1_caches):
            l1_count += 1
            for key, value in l1.stats_snapshot().items():
                l1_totals[key] = l1_totals.get(key, 0) + value
        metrics.gauge("zerber_l1_caches").set(l1_count)
        for key, value in l1_totals.items():
            metrics.gauge(f"zerber_l1_{key}").set(value)
        # Seat-store / compactor state (segmented engine only: the flat
        # WAL has no background machinery worth a gauge).
        for pod in self.coordinator.pods:
            for slot in pod.slots:
                log = slot.log
                if log is None or not hasattr(log, "status"):
                    continue
                status = log.status()
                for key in ("records_appended", "disk_bytes", "segments"):
                    if key in status:
                        metrics.gauge(
                            f"zerber_storage_{key}",
                            server=slot.server_id,
                        ).set(status[key])
                if "compacting" in status:
                    metrics.gauge(
                        "zerber_storage_compacting", server=slot.server_id
                    ).set(1.0 if status["compacting"] else 0.0)

    def _seat_store_path(self, server_id: str) -> pathlib.Path:
        """Where one seat's durable store lives under ``wal_dir`` — a
        ``.wal`` file for the flat engine, a directory for segmented."""
        assert self._wal_dir is not None
        if self.storage == "segmented":
            return self._wal_dir / server_id
        return self._wal_dir / f"{server_id}.wal"

    def _build_pod(self, pod_index: int, name: str, n: int) -> Pod:
        """One fleet of n slot-aligned servers (shared scheme/auth/groups)."""
        slots = [
            ServerSlot(
                pod_index=pod_index,
                slot_index=slot_index,
                server=IndexServer(
                    server_id=f"{name}-server-{slot_index}",
                    x_coordinate=self.scheme.x_of(slot_index),
                    auth=self.auth,
                    groups=self.groups,
                    share_bytes=self._share_bytes,
                ),
            )
            for slot_index in range(n)
        ]
        return Pod(index=pod_index, name=name, slots=slots)

    # -- construction from corpus statistics --------------------------------------

    @classmethod
    def bootstrap(
        cls,
        term_probabilities: Mapping[str, float],
        heuristic: MergingHeuristic | str = "dfm",
        num_lists: int | None = None,
        target_r: float | None = None,
        rare_cutoff: float = 0.0,
        **kwargs,
    ) -> "ClusterDeployment":
        """Build a cluster by running a §6 merging heuristic first.

        Same contract as :meth:`ZerberDeployment.bootstrap`; extra
        ``**kwargs`` (num_pods, k, n, wal_dir, ...) reach the constructor.
        """
        table, merge = build_mapping_table(
            term_probabilities,
            heuristic=heuristic,
            num_lists=num_lists,
            target_r=target_r,
            rare_cutoff=rare_cutoff,
        )
        deployment = cls(mapping_table=table, **kwargs)
        deployment.merge_result = merge
        return deployment

    # -- principals ---------------------------------------------------------------

    def enroll_user(self, user_id: str) -> AuthToken:
        """Provision a user with the enterprise and cache their ticket."""
        if user_id in self._tokens:
            return self._tokens[user_id]
        credential = self.auth.register_user(user_id)
        token = self.auth.issue_token(user_id, credential)
        self._tokens[user_id] = token
        return token

    def create_group(self, group_id: int, coordinator: str) -> None:
        """Create a collaboration group; enrolls the coordinator if needed."""
        self.enroll_user(coordinator)
        self.groups.create_group(group_id, coordinator)

    def add_member(
        self, group_id: int, user_id: str, actor: str | None = None
    ) -> None:
        self.enroll_user(user_id)
        self.groups.add_member(group_id, user_id, actor=actor)

    def remove_member(
        self, group_id: int, user_id: str, actor: str | None = None
    ) -> None:
        self.groups.remove_member(group_id, user_id, actor=actor)

    # -- clients ---------------------------------------------------------------------

    def owner(
        self, owner_id: str, batch_policy: BatchPolicy | None = None
    ) -> DocumentOwner:
        """The (cached) owner client, routing writes through the cluster."""
        if owner_id not in self._owners:
            token = self.enroll_user(owner_id)
            self._owners[owner_id] = DocumentOwner(
                owner_id=owner_id,
                token=token,
                scheme=self.scheme,
                mapping_table=self.mapping_table,
                dictionary=self.dictionary,
                servers=None,
                codec=self.codec,
                network=self.network,
                batch_policy=batch_policy or self._batch_policy,
                rng=random.Random(self._rng.getrandbits(64)),
                router=self.coordinator,
                transport=self.transport,
            )
        return self._owners[owner_id]

    def searcher(self, user_id: str, **kwargs) -> ClusterSearchClient:
        """A fresh cluster search client for a principal."""
        token = self.enroll_user(user_id)
        kwargs.setdefault("transport", self.transport)
        kwargs.setdefault("dispatcher", self.dispatcher)
        if self.cache_tier_store is not None:
            kwargs.setdefault("cache_tier", CACHE_TIER_ENDPOINT)
        kwargs.setdefault("l1_entries", self._l1_entries)
        return ClusterSearchClient(
            user_id=user_id,
            token=token,
            coordinator=self.coordinator,
            mapping_table=self.mapping_table,
            dictionary=self.dictionary,
            codec=self.codec,
            network=self.network,
            snippet_service=self.snippets,
            **kwargs,
        )

    # -- convenience -------------------------------------------------------------------

    def share_document(self, owner_id: str, document) -> int:
        """Share one document and host it for snippet requests."""
        owner = self.owner(owner_id)
        count = owner.share_document(document)
        self.snippets.host_document(document)
        if not self.registry.has_endpoint(document.host):
            self.registry.register(
                document.host, SnippetHostService(self.snippets)
            )
        return count

    def search(
        self, user_id: str, terms: Sequence[str], top_k: int = 10, **kwargs
    ) -> list[SearchResult]:
        """One-shot search for a principal."""
        return self.searcher(user_id, **kwargs).search(terms, top_k=top_k)

    def flush_all(self) -> int:
        """Flush every owner's pending batches (test/bench convenience)."""
        return sum(owner.flush_updates() for owner in self._owners.values())

    # -- operations --------------------------------------------------------------------

    def kill_server(self, pod_index: int, slot_index: int) -> str:
        """Take one server down (failure drill); returns its id."""
        return self.coordinator.kill_server(pod_index, slot_index)

    def restart_server(self, pod_index: int, slot_index: int) -> IndexServer:
        """Bring a dead server back (recovering from its WAL if it has one)."""
        return self.coordinator.restart_server(pod_index, slot_index)

    def kill_pod(self, pod_index: int) -> list[str]:
        """Take an entire pod down; returns the downed server ids.

        With ``replication_factor >= 2`` every list the pod owned stays
        fully readable from its surviving replicas.
        """
        return self.coordinator.kill_pod(pod_index)

    def restart_pod(self, pod_index: int) -> list[IndexServer]:
        """Bring a whole pod back (per-seat WAL recovery)."""
        return self.coordinator.restart_pod(pod_index)

    def reprovision_dropped_writes(self) -> int:
        """Every owner replays the writes dead seats missed (post-restart).

        Returns the number of operations re-delivered; afterwards
        ``coordinator.outstanding_write_routes`` is 0 when every seat
        with a ledger entry is back up.
        """
        return sum(
            owner.reprovision_dropped_writes()
            for owner in self._owners.values()
        )

    def repair_sweep(self, budget: int | None = None):
        """One anti-entropy pass over the staleness ledger (see
        :meth:`ClusterCoordinator.repair_sweep`). Heals stale seats
        from trusted same-slot replicas without involving any owner."""
        return self.coordinator.repair_sweep(budget)

    # -- ring membership --------------------------------------------------------

    def add_pod(self, name: str | None = None) -> RebalanceStats:
        """Join a fresh pod to the ring and rebalance onto it.

        Only the lists whose replica set changed move (slot-aligned
        share transfers from surviving owners); returns the movement
        stats. The new pod gets WALs/network endpoints matching the
        deployment's configuration.
        """
        name = name or f"pod{self._next_pod_ordinal}"
        pod = self._build_pod(len(self.pods), name, self.scheme.n)
        # WAL and transport wiring must precede the join so migrated
        # records are logged and the seats are reachable immediately.
        if self._wal_dir is not None:
            for slot in pod.slots:
                attach_wal_to_slot(
                    slot,
                    self._seat_store_path(slot.server_id),
                    engine=self.storage,
                )
        for slot in pod.slots:
            self.registry.register(slot.server_id, slot_service(slot))
        stats = self.coordinator.add_pod(
            pod, self.mapping_table.num_lists
        )
        self._next_pod_ordinal += 1
        return stats

    def retire_pod(self, pod_index: int) -> RebalanceStats:
        """Drain one pod off the ring (graceful leave) with rebalancing.

        After the coordinator re-homes its lists, the pod is fully
        decommissioned: seat stores closed *and deleted* — the flat
        engine's ``.wal`` file and the segmented engine's entire
        segment/snapshot directory alike — network endpoints released
        (so the name can be reused), and its share stores wiped — a
        drained pod must not keep its index fraction around, on disk
        any more than in memory. The store delete closes the
        durability story: the seats' lists now live (and are logged) on
        their new owners, so a retired seat's store is an orphan that
        would otherwise accumulate forever — and hand a future
        same-named seat a stale state to replay.
        """
        pods = self.coordinator.pods
        pod = pods[pod_index] if 0 <= pod_index < len(pods) else None
        stats = self.coordinator.retire_pod(
            pod_index, self.mapping_table.num_lists
        )
        assert pod is not None  # coordinator validated the index
        for slot in pod.slots:
            # Unhook persistence first: the wipe below must not log into
            # a store that is about to be destroyed (and a dead seat's
            # store handle is already closed).
            slot.server.detach_store()
            if slot.log is not None:
                slot.log.destroy()
                slot.log = None
                slot.wal_path = None
            elif slot.wal_path is not None:  # pragma: no cover - safety
                slot.wal_path.unlink(missing_ok=True)
                slot.wal_path = None
            # Wipe the drained seat's store — through the same admin
            # messages replication uses while the seat still serves; a
            # dead seat's store is wiped locally (its box is being
            # decommissioned either way) — then release its endpoint.
            if slot.alive and self.registry.has_endpoint(slot.server_id):
                for pl_id in range(self.mapping_table.num_lists):
                    self.registry.call(
                        "coordinator",
                        slot.server_id,
                        DropListRequest(pl_id=pl_id, count_only=True),
                    )
            else:
                for pl_id in range(self.mapping_table.num_lists):
                    slot.server.drop_posting_list(pl_id)
            if self.registry.has_endpoint(slot.server_id):
                self.registry.unregister(slot.server_id)
        return stats

    # -- lifecycle ----------------------------------------------------------------------

    def close(self) -> None:
        """Shut the whole deployment down (idempotent).

        Reaps the parallel-fan-out worker threads (the dispatcher-leak
        fix of this PR), closes the client transport and the embedded
        socket server when ``transport="socket"``, and closes every
        seat's WAL handle — after ``close()`` returns, no thread, TCP
        socket, or file handle of this deployment outlives it.
        """
        if self._closed:
            return
        self._closed = True
        self.coordinator.stop_repair_thread()
        self.dispatcher.shutdown()
        if self.transport is not self.registry:
            self.transport.close()
        if self._socket_server is not None:
            self._socket_server.close()
        self.registry.close()
        for pod in self.coordinator.pods:
            for slot in pod.slots:
                if slot.log is not None:
                    slot.log.close()

    def __enter__(self) -> "ClusterDeployment":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- observability ------------------------------------------------------------------

    @property
    def socket_server(self) -> SocketServer | AsyncSocketServer | None:
        """The embedded socket server (None for in-process transport)."""
        return self._socket_server

    def status_snapshot(self) -> dict:
        """The coordinator's cluster-status snapshot (``repro cluster
        status`` renders this), plus this deployment's server-side
        admission ledger when a socket backend is embedded."""
        snapshot = self.coordinator.status_snapshot(
            self.mapping_table.num_lists
        )
        server = self._socket_server
        if server is not None and server.admission is not None:
            snapshot["admission"] = server.admission.stats()
        if self.cache_tier_store is not None:
            snapshot["cache_tier"] = self.cache_tier_store.stats_snapshot()
        return snapshot

    # -- fleet statistics ---------------------------------------------------------------

    @property
    def pods(self) -> list[Pod]:
        return self.coordinator.pods

    def total_elements(self) -> int:
        """Posting elements stored across all live servers."""
        return self.coordinator.total_elements()

    def storage_bytes(self) -> int:
        """Total wire-encoded storage across the cluster."""
        return self.coordinator.storage_bytes()
