"""Synthetic corpus generation calibrated to the paper's datasets (§7.4).

Two levels of fidelity are provided:

- :func:`generate_term_statistics` produces per-term document and query
  frequency vectors *without* materializing documents. All the merging /
  workload experiments (Table 1, Figs. 6–12) consume only these statistics,
  which is what lets us run them at the paper's ODP scale (987,700 terms)
  in pure Python.
- :func:`generate_corpus` materializes actual :class:`~repro.corpus.document.Document`
  objects with group structure and raw text, for the end-to-end index /
  query / attack experiments.

Presets:
- :func:`odp_like_statistics` — the ODP 2005 crawl (§7.4.2): 237,000
  documents, 987,700 distinct terms, 100 topic groups.
- :func:`studip_like_statistics` — the mid-semester Stud IP snapshot
  (§7.4.1): 8,500 documents, 570,000 terms.

Both accept a ``scale`` knob so the default test/bench runs stay fast while
the full paper scale remains one argument away.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.corpus.document import Corpus, Document
from repro.corpus.zipf import ZipfSampler, expected_document_frequencies
from repro.errors import CorpusError

#: Sizes reported in §7.4 for the two datasets.
ODP_DOCUMENTS = 237_000
ODP_VOCABULARY = 987_700
ODP_GROUPS = 100
STUDIP_DOCUMENTS = 8_500
STUDIP_VOCABULARY = 570_000


def _term_name(rank: int) -> str:
    """Stable, sortable synthetic term for frequency rank ``rank`` (0 = most frequent)."""
    return f"term{rank:07d}"


@dataclass(frozen=True)
class TermStatistics:
    """Per-term corpus statistics: everything §6/§7's formulas need.

    Attributes:
        document_frequencies: term -> n_d(t), number of documents containing
            the term (the length of its unmerged posting list).
        num_documents: corpus size the frequencies were drawn against.
    """

    document_frequencies: dict[str, int]
    num_documents: int

    def __post_init__(self) -> None:
        if self.num_documents <= 0:
            raise CorpusError("num_documents must be positive")
        if not self.document_frequencies:
            raise CorpusError("empty vocabulary")
        bad = [t for t, df in self.document_frequencies.items() if df <= 0]
        if bad:
            raise CorpusError(f"non-positive document frequency for {bad[:3]}")

    @property
    def vocabulary_size(self) -> int:
        return len(self.document_frequencies)

    @property
    def total_postings(self) -> int:
        """Total posting elements = sum of document frequencies."""
        return sum(self.document_frequencies.values())

    def term_probabilities(self) -> dict[str, float]:
        """Formula (2): normalized document frequencies ``p_t``."""
        total = self.total_postings
        return {
            t: df / total for t, df in self.document_frequencies.items()
        }

    def terms_by_frequency(self) -> list[str]:
        """Vocabulary sorted by descending document frequency (stable)."""
        return sorted(
            self.document_frequencies,
            key=lambda t: (-self.document_frequencies[t], t),
        )


def generate_term_statistics(
    num_documents: int,
    vocabulary_size: int,
    zipf_exponent: float = 1.0,
    terms_per_document: int = 100,
) -> TermStatistics:
    """Zipf-shaped per-term document frequencies (no document materialization).

    The shape matches Fig. 7: a Zipfian head a few percent of terms wide and
    a long tail of document frequency 1.
    """
    frequencies = expected_document_frequencies(
        num_documents, vocabulary_size, zipf_exponent, terms_per_document
    )
    return TermStatistics(
        document_frequencies={
            _term_name(rank): df for rank, df in enumerate(frequencies)
        },
        num_documents=num_documents,
    )


def odp_like_statistics(
    scale: float = 0.02,
    zipf_exponent: float = 1.0,
    terms_per_document: int = 25,
) -> TermStatistics:
    """ODP-like statistics (§7.4.2), scaled.

    ``scale=1.0`` reproduces the full 237k-document / 987.7k-term corpus;
    the default 0.02 keeps test runs below a second while preserving the
    Zipfian shape (both axes scale linearly).

    ``terms_per_document`` is calibrated so the synthetic corpus matches
    the real crawl's *average document frequency* (≈ 6 postings per term:
    987.7k terms over 237k web pages means a hapax-heavy tail). Fig. 12's
    minimum-list-size structure depends on this ratio.
    """
    if not 0 < scale <= 1.0:
        raise CorpusError(f"scale must be in (0, 1], got {scale}")
    return generate_term_statistics(
        num_documents=max(100, int(ODP_DOCUMENTS * scale)),
        vocabulary_size=max(500, int(ODP_VOCABULARY * scale)),
        zipf_exponent=zipf_exponent,
        terms_per_document=terms_per_document,
    )


def studip_like_statistics(
    scale: float = 0.1,
    zipf_exponent: float = 1.0,
    terms_per_document: int = 120,
) -> TermStatistics:
    """Stud IP-like statistics (§7.4.1: 8,500 documents, 570,000 terms), scaled.

    Course materials are longer than web pages, but with 570k distinct
    terms over only 8,500 documents the tail is still hapax-dominated;
    ``terms_per_document`` is calibrated accordingly.
    """
    if not 0 < scale <= 1.0:
        raise CorpusError(f"scale must be in (0, 1], got {scale}")
    return generate_term_statistics(
        num_documents=max(50, int(STUDIP_DOCUMENTS * scale)),
        vocabulary_size=max(300, int(STUDIP_VOCABULARY * scale)),
        zipf_exponent=zipf_exponent,
        terms_per_document=terms_per_document,
    )


@dataclass
class SyntheticCorpusConfig:
    """Configuration for a fully materialized synthetic corpus.

    Attributes:
        num_documents: documents to generate.
        vocabulary_size: distinct terms available for sampling.
        num_groups: collaboration groups; documents are assigned uniformly
            (ODP: "we used the set of documents on one topic as the set of
            documents of one group").
        num_hosts: distinct hosting peers; documents are spread round-robin.
        mean_document_length: tokens per document (geometric-ish spread).
        zipf_exponent: token-draw skew.
        topic_concentration: fraction of each document's tokens drawn from
            its group's private topic slice of the vocabulary rather than
            the global Zipf. Gives groups distinguishable vocabulary the
            way ODP topics do, which the attack experiments rely on.
        seed: generator seed (corpora are fully deterministic given it).
    """

    num_documents: int = 200
    vocabulary_size: int = 2_000
    num_groups: int = 10
    num_hosts: int = 5
    mean_document_length: int = 120
    zipf_exponent: float = 1.0
    topic_concentration: float = 0.3
    seed: int = 0xC0FFEE

    def __post_init__(self) -> None:
        if self.num_documents <= 0 or self.vocabulary_size <= 0:
            raise CorpusError("corpus dimensions must be positive")
        if self.num_groups <= 0 or self.num_hosts <= 0:
            raise CorpusError("need at least one group and one host")
        if not 0.0 <= self.topic_concentration <= 1.0:
            raise CorpusError("topic_concentration must be in [0, 1]")
        if self.mean_document_length < 2:
            raise CorpusError("documents need at least a couple of tokens")


def generate_corpus(config: SyntheticCorpusConfig) -> Corpus:
    """Materialize a deterministic synthetic corpus per ``config``.

    Documents draw ``(1 - topic_concentration)`` of their tokens from the
    global Zipfian vocabulary and the rest from a per-group topic slice, so
    that group collections have the distinct flavor of ODP topics. Raw text
    is the space-joined token stream — enough for snippet extraction.
    """
    rng = random.Random(config.seed)
    sampler = ZipfSampler(config.vocabulary_size, config.zipf_exponent)
    # Carve a private slice of the tail vocabulary per group for topic terms.
    slice_width = max(1, config.vocabulary_size // (config.num_groups * 2))
    tail_start = config.vocabulary_size // 2
    documents = []
    for doc_id in range(config.num_documents):
        group_id = doc_id % config.num_groups
        host = f"host{doc_id % config.num_hosts:03d}"
        length = max(
            2, int(rng.gauss(config.mean_document_length,
                             config.mean_document_length / 4))
        )
        topic_lo = tail_start + (group_id * slice_width) % max(
            1, config.vocabulary_size - tail_start - slice_width
        )
        tokens: list[str] = []
        for _ in range(length):
            if rng.random() < config.topic_concentration:
                rank = topic_lo + rng.randrange(slice_width)
            else:
                rank = sampler.sample(rng)
            tokens.append(_term_name(min(rank, config.vocabulary_size - 1)))
        counts: dict[str, int] = {}
        for token in tokens:
            counts[token] = counts.get(token, 0) + 1
        documents.append(
            Document(
                doc_id=doc_id,
                host=host,
                group_id=group_id,
                term_counts=counts,
                length=length,
                text=" ".join(tokens),
            )
        )
    return Corpus(documents)
