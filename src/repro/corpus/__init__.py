"""Corpora, query logs and group-structure generators (paper §7.4).

The paper evaluates Zerber on three real-world artifacts we cannot ship:
the Stud IP LMS collections of four universities (§7.4.1, Fig. 5), a 2005
Open Directory Project crawl (§7.4.2: 237,000 documents, 987,700 distinct
terms, 100 topic groups), and a web search-engine query log (§7.4.3: 7M
queries, 135,000 distinct query terms, 2.45 terms per query on average).

Every experiment in §7 consumes only *distributions* derived from those
artifacts — per-term document frequencies, per-term query frequencies, and
group-membership marginals — so this package provides generative models
whose outputs match the published shapes (Zipfian document frequency,
rank-correlated-with-noise query frequency, the Fig. 5 group profiles),
plus a fully materialized document generator for end-to-end index tests.
See DESIGN.md §2 for the substitution rationale.
"""

from repro.corpus.document import Document, Corpus
from repro.corpus.zipf import ZipfSampler, zipf_weights
from repro.corpus.synthetic import (
    SyntheticCorpusConfig,
    TermStatistics,
    generate_corpus,
    generate_term_statistics,
    odp_like_statistics,
    studip_like_statistics,
)
from repro.corpus.querylog import QueryLog, QueryLogConfig, generate_query_log
from repro.corpus.studip import StudIPConfig, StudIPInstallation, generate_installation

__all__ = [
    "Document",
    "Corpus",
    "ZipfSampler",
    "zipf_weights",
    "SyntheticCorpusConfig",
    "TermStatistics",
    "generate_corpus",
    "generate_term_statistics",
    "odp_like_statistics",
    "studip_like_statistics",
    "QueryLog",
    "QueryLogConfig",
    "generate_query_log",
    "StudIPConfig",
    "StudIPInstallation",
    "generate_installation",
]
