"""Stud IP installation model (paper §7.4.1, Figure 5).

The paper profiles the Stud IP learning-management installations of four
universities: "the installation at 'University 1' has over 3,300 courses and
6,000 registered students. Most users belong to at most 20 groups and can
access fewer than 200 documents. The amount of material stored for each
course increases uniformly during the semester."

We model an installation generatively: courses (= collaboration groups)
with heavy-tailed enrollment, users joining a bounded number of courses,
and per-course uploads accruing uniformly across semester weeks. The four
Figure 5 marginals are exposed as methods so the Fig. 5 bench can print
exactly the profile the paper plots:

- (a) documents per group,
- (b) document uploads over time (cumulative),
- (c) users per group,
- (d) documents accessible per user.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass

from repro.errors import CorpusError


@dataclass
class StudIPConfig:
    """Installation-scale knobs, defaulting to the "University 1" figures.

    Attributes:
        num_courses: course/group count (paper: "over 3,300 courses").
        num_users: registered students (paper: "6,000 registered students").
        semester_weeks: weeks across which uploads accrue uniformly.
        max_groups_per_user: enrollment cap (paper: "most users belong to at
            most 20 groups").
        mean_documents_per_course: average course material volume, sized so
            the snapshot lands near the paper's 8,500-document corpus when
            scaled.
        seed: rng seed; installations are deterministic given it.
    """

    num_courses: int = 330
    num_users: int = 600
    semester_weeks: int = 15
    max_groups_per_user: int = 20
    mean_documents_per_course: float = 26.0
    seed: int = 0x57CD

    def __post_init__(self) -> None:
        if min(self.num_courses, self.num_users, self.semester_weeks) <= 0:
            raise CorpusError("installation dimensions must be positive")
        if self.max_groups_per_user < 1:
            raise CorpusError("users must be allowed at least one group")
        if self.mean_documents_per_course <= 0:
            raise CorpusError("courses need a positive document volume")


class StudIPInstallation:
    """A generated installation: groups, memberships and upload history."""

    def __init__(
        self,
        config: StudIPConfig,
        memberships: dict[int, list[int]],
        uploads: list[tuple[int, int, int]],
    ) -> None:
        """Args:
        config: the generating configuration.
        memberships: user_id -> sorted list of course/group ids.
        uploads: (week, course_id, doc_id) triples, week ascending.
        """
        self.config = config
        self._memberships = memberships
        self._uploads = uploads
        self._docs_per_course: dict[int, int] = defaultdict(int)
        for _, course_id, _ in uploads:
            self._docs_per_course[course_id] += 1

    # -- Figure 5 marginals -------------------------------------------------

    def documents_per_group(self) -> list[int]:
        """Fig. 5a: document count of every course, descending."""
        counts = [
            self._docs_per_course.get(c, 0)
            for c in range(self.config.num_courses)
        ]
        return sorted(counts, reverse=True)

    def cumulative_uploads_by_week(self) -> list[int]:
        """Fig. 5b: cumulative upload count at the end of each week.

        The paper observes uploads "increase uniformly during the semester",
        i.e. this curve is close to linear.
        """
        per_week = [0] * self.config.semester_weeks
        for week, _, _ in self._uploads:
            per_week[week] += 1
        cumulative, total = [], 0
        for count in per_week:
            total += count
            cumulative.append(total)
        return cumulative

    def users_per_group(self) -> list[int]:
        """Fig. 5c: member count of every course, descending."""
        counts: dict[int, int] = defaultdict(int)
        for groups in self._memberships.values():
            for g in groups:
                counts[g] += 1
        return sorted(
            (counts.get(c, 0) for c in range(self.config.num_courses)),
            reverse=True,
        )

    def documents_accessible_per_user(self) -> list[int]:
        """Fig. 5d: number of documents each user can read, descending."""
        accessible = [
            sum(self._docs_per_course.get(g, 0) for g in groups)
            for groups in self._memberships.values()
        ]
        return sorted(accessible, reverse=True)

    def groups_per_user(self) -> list[int]:
        """Supporting stat for §2/§7.3: group memberships per user, descending."""
        return sorted(
            (len(g) for g in self._memberships.values()), reverse=True
        )

    # -- raw structure -------------------------------------------------------

    @property
    def memberships(self) -> dict[int, list[int]]:
        """user_id -> group ids (copy)."""
        return {u: list(g) for u, g in self._memberships.items()}

    @property
    def uploads(self) -> list[tuple[int, int, int]]:
        """(week, course_id, doc_id) history (copy)."""
        return list(self._uploads)

    @property
    def total_documents(self) -> int:
        return len(self._uploads)


def generate_installation(config: StudIPConfig | None = None) -> StudIPInstallation:
    """Generate an installation matching the Fig. 5 profile shapes.

    Course popularity (both enrollment and material volume) is heavy-tailed:
    a few large lecture courses, many small seminars. Users draw a geometric
    number of course memberships capped at ``max_groups_per_user``, biased
    toward popular courses — reproducing that "most users belong to at most
    20 groups and can access fewer than 200 documents". Uploads are spread
    uniformly over the semester weeks.
    """
    config = config or StudIPConfig()
    rng = random.Random(config.seed)
    # Heavy-tailed course popularity weights (Zipf-ish with offset so that
    # small seminars retain non-trivial mass).
    popularity = [1.0 / (rank + 3) for rank in range(config.num_courses)]
    # Memberships: geometric count, popularity-biased sampling w/o replacement.
    memberships: dict[int, list[int]] = {}
    course_ids = list(range(config.num_courses))
    for user_id in range(config.num_users):
        wanted = 1
        while (
            wanted < config.max_groups_per_user and rng.random() < 0.72
        ):
            wanted += 1
        chosen: set[int] = set()
        while len(chosen) < wanted:
            chosen.add(rng.choices(course_ids, weights=popularity, k=1)[0])
        memberships[user_id] = sorted(chosen)
    # Uploads: per-course volume is lognormal around the configured mean
    # and *independent* of enrollment popularity — big lecture courses do
    # not hold proportionally more files, which is what keeps "most users
    # can access fewer than 200 documents" (§7.4.1) true even for students
    # of the popular courses. Weeks are drawn uniformly (Fig. 5b).
    import math

    sigma = 0.7
    mu = math.log(config.mean_documents_per_course) - sigma**2 / 2
    uploads: list[tuple[int, int, int]] = []
    doc_id = 0
    for course_id in range(config.num_courses):
        volume = max(0, round(rng.lognormvariate(mu, sigma)))
        for _ in range(volume):
            week = rng.randrange(config.semester_weeks)
            uploads.append((week, course_id, doc_id))
            doc_id += 1
    uploads.sort()
    return StudIPInstallation(config, memberships, uploads)
