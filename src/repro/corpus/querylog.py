"""Query-log synthesis (paper §7.4.3).

The paper's workload is a real web search-engine log: 7 million queries,
135,000 distinct query terms, 2.45 terms per query on average, Zipfian query
frequencies (Fig. 6: "The most frequent queries constitute nearly the whole
query workload"). Crucially, §7.4.3 notes query frequency is *correlated
with but not identical to* document frequency — "some frequent terms are
rarely queried (e.g., 'although')".

:func:`generate_query_log` reproduces those properties: Zipfian query mass
over a subset of the vocabulary, with the query-frequency rank of each term
obtained by perturbing its document-frequency rank with configurable noise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.corpus.synthetic import TermStatistics
from repro.corpus.zipf import zipf_weights
from repro.errors import CorpusError

#: Sizes reported in §7.4.3.
PAPER_TOTAL_QUERIES = 7_000_000
PAPER_DISTINCT_QUERY_TERMS = 135_000
PAPER_MEAN_TERMS_PER_QUERY = 2.45


@dataclass
class QueryLogConfig:
    """Configuration for the synthetic query log.

    Attributes:
        total_queries: total query volume to distribute (only the per-term
            frequencies matter to formulas (6)/(8), so this is mass, not a
            materialized list).
        distinct_query_terms: how many vocabulary terms are ever queried.
        zipf_exponent: skew of the query-frequency distribution.
        rank_noise: standard deviation (as a fraction of the vocabulary
            size) of the Gaussian perturbation applied to each term's
            document-frequency rank before assigning query ranks. 0.0 makes
            query rank == document rank; larger values reproduce the
            "frequent but rarely queried" phenomenon.
        tail_fraction: fraction of the distinct query terms drawn uniformly
            at random from the whole vocabulary instead of by document
            rank. Real logs query arbitrarily rare terms (the paper's
            "Hesselhofer" example); this puts DF=1 terms in the workload.
        mean_terms_per_query: average query length, used when materializing
            multi-term queries (1 + Poisson(mean - 1)).
        seed: rng seed.
    """

    total_queries: int = 100_000
    distinct_query_terms: int = 1_000
    zipf_exponent: float = 1.0
    rank_noise: float = 0.05
    tail_fraction: float = 0.0
    mean_terms_per_query: float = PAPER_MEAN_TERMS_PER_QUERY
    seed: int = 0xD1CE

    def __post_init__(self) -> None:
        if self.total_queries <= 0 or self.distinct_query_terms <= 0:
            raise CorpusError("query log dimensions must be positive")
        if self.rank_noise < 0:
            raise CorpusError("rank_noise must be >= 0")
        if not 0.0 <= self.tail_fraction <= 1.0:
            raise CorpusError("tail_fraction must be in [0, 1]")
        if self.mean_terms_per_query < 1:
            raise CorpusError("queries contain at least one term")


class QueryLog:
    """Per-term query frequencies plus a multi-term query materializer."""

    def __init__(
        self,
        query_frequencies: dict[str, int],
        mean_terms_per_query: float = PAPER_MEAN_TERMS_PER_QUERY,
        seed: int = 0,
    ) -> None:
        if not query_frequencies:
            raise CorpusError("empty query log")
        if any(qf < 0 for qf in query_frequencies.values()):
            raise CorpusError("negative query frequency")
        self._frequencies = dict(query_frequencies)
        self._mean_terms = mean_terms_per_query
        self._seed = seed

    @property
    def total_queries(self) -> int:
        """Total query mass (sum of per-term frequencies)."""
        return sum(self._frequencies.values())

    @property
    def distinct_terms(self) -> int:
        return len(self._frequencies)

    def frequency(self, term: str) -> int:
        """Query frequency ``qf_t`` (0 for never-queried terms)."""
        return self._frequencies.get(term, 0)

    def frequencies(self) -> dict[str, int]:
        """The full term -> query-frequency map."""
        return dict(self._frequencies)

    def terms_by_frequency(self) -> list[str]:
        """Query terms sorted by descending frequency (Fig. 6's x-axis)."""
        return sorted(
            self._frequencies, key=lambda t: (-self._frequencies[t], t)
        )

    def materialize_queries(
        self, count: int, rng: random.Random | None = None
    ) -> list[list[str]]:
        """Draw ``count`` multi-term queries.

        Terms are drawn proportionally to their query frequency; query
        length is ``1 + Poisson(mean_terms_per_query - 1)``, matching the
        2.45-term average of §7.4.3 without zero-length queries.
        """
        rng = rng or random.Random(self._seed)
        terms = list(self._frequencies)
        weights = [self._frequencies[t] for t in terms]
        lam = self._mean_terms - 1.0
        queries = []
        for _ in range(count):
            # Knuth's Poisson sampler is fine for lam ~ 1.45.
            length, threshold, product = 1, pow(2.718281828459045, -lam), 1.0
            while True:
                product *= rng.random()
                if product <= threshold:
                    break
                length += 1
            drawn = rng.choices(terms, weights=weights, k=length)
            # A query never repeats a term; dedupe but keep at least one.
            queries.append(list(dict.fromkeys(drawn)))
        return queries


def generate_query_log(
    statistics: TermStatistics, config: QueryLogConfig | None = None
) -> QueryLog:
    """Build a query log rank-correlated with ``statistics``' document frequencies.

    The most document-frequent terms get the top query ranks, perturbed by
    Gaussian noise of ``rank_noise * vocabulary_size``, and Zipfian query
    mass is assigned by perturbed rank. Terms outside the top
    ``distinct_query_terms`` after perturbation are never queried —
    reproducing that the paper's 135k query terms are a small subset of the
    987.7k vocabulary.
    """
    config = config or QueryLogConfig()
    rng = random.Random(config.seed)
    doc_ranked = statistics.terms_by_frequency()
    vocab_size = len(doc_ranked)
    distinct = min(config.distinct_query_terms, vocab_size)
    noise_sd = config.rank_noise * vocab_size
    perturbed = sorted(
        range(vocab_size),
        key=lambda rank: rank + rng.gauss(0.0, noise_sd),
    )
    head_count = distinct - round(config.tail_fraction * distinct)
    chosen = perturbed[:head_count]
    chosen_set = set(chosen)
    # The uniform tail: arbitrarily rare terms (DF=1 included) get the
    # lowest query ranks.
    while len(chosen) < distinct:
        candidate = rng.randrange(vocab_size)
        if candidate not in chosen_set:
            chosen_set.add(candidate)
            chosen.append(candidate)
    weights = zipf_weights(distinct, config.zipf_exponent)
    frequencies: dict[str, int] = {}
    for query_rank, doc_rank in enumerate(chosen):
        qf = max(1, round(config.total_queries * weights[query_rank]))
        frequencies[doc_ranked[doc_rank]] = qf
    return QueryLog(
        frequencies,
        mean_terms_per_query=config.mean_terms_per_query,
        seed=config.seed,
    )
