"""Zipfian sampling utilities.

Both document frequencies (§7.5: "document frequencies follow a Zipfian
distribution", Fig. 7) and query frequencies (Fig. 6) in the paper are
Zipf-shaped. This module provides the weight vector and an O(log n)-per-draw
sampler used by every corpus generator in :mod:`repro.corpus`.
"""

from __future__ import annotations

import bisect
import itertools
import random
from typing import Sequence

from repro.errors import CorpusError


def zipf_weights(n: int, exponent: float = 1.0) -> list[float]:
    """Normalized Zipf weights ``w_i ∝ (i+1)^-exponent`` for ranks 0..n-1.

    Args:
        n: number of ranks; must be positive.
        exponent: the Zipf ``s`` parameter; 1.0 is classic Zipf's law.

    Returns:
        A probability vector of length ``n`` summing to 1.0.
    """
    if n <= 0:
        raise CorpusError(f"need a positive number of ranks, got {n}")
    if exponent < 0:
        raise CorpusError(f"Zipf exponent must be >= 0, got {exponent}")
    raw = [(rank + 1) ** -exponent for rank in range(n)]
    total = sum(raw)
    return [w / total for w in raw]


class ZipfSampler:
    """Draws ranks from a Zipf distribution via inverse-CDF bisection.

    The sampler precomputes the cumulative distribution once (O(n)) and then
    serves draws in O(log n), which keeps materializing a multi-million-token
    synthetic corpus tractable in pure Python.
    """

    def __init__(self, n: int, exponent: float = 1.0) -> None:
        """Args:
        n: number of ranks (0-based ranks ``0..n-1`` are drawn).
        exponent: Zipf exponent.
        """
        self._weights = zipf_weights(n, exponent)
        self._cdf = list(itertools.accumulate(self._weights))
        # Guard against floating-point shortfall at the tail.
        self._cdf[-1] = 1.0
        self.n = n
        self.exponent = exponent

    @property
    def weights(self) -> Sequence[float]:
        """The normalized probability of each rank."""
        return self._weights

    def sample(self, rng: random.Random) -> int:
        """Draw one rank."""
        return bisect.bisect_left(self._cdf, rng.random())

    def sample_many(self, count: int, rng: random.Random) -> list[int]:
        """Draw ``count`` i.i.d. ranks."""
        cdf = self._cdf
        rand = rng.random
        return [bisect.bisect_left(cdf, rand()) for _ in range(count)]


def expected_document_frequencies(
    num_documents: int,
    vocabulary_size: int,
    exponent: float = 1.0,
    terms_per_document: int = 100,
) -> list[int]:
    """Closed-form expected per-term document frequencies under a Zipf model.

    For rank ``i`` with occurrence probability ``w_i`` and documents of
    ``terms_per_document`` tokens, the probability a document contains the
    term at least once is ``1 - (1 - w_i)^terms_per_document``; the expected
    document frequency is ``num_documents`` times that. Generators use this
    to synthesize DF vectors without materializing every document, which is
    how we reach the paper's 237k-document ODP scale on a laptop.

    Returns:
        Integer document frequencies (minimum 1 — a term that appears in the
        vocabulary appears somewhere), sorted descending by construction.
    """
    if num_documents <= 0:
        raise CorpusError("num_documents must be positive")
    if terms_per_document <= 0:
        raise CorpusError("terms_per_document must be positive")
    weights = zipf_weights(vocabulary_size, exponent)
    frequencies = []
    for w in weights:
        p_contains = 1.0 - (1.0 - w) ** terms_per_document
        frequencies.append(max(1, round(num_documents * p_contains)))
    return frequencies
