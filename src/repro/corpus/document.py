"""Document and corpus models shared by the indexers and generators.

A :class:`Document` is what a document owner feeds into Zerber (§5.4.1):
an identifier that "must identify both the machine on which the document is
hosted and the document within that machine", the group allowed to read it,
and its text (or, for synthetic corpora, a pre-tokenized term bag).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.errors import CorpusError


@dataclass(frozen=True)
class Document:
    """One shared document.

    Attributes:
        doc_id: corpus-unique numeric ID (packed into posting elements).
        host: identifier of the peer hosting the document ("the machine on
            which the document is hosted").
        group_id: the collaboration group whose members may read it.
        term_counts: term -> number of occurrences in this document.
        length: total token count; used to normalize term frequency
            ("a count of the number of times that term appears in that
            document, divided by the document's length", §1).
        text: optional raw text the counts were derived from (snippets are
            served out of this, §5.4.2).
    """

    doc_id: int
    host: str
    group_id: int
    term_counts: Mapping[str, int]
    length: int
    text: str = ""

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise CorpusError(f"document {self.doc_id} has non-positive length")
        if any(c <= 0 for c in self.term_counts.values()):
            raise CorpusError(
                f"document {self.doc_id} has non-positive term counts"
            )
        if sum(self.term_counts.values()) > self.length:
            raise CorpusError(
                f"document {self.doc_id}: term counts exceed document length"
            )

    @property
    def distinct_terms(self) -> int:
        """Number of distinct terms (the N of Algorithm 1a's O(nN) cost)."""
        return len(self.term_counts)

    def term_frequency(self, term: str) -> float:
        """Normalized term frequency ``count / length`` (0.0 if absent)."""
        return self.term_counts.get(term, 0) / self.length

    def snippet(self, term: str, width: int = 120) -> str:
        """A text window around the first occurrence of ``term``.

        Models the snippet the hosting peer returns for a top-K result;
        falls back to the document prefix when the term is not in the raw
        text (e.g. synthetic term-bag documents).
        """
        if self.text:
            lowered = self.text.lower()
            pos = lowered.find(term.lower())
            if pos >= 0:
                start = max(0, pos - width // 2)
                return self.text[start : start + width]
            return self.text[:width]
        preview = " ".join(sorted(self.term_counts)[: max(1, width // 10)])
        return preview[:width]


class Corpus:
    """An in-memory document collection with the statistics §7 consumes.

    Provides the two distributions every experiment is built on: per-term
    document frequency ``n_d(t)`` and the term occurrence probability
    ``p_t`` of formula (2).
    """

    def __init__(self, documents: Iterable[Document]) -> None:
        self._documents: dict[int, Document] = {}
        for doc in documents:
            if doc.doc_id in self._documents:
                raise CorpusError(f"duplicate doc_id {doc.doc_id}")
            self._documents[doc.doc_id] = doc
        self._document_frequency: Counter[str] = Counter()
        for doc in self._documents.values():
            self._document_frequency.update(doc.term_counts.keys())

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents.values())

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._documents

    def get(self, doc_id: int) -> Document:
        """Fetch a document by ID (KeyError if absent)."""
        return self._documents[doc_id]

    @property
    def vocabulary(self) -> list[str]:
        """All distinct terms, unordered."""
        return list(self._document_frequency)

    @property
    def vocabulary_size(self) -> int:
        return len(self._document_frequency)

    def document_frequency(self, term: str) -> int:
        """``n_d(t)``: number of documents containing ``term``."""
        return self._document_frequency.get(term, 0)

    def document_frequencies(self) -> dict[str, int]:
        """The full term -> document-frequency map."""
        return dict(self._document_frequency)

    def term_probabilities(self) -> dict[str, float]:
        """Formula (2): ``p_t = n_d(t) / sum_i n_d(t_i)``.

        Note the denominator is the paper's: the *sum of document
        frequencies over the vocabulary*, not the corpus size, so the
        probabilities form a distribution over posting elements.
        """
        total = sum(self._document_frequency.values())
        if total == 0:
            return {}
        return {
            term: df / total for term, df in self._document_frequency.items()
        }

    def documents_in_group(self, group_id: int) -> list[Document]:
        """All documents readable by one collaboration group."""
        return [d for d in self._documents.values() if d.group_id == group_id]

    def group_ids(self) -> list[int]:
        """Distinct group IDs present in the corpus."""
        return sorted({d.group_id for d in self._documents.values()})
