"""The keyed-encryption alternative Zerber replaces (paper §3).

"Document owners and/or project group managers must generate and
distribute keying material for all group members ... When a key is
compromised or a member leaves a group, the key must be revoked and all
the content associated with that key must be re-encrypted and re-indexed.
Modern group key management schemes, such as logical key trees and
broadcast encryption, reduce the costs associated with giving keys to
members, but still require content re-encryption. ... Zerber does not
use keys."

This module implements that alternative so the ablation bench can price
it: a :class:`LogicalKeyTree` (LKH) giving O(log n) rekey messages per
membership change, and a :class:`KeyedInvertedIndex` whose posting
elements are encrypted under the group key — so every revocation forces a
full re-encrypt + re-index of the group's postings, which is exactly the
cost Zerber's query-time ACL check avoids.

Cryptography is simulated with HMAC-SHA256-derived keystreams: the point
of the baseline is *cost accounting* (messages, re-encrypted elements),
not cipher strength.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass

from repro.errors import AccessDeniedError, ReproError


def _derive(key: bytes, label: str) -> bytes:
    return hmac.new(key, label.encode("utf-8"), hashlib.sha256).digest()


def _keystream_xor(key: bytes, nonce: int, data: bytes) -> bytes:
    """Simulated symmetric cipher: XOR with an HMAC-derived keystream."""
    out = bytearray()
    counter = 0
    while len(out) < len(data):
        block = _derive(key, f"ks:{nonce}:{counter}")
        out.extend(block)
        counter += 1
    return bytes(a ^ b for a, b in zip(data, out[: len(data)]))


class LogicalKeyTree:
    """LKH group-key management: O(log n) rekey messages per change.

    Members sit at the leaves of a binary tree; each member knows every
    key on its leaf-to-root path; the root key is the group key. Revoking
    a member replaces all keys on its path, each new key encrypted to the
    surviving children — ceil(log2(n)) * 2 messages instead of the naive
    scheme's n - 1.
    """

    def __init__(self, group_id: int) -> None:
        self.group_id = group_id
        self._members: dict[str, int] = {}  # member -> leaf index
        self._group_key = secrets.token_bytes(32)
        self.key_version = 0
        #: cumulative rekey messages sent (the distribution cost metric).
        self.rekey_messages = 0

    @property
    def size(self) -> int:
        return len(self._members)

    @property
    def group_key(self) -> bytes:
        return self._group_key

    def members(self) -> list[str]:
        return sorted(self._members)

    def has_member(self, member: str) -> bool:
        return member in self._members

    def _tree_depth(self) -> int:
        n = max(1, len(self._members))
        return max(1, (n - 1).bit_length())

    def add_member(self, member: str) -> int:
        """Join: the new member receives its path keys (depth messages).

        Backward secrecy (can't read pre-join content) would also require
        rekeying; we follow the common LKH accounting of depth messages.
        """
        if member in self._members:
            raise ReproError(f"{member!r} already in group {self.group_id}")
        self._members[member] = len(self._members)
        messages = self._tree_depth()
        self.rekey_messages += messages
        return messages

    def revoke_member(self, member: str) -> int:
        """Leave/compromise: replace every key on the member's path.

        Returns the rekey messages sent (2 per replaced level — one to
        each surviving subtree), and bumps the group-key version: all
        content encrypted under the old key is now stale.
        """
        if member not in self._members:
            raise ReproError(f"{member!r} not in group {self.group_id}")
        del self._members[member]
        self._group_key = secrets.token_bytes(32)
        self.key_version += 1
        messages = 2 * self._tree_depth()
        self.rekey_messages += messages
        return messages

    @staticmethod
    def naive_rekey_cost(group_size: int) -> int:
        """The no-tree alternative: one message per surviving member."""
        return max(0, group_size - 1)


@dataclass(frozen=True, slots=True)
class EncryptedPosting:
    """One keyed-index entry: blinded term handle + sealed payload."""

    term_handle: bytes
    ciphertext: bytes
    key_version: int


class KeyedInvertedIndex:
    """A per-group encrypted inverted index (the §3 strawman).

    Terms are blinded with an HMAC under the group key (so the server
    can't read them) and payloads sealed with the derived content key.
    The fatal operational property: after :meth:`revoke`, every stored
    entry is under a stale key version and must be re-encrypted before
    the group can search again — :meth:`reencrypt_all` counts that work.
    """

    def __init__(self, tree: LogicalKeyTree) -> None:
        self._tree = tree
        self._entries: list[EncryptedPosting] = []
        #: cumulative elements re-encrypted across all revocations.
        self.reencrypted_elements = 0

    @property
    def num_entries(self) -> int:
        return len(self._entries)

    def _handle(self, term: str, key: bytes) -> bytes:
        return _derive(key, f"term:{term}")[:16]

    def insert(self, term: str, doc_id: int, tf: float) -> None:
        key = self._tree.group_key
        payload = f"{doc_id}:{tf:.6f}".encode("ascii")
        self._entries.append(
            EncryptedPosting(
                term_handle=self._handle(term, key),
                ciphertext=_keystream_xor(key, len(self._entries), payload),
                key_version=self._tree.key_version,
            )
        )

    def search(self, member: str, term: str) -> list[tuple[int, float]]:
        """Decrypt matching entries; stale-version entries are unreadable.

        Raises:
            AccessDeniedError: non-members hold no key at all.
            ReproError: the index contains stale entries — the group is
                down for maintenance until re-encryption completes (the
                §3 cost in its most user-visible form).
        """
        if not self._tree.has_member(member):
            raise AccessDeniedError(f"{member!r} holds no group key")
        current = self._tree.key_version
        if any(e.key_version != current for e in self._entries):
            raise ReproError(
                "index contains entries under a revoked key; "
                "re-encryption required before searching"
            )
        key = self._tree.group_key
        handle = self._handle(term, key)
        results = []
        for position, entry in enumerate(self._entries):
            if entry.term_handle == handle:
                payload = _keystream_xor(key, position, entry.ciphertext)
                doc_str, tf_str = payload.decode("ascii").split(":")
                results.append((int(doc_str), float(tf_str)))
        return results

    def reencrypt_all(self, plaintext_postings: list[tuple[str, int, float]]) -> int:
        """Rebuild every entry under the current key; returns the count.

        The owner must supply the plaintext postings — precisely the §3
        burden: "all the content associated with that key must be
        re-encrypted and re-indexed."
        """
        self._entries.clear()
        for term, doc_id, tf in plaintext_postings:
            self.insert(term, doc_id, tf)
        self.reencrypted_elements += len(plaintext_postings)
        return len(plaintext_postings)

    def stale_entries(self) -> int:
        current = self._tree.key_version
        return sum(1 for e in self._entries if e.key_version != current)
