"""The §1 "shotgun" baseline: broadcast every query to every owner.

"One possible solution is for each document owner to keep an inverted
index over the documents it owns locally. Then a user's query ... can be
broadcast to all document owners, and the resulting answers can be
collected by the user and, if desired, ranked. ... However, this shotgun
approach to querying is relatively slow, and wastes network bandwidth and
computing power, since most document owners will not have posting list
elements matching most queries."

Included so the benchmark harness can quantify that waste next to μ-Serv
and Zerber: the shotgun contacts *all* S sites per query, μ-Serv ≈ 1/x
times the relevant sites, Zerber only the hosts of the top-K hits.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import ReproError
from repro.invindex.inverted_index import InvertedIndex


class ShotgunBroadcast:
    """Query-broadcast federation over per-owner local indexes."""

    def __init__(self, site_indexes: Mapping[str, InvertedIndex]) -> None:
        if not site_indexes:
            raise ReproError("shotgun federation needs at least one site")
        self._sites = dict(site_indexes)

    @property
    def num_sites(self) -> int:
        return len(self._sites)

    def search(
        self, terms: Sequence[str]
    ) -> tuple[dict[str, set[int]], int]:
        """Broadcast to every site.

        Returns:
            (site_id -> matching docs, sites contacted == all of them).
        """
        results = {
            site_id: index.search_or(terms)
            for site_id, index in sorted(self._sites.items())
        }
        return results, len(self._sites)

    def wasted_contacts(self, terms: Sequence[str]) -> int:
        """Sites contacted that had no match at all (the §1 waste)."""
        results, contacted = self.search(terms)
        return contacted - sum(1 for docs in results.values() if docs)
