"""A from-scratch Bloom filter (substrate for the μ-Serv baseline [3]).

Standard construction: ``m`` bits, ``h`` independent hash functions derived
from SHA-256 with an index salt (Kirsch–Mitzenmacher double hashing), sized
from the usual optimum ``m = -n ln(f) / (ln 2)^2``, ``h = (m/n) ln 2``.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable

from repro.errors import ReproError


class BloomFilter:
    """Fixed-size Bloom filter over UTF-8 strings."""

    def __init__(self, num_bits: int, num_hashes: int) -> None:
        """Args:
        num_bits: m, size of the bit array.
        num_hashes: h, number of probe positions per element.
        """
        if num_bits < 8:
            raise ReproError("Bloom filter needs at least 8 bits")
        if num_hashes < 1:
            raise ReproError("Bloom filter needs at least one hash")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._bits = bytearray((num_bits + 7) // 8)
        self._count = 0

    # -- construction helpers ---------------------------------------------------

    @classmethod
    def with_false_positive_rate(
        cls, expected_items: int, fp_rate: float
    ) -> "BloomFilter":
        """Optimally sized filter for ``expected_items`` at ``fp_rate``.

        μ-Serv's confidentiality knob lives here: a *small* filter (high
        fp rate) makes the central index vague about which site holds
        which term.
        """
        if expected_items < 1:
            raise ReproError("expected_items must be >= 1")
        if not 0.0 < fp_rate < 1.0:
            raise ReproError(f"fp_rate must be in (0, 1), got {fp_rate}")
        ln2 = math.log(2)
        num_bits = max(8, math.ceil(-expected_items * math.log(fp_rate) / ln2**2))
        num_hashes = max(1, round((num_bits / expected_items) * ln2))
        return cls(num_bits=num_bits, num_hashes=num_hashes)

    # -- hashing ---------------------------------------------------------------

    def _positions(self, item: str) -> Iterable[int]:
        digest = hashlib.sha256(item.encode("utf-8")).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:16], "big") | 1  # odd => full-period
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    # -- operations ----------------------------------------------------------------

    def add(self, item: str) -> None:
        for pos in self._positions(item):
            self._bits[pos // 8] |= 1 << (pos % 8)
        self._count += 1

    def add_all(self, items: Iterable[str]) -> None:
        for item in items:
            self.add(item)

    def __contains__(self, item: str) -> bool:
        return all(
            self._bits[pos // 8] & (1 << (pos % 8)) for pos in self._positions(item)
        )

    # -- statistics --------------------------------------------------------------------

    @property
    def items_added(self) -> int:
        return self._count

    @property
    def fill_ratio(self) -> float:
        """Fraction of set bits."""
        set_bits = sum(bin(b).count("1") for b in self._bits)
        return set_bits / self.num_bits

    def estimated_fp_rate(self) -> float:
        """Current false-positive probability, ``fill_ratio ** h``."""
        return self.fill_ratio ** self.num_hashes

    def size_bytes(self) -> int:
        return len(self._bits)
