"""The §2 "ideal" scheme: trusted centralized index + post-hoc ACL check.

"Given a keyword query, the ideal indexing scheme's answer will be
identical to that of a trusted centralized ordinary inverted index that
incorporates an access control list check on the ranked document list just
before returning it to the user."

This oracle defines Zerber's correctness target: for any corpus, any group
structure and any query, Zerber must return exactly the documents (and the
same ranking) the ideal index returns. The integration and property tests
enforce that equivalence. Of course the ideal index is *not* confidential —
its administrator sees everything — which is the whole point of the paper.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.corpus.document import Document
from repro.invindex.inverted_index import InvertedIndex
from repro.ranking.scores import CollectionStatistics, TfIdfScorer
from repro.ranking.threshold import RankedHit, threshold_top_k
from repro.server.groups import GroupDirectory


class IdealTrustedIndex:
    """Fully trusted central index with per-query ACL filtering."""

    def __init__(self, groups: GroupDirectory) -> None:
        """Args:
        groups: the same membership table the Zerber servers consult,
            so equivalence comparisons see one access-control universe.
        """
        self._index = InvertedIndex()
        self._groups = groups
        self._group_of_doc: dict[int, int] = {}

    # -- updates -------------------------------------------------------------

    def index_document(self, document: Document) -> None:
        self._index.index_document(document)
        self._group_of_doc[document.doc_id] = document.group_id

    def delete_document(self, doc_id: int) -> bool:
        self._group_of_doc.pop(doc_id, None)
        return self._index.delete_document(doc_id)

    # -- the ideal query path ------------------------------------------------------

    def _accessible(self, user_id: str, doc_id: int) -> bool:
        group = self._group_of_doc.get(doc_id)
        return group is not None and self._groups.is_member(user_id, group)

    def search(
        self, user_id: str, terms: Sequence[str], top_k: int = 10
    ) -> list[RankedHit]:
        """Rank over accessible documents, with the same personalized
        statistics and aggregation Zerber's client uses, then ACL-filter.

        The ACL check runs on the candidate list "just before returning it
        to the user" — but because ranking statistics must match Zerber's
        *personalized* view (accessible documents only), the accessible set
        is applied to the statistics too. The result set equals Zerber's by
        construction of both pipelines.
        """
        postings_by_term: dict[str, list[tuple[int, float]]] = defaultdict(list)
        for term in terms:
            plist = self._index.posting_list(term)
            if plist is None:
                continue
            for posting in plist:
                if self._accessible(user_id, posting.doc_id):
                    postings_by_term[term].append((posting.doc_id, posting.tf))
        if not postings_by_term:
            return []
        statistics = CollectionStatistics.from_postings(
            {t: [d for d, _ in ps] for t, ps in postings_by_term.items()}
        )
        scorer = TfIdfScorer(statistics)
        weights = {t: scorer.weight(t) for t in postings_by_term}
        return threshold_top_k(postings_by_term, weights, top_k)

    def matching_documents(
        self, user_id: str, terms: Sequence[str]
    ) -> set[int]:
        """Unranked accessible matches (equivalence-test helper)."""
        return {
            doc_id
            for doc_id in self._index.search_or(terms)
            if self._accessible(user_id, doc_id)
        }

    # -- statistics -----------------------------------------------------------------

    @property
    def num_documents(self) -> int:
        return self._index.num_documents

    @property
    def num_postings(self) -> int:
        return self._index.num_postings
