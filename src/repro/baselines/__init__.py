"""The comparison systems the paper evaluates Zerber against.

- :mod:`repro.baselines.plain_index` — the §2 "ideal" scheme: a trusted
  centralized ordinary inverted index "that incorporates an access control
  list check on the ranked document list just before returning it to the
  user". Zerber's answers must be identical to this oracle's;
- :mod:`repro.baselines.bloom` — a from-scratch Bloom filter, the substrate
  μ-Serv is built on;
- :mod:`repro.baselines.mu_serv` — μ-Serv [3], "the research most relevant
  to our problem": a central Bloom-filter index that answers with *sites*
  (not documents) and trades precision for confidentiality via the preset
  parameter x;
- :mod:`repro.baselines.shotgun` — the §1 "shotgun approach": broadcast
  every query to every document owner;
- :mod:`repro.baselines.keyed_index` — the §3 keyed-encryption
  alternative (LKH group keys + encrypted index), implemented so the
  ablation bench can price the revocation/re-encryption cost Zerber
  avoids.
"""

from repro.baselines.bloom import BloomFilter
from repro.baselines.keyed_index import KeyedInvertedIndex, LogicalKeyTree
from repro.baselines.mu_serv import MuServIndex, MuServSite
from repro.baselines.plain_index import IdealTrustedIndex
from repro.baselines.shotgun import ShotgunBroadcast

__all__ = [
    "BloomFilter",
    "KeyedInvertedIndex",
    "LogicalKeyTree",
    "MuServIndex",
    "MuServSite",
    "IdealTrustedIndex",
    "ShotgunBroadcast",
]
