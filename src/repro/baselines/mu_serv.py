"""The μ-Serv baseline (paper §3, citing Bawa, Bayardo & Agrawal [3]).

"μ-Serv has a centralized index based on a Bloom filter; it responds to a
keyword search by returning a list of sites that have at least x%
probability of having documents containing one of the query keywords,
where x is a preset parameter. Users then repeat their query at each
suggested site. ... For example, if x = 5%, the user must query 20 times
as many sites to get the relevant results. Further, μ-Serv does not
support centralized ranking; the user must get ranked search results from
individual sites and combine them."

Model: each site summarizes its vocabulary in a deliberately lossy Bloom
filter. The central index answers a keyword query with every site whose
filter matches — true holders plus false positives. The filter's
false-positive rate is the confidentiality dial: the expected *precision*
of the answer (the paper's x) falls as the fp rate rises, and the user's
query cost multiplies by ≈ 1/x. :func:`fp_rate_for_precision` computes the
fp rate that realizes a target x for a given corpus profile, which is how
the comparison bench reproduces the "x = 5% ⇒ 20×" sentence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.baselines.bloom import BloomFilter
from repro.corpus.document import Document
from repro.errors import ReproError
from repro.invindex.inverted_index import InvertedIndex


@dataclass
class MuServSite:
    """One participating site: its local index plus its published summary."""

    site_id: str
    local_index: InvertedIndex
    summary: BloomFilter

    @classmethod
    def build(
        cls,
        site_id: str,
        documents: Iterable[Document],
        fp_rate: float,
    ) -> "MuServSite":
        """Index a site's documents and publish its Bloom summary."""
        index = InvertedIndex()
        vocabulary: set[str] = set()
        for document in documents:
            index.index_document(document)
            vocabulary.update(document.term_counts)
        summary = BloomFilter.with_false_positive_rate(
            expected_items=max(1, len(vocabulary)), fp_rate=fp_rate
        )
        summary.add_all(vocabulary)
        return cls(site_id=site_id, local_index=index, summary=summary)

    def local_search(self, terms: Sequence[str]) -> set[int]:
        """The per-site query the user repeats at each suggested site."""
        return self.local_index.search_or(terms)


class MuServIndex:
    """The central site-granularity index."""

    def __init__(self, sites: Sequence[MuServSite]) -> None:
        if not sites:
            raise ReproError("μ-Serv needs at least one site")
        self._sites = {site.site_id: site for site in sites}
        if len(self._sites) != len(sites):
            raise ReproError("duplicate site ids")

    @property
    def num_sites(self) -> int:
        return len(self._sites)

    def site(self, site_id: str) -> MuServSite:
        return self._sites[site_id]

    # -- the central answer ---------------------------------------------------

    def candidate_sites(self, terms: Sequence[str]) -> list[str]:
        """Sites whose summaries match *any* query keyword (§3's answer)."""
        matches = []
        for site_id, site in sorted(self._sites.items()):
            if any(term in site.summary for term in terms):
                matches.append(site_id)
        return matches

    # -- the user's full (two-phase) query ----------------------------------------

    def search(
        self, terms: Sequence[str]
    ) -> tuple[dict[str, set[int]], int]:
        """Phase 1 central lookup + phase 2 per-site queries.

        Returns:
            (site_id -> matching doc_ids (possibly empty — a wasted visit),
             number of sites contacted). The wasted visits are exactly the
            §3 criticism: "This approach lengthens the querying process and
            wastes cycles at sites that do not contain query-relevant
            entries."
        """
        candidates = self.candidate_sites(terms)
        results = {
            site_id: self._sites[site_id].local_search(terms)
            for site_id in candidates
        }
        return results, len(candidates)

    def precision(self, terms: Sequence[str]) -> float:
        """Fraction of suggested sites that actually held a match (the x)."""
        results, contacted = self.search(terms)
        if contacted == 0:
            return 1.0
        useful = sum(1 for docs in results.values() if docs)
        return useful / contacted


def fp_rate_for_precision(
    target_precision: float,
    true_site_fraction: float,
) -> float:
    """The Bloom fp rate realizing an expected answer precision of x.

    With S sites, a fraction ``t`` truly matching and fp rate ``f``, the
    expected answer is ``tS + f(1-t)S`` sites and its precision
    ``t / (t + f(1-t))``. Solving for ``f`` at precision ``x``:

        f = t (1 - x) / (x (1 - t))

    Args:
        target_precision: the paper's x, in (0, 1].
        true_site_fraction: fraction of sites genuinely holding the keyword.

    Returns:
        The fp rate, clamped into (0, 0.99].

    Raises:
        ReproError: on out-of-range inputs.
    """
    if not 0.0 < target_precision <= 1.0:
        raise ReproError("target precision must be in (0, 1]")
    if not 0.0 < true_site_fraction < 1.0:
        raise ReproError("true_site_fraction must be in (0, 1)")
    f = (
        true_site_fraction
        * (1.0 - target_precision)
        / (target_precision * (1.0 - true_site_fraction))
    )
    return min(max(f, 1e-6), 0.99)
