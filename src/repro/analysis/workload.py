"""Workload-cost analysis: formulas (6), (8), (9) and Figs. 6/10/11/12.

All functions consume the same three ingredients the paper's simulations
use: a merge result (the partition of terms into lists), per-term document
frequencies, and per-term query frequencies. None of them require a live
index — §7.6's "extensive simulations" are algebra over these maps, which
is what lets the paper (and us) sweep M up to 32,768.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Mapping, Sequence

from repro.core.merging.base import MergeResult
from repro.errors import ReproError


def q_ratio(
    members: Sequence[str],
    term: str,
    document_frequencies: Mapping[str, int],
    query_frequencies: Mapping[str, int],
) -> float:
    """Formula (8): workload-cost ratio of ``term`` in its merged list.

    ``QRatio(t) = (sum_{u in L} DF_u * sum_{u in L} qf_u) / (DF_t * qf_t)``

    The numerator is the whole list's workload (every query for any member
    transfers every element); the denominator is what t's queries would
    cost against its private, unmerged list.
    """
    if term not in members:
        raise ReproError(f"term {term!r} is not a member of the list")
    df_t = document_frequencies.get(term, 0)
    qf_t = query_frequencies.get(term, 0)
    if df_t <= 0 or qf_t <= 0:
        raise ReproError(
            f"QRatio undefined for term {term!r} with DF={df_t}, qf={qf_t}"
        )
    df_sum = sum(document_frequencies.get(u, 0) for u in members)
    qf_sum = sum(query_frequencies.get(u, 0) for u in members)
    return (df_sum * qf_sum) / (df_t * qf_t)


def q_ratio_eff(
    members: Sequence[str],
    term: str,
    document_frequencies: Mapping[str, int],
) -> float:
    """Formula (9): query-answering efficiency of ``term`` in its list.

    ``QRatio_eff(t) = DF_t / sum_{u in L} DF_u`` — the fraction of the
    transferred response that actually answers the query (1.0 means the
    merged list is pure signal; Fig. 11).
    """
    if term not in members:
        raise ReproError(f"term {term!r} is not a member of the list")
    df_t = document_frequencies.get(term, 0)
    df_sum = sum(document_frequencies.get(u, 0) for u in members)
    if df_sum <= 0:
        raise ReproError("merged list has no postings")
    return df_t / df_sum


def q_ratio_by_document_frequency(
    merge: MergeResult,
    document_frequencies: Mapping[str, int],
    query_frequencies: Mapping[str, int],
    df_targets: Sequence[int],
    tolerance: float = 0.15,
) -> dict[int, float]:
    """Fig. 10's series: average QRatio over terms near each DF target.

    The paper plots "terms with document frequency DF of 1, 1000, and
    3500"; synthetic corpora rarely contain terms at *exactly* those DFs,
    so terms within ``tolerance`` (relative) of a target are averaged.

    Returns:
        df_target -> mean QRatio (targets with no queried terms nearby are
        omitted).
    """
    list_of: dict[str, int] = merge.assignments()
    out: dict[int, float] = {}
    for target in df_targets:
        lo = target * (1 - tolerance) - 1e-9
        hi = target * (1 + tolerance) + 1e-9
        ratios = []
        for term, df in document_frequencies.items():
            if not lo <= df <= hi:
                continue
            if query_frequencies.get(term, 0) <= 0:
                continue
            members = merge.lists[list_of[term]]
            ratios.append(
                q_ratio(members, term, document_frequencies, query_frequencies)
            )
        if ratios:
            out[target] = sum(ratios) / len(ratios)
    return out


def cumulative_workload_curve(
    document_frequencies: Mapping[str, int],
    query_frequencies: Mapping[str, int],
    points: int = 50,
) -> list[tuple[int, float]]:
    """Fig. 6: cumulative share of total workload vs. query-term rank.

    Terms are ordered by descending query frequency (the figure's log-scale
    x-axis); each term contributes ``qf_t * DF_t`` (formula (6) with
    unmerged lists). Returns ``points`` samples of
    (rank, cumulative_fraction).
    """
    queried = [
        (t, qf) for t, qf in query_frequencies.items() if qf > 0
    ]
    if not queried:
        raise ReproError("no queried terms")
    queried.sort(key=lambda kv: (-kv[1], kv[0]))
    costs = [qf * document_frequencies.get(t, 0) for t, qf in queried]
    total = sum(costs)
    if total <= 0:
        raise ReproError("workload has zero cost")
    curve = []
    running = 0.0
    sample_every = max(1, len(costs) // points)
    for rank, cost in enumerate(costs, start=1):
        running += cost
        if rank % sample_every == 0 or rank == len(costs):
            curve.append((rank, running / total))
    return curve


def efficiency_distribution(
    merge: MergeResult,
    document_frequencies: Mapping[str, int],
    query_frequencies: Mapping[str, int],
) -> list[tuple[float, float]]:
    """Fig. 11: QRatio_eff of each queried term, ordered by efficiency.

    Returns (workload percentile in [0, 100], efficiency) pairs where the
    percentile axis weights terms by their query frequency — matching the
    figure's "query terms in the workload (in %)" x-axis.
    """
    list_of = merge.assignments()
    entries = []
    for term, qf in query_frequencies.items():
        if qf <= 0 or term not in list_of:
            continue
        members = merge.lists[list_of[term]]
        eff = q_ratio_eff(members, term, document_frequencies)
        entries.append((eff, qf))
    if not entries:
        raise ReproError("no queried terms intersect the merge")
    entries.sort(key=lambda e: e[0])
    total_qf = sum(qf for _, qf in entries)
    out = []
    running = 0.0
    for eff, qf in entries:
        running += qf
        out.append((100.0 * running / total_qf, eff))
    return out


def workload_efficiency_summary(
    merge: MergeResult,
    document_frequencies: Mapping[str, int],
    query_frequencies: Mapping[str, int],
) -> dict[str, float]:
    """§7.6's headline numbers over the Fig. 11 distribution.

    The paper reports (for DFM/BFM-32K): "the longest running 70% of the
    queries ... have an efficiency value QRatio_eff > 0.96 and the next
    10% longest-running queries have QRatio_eff = 0.75 on average. The
    shortest running 20% ... have average QRatio_eff = 0.2."

    Longest-running queries are those over the highest-DF terms, so the
    summary buckets terms by their share of total workload cost.
    """
    list_of = merge.assignments()
    entries = []  # (workload cost of term, efficiency, qf)
    for term, qf in query_frequencies.items():
        if qf <= 0 or term not in list_of:
            continue
        members = merge.lists[list_of[term]]
        eff = q_ratio_eff(members, term, document_frequencies)
        cost = qf * document_frequencies.get(term, 0)
        entries.append((cost, eff, qf))
    if not entries:
        raise ReproError("no queried terms intersect the merge")
    entries.sort(key=lambda e: -e[0])  # longest-running first
    total_qf = sum(e[2] for e in entries)

    def bucket_mean(lo_frac: float, hi_frac: float) -> float:
        lo, hi = lo_frac * total_qf, hi_frac * total_qf
        running = 0.0
        effs: list[float] = []
        weights: list[float] = []
        for _cost, eff, qf in entries:
            start, end = running, running + qf
            running = end
            overlap = min(end, hi) - max(start, lo)
            if overlap > 0:
                effs.append(eff * overlap)
                weights.append(overlap)
        return sum(effs) / sum(weights) if weights else 0.0

    return {
        "longest_70pct_mean_eff": bucket_mean(0.0, 0.70),
        "next_10pct_mean_eff": bucket_mean(0.70, 0.80),
        "shortest_20pct_mean_eff": bucket_mean(0.80, 1.0),
    }


def response_size_distribution(
    merge: MergeResult,
    document_frequencies: Mapping[str, int],
) -> list[int]:
    """Fig. 12: total elements per merged list, ascending.

    "The X-axis shows the posting lists ordered by the number of elements
    they contain, and the Y-axis shows the total number of posting
    elements in the posting lists, computed as the sum of document
    frequencies of the terms in a merged posting list."
    """
    return sorted(merge.list_lengths(document_frequencies))


def fraction_of_lists_larger_than(
    merge: MergeResult,
    document_frequencies: Mapping[str, int],
    threshold: int,
) -> float:
    """Fig. 12's headline: share of lists exceeding ``threshold`` elements."""
    sizes = response_size_distribution(merge, document_frequencies)
    if not sizes:
        raise ReproError("merge has no lists")
    idx = bisect_right(sizes, threshold)
    return (len(sizes) - idx) / len(sizes)
