"""Operator-facing confidentiality audit (Def. 1 in practice).

Before going live, a Zerber operator wants one answer: *given this merge
and these corpus statistics, what exactly does a compromised server
learn?* :func:`audit_merge` rolls every §4–§6 quantity into a single
report: the index-wide r (formula 7), the weakest lists that set it, the
singleton head an adversary can identify outright, mapping-table
exposure under the §6.4 cutoff, and — when a query log is supplied — the
§8 request-stream leak channels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.attacks.query_inference import (
    band_information_bits,
    expected_posterior_concentration,
)
from repro.core.merging.base import MergeResult
from repro.errors import ConfidentialityError


@dataclass(frozen=True)
class ConfidentialityAudit:
    """The audit result; render with :meth:`render`.

    Attributes:
        resulting_r: formula-(7) index-wide amplification bound.
        weakest_lists: the (list_id, probability mass) pairs that set r,
            ascending by mass — the lists to reinforce first.
        singleton_lists: lists holding exactly one term; an adversary
            reads those terms' document frequencies directly off the
            list lengths.
        singleton_fraction: share of the vocabulary sitting in singletons.
        mass_quantiles: (min, p25, median, p75, max) of per-list masses.
        table_exposure: fraction of the vocabulary visible in the public
            mapping table (1.0 when no §6.4 cutoff is applied).
        band_information: §8 band-channel leak in bits (None without a
            query log).
        identity_accuracy: §8 identity-guess accuracy (None without a
            query log).
    """

    resulting_r: float
    weakest_lists: tuple[tuple[int, float], ...]
    singleton_lists: int
    singleton_fraction: float
    mass_quantiles: tuple[float, float, float, float, float]
    table_exposure: float
    band_information: float | None = None
    identity_accuracy: float | None = None

    def render(self) -> list[str]:
        """Human-readable report lines."""
        lines = [
            "Zerber confidentiality audit",
            f"  index-wide r (formula 7): {self.resulting_r:.1f}",
            "  weakest lists (id: mass): "
            + ", ".join(f"{lid}: {mass:.2e}" for lid, mass in self.weakest_lists),
            f"  singleton lists: {self.singleton_lists} "
            f"({100 * self.singleton_fraction:.2f}% of vocabulary — their "
            "document frequencies are readable off list lengths)",
            "  per-list mass min/p25/med/p75/max: "
            + "/".join(f"{q:.2e}" for q in self.mass_quantiles),
            f"  mapping-table exposure: {100 * self.table_exposure:.1f}% "
            "of vocabulary",
        ]
        if self.band_information is not None:
            lines.append(
                f"  request-stream band leak: {self.band_information:.2f} bits"
            )
        if self.identity_accuracy is not None:
            lines.append(
                "  request-stream identity-guess accuracy: "
                f"{self.identity_accuracy:.3f}"
            )
        return lines


def audit_merge(
    merge: MergeResult,
    term_probabilities: Mapping[str, float],
    table_size: int | None = None,
    query_frequencies: Mapping[str, int] | None = None,
    weakest: int = 3,
) -> ConfidentialityAudit:
    """Audit one merge against corpus statistics.

    Args:
        merge: the §6 heuristic output in production.
        term_probabilities: formula-(2) statistics the merge was built on.
        table_size: explicit mapping-table entry count when a §6.4 cutoff
            hides part of the vocabulary (defaults to full exposure).
        query_frequencies: optional query log for the §8 channels.
        weakest: how many weakest lists to report.

    Raises:
        ConfidentialityError: inherited from the underlying formulas on
            malformed inputs.
    """
    if weakest < 1:
        raise ConfidentialityError("must report at least one weakest list")
    masses = merge.masses(term_probabilities)
    ranked = sorted(enumerate(masses), key=lambda im: im[1])
    ordered = sorted(masses)
    n = len(ordered)
    quantiles = (
        ordered[0],
        ordered[n // 4],
        ordered[n // 2],
        ordered[(3 * n) // 4],
        ordered[-1],
    )
    vocab = merge.num_terms
    singleton = merge.singleton_lists()
    exposure = 1.0 if table_size is None else table_size / vocab
    band_mi = None
    accuracy = None
    if query_frequencies is not None:
        band_mi = band_information_bits(merge, query_frequencies)
        accuracy = expected_posterior_concentration(
            merge, query_frequencies
        )
    return ConfidentialityAudit(
        resulting_r=merge.resulting_r(term_probabilities),
        weakest_lists=tuple(ranked[:weakest]),
        singleton_lists=singleton,
        singleton_fraction=singleton / vocab,
        mass_quantiles=quantiles,
        table_exposure=exposure,
        band_information=band_mi,
        identity_accuracy=accuracy,
    )
