"""Analytical models of the evaluation section (§7.2–§7.4).

- :mod:`repro.analysis.workload` — formulas (6), (8), (9) and the curve
  extractors behind Figs. 6, 10, 11, 12;
- :mod:`repro.analysis.storage` — the §7.2 storage-overhead accounting
  (per-element +50%, fleet-wide 1.5 n ×);
- :mod:`repro.analysis.bandwidth` — the §7.3 network model: per-query-term
  response sizes, user/server queries-per-second, top-10 response
  composition, the Google/Altavista/Yahoo comparison and the share
  (in)compressibility experiment.
"""

from repro.analysis.workload import (
    cumulative_workload_curve,
    efficiency_distribution,
    fraction_of_lists_larger_than,
    q_ratio,
    q_ratio_eff,
    q_ratio_by_document_frequency,
    response_size_distribution,
    workload_efficiency_summary,
)
from repro.analysis.storage import StorageReport, storage_report
from repro.analysis.bandwidth import (
    BandwidthModel,
    BandwidthReport,
    compression_experiment,
)
from repro.analysis.audit import ConfidentialityAudit, audit_merge

__all__ = [
    "cumulative_workload_curve",
    "efficiency_distribution",
    "fraction_of_lists_larger_than",
    "q_ratio",
    "q_ratio_eff",
    "q_ratio_by_document_frequency",
    "response_size_distribution",
    "workload_efficiency_summary",
    "StorageReport",
    "storage_report",
    "BandwidthModel",
    "BandwidthReport",
    "compression_experiment",
    "ConfidentialityAudit",
    "audit_merge",
]
