"""Network-bandwidth model (paper §7.3).

§7.3's published numbers, all reproduced by :class:`BandwidthModel`:

- "about 2700 elements are returned from the ODP index per query term on
  average. Assuming that each posting element is encoded using 64 bits,
  this is approximately 170 Kb (21.5 KB) per query term response";
- "The queries in the workload contain on average 2.45 terms, which allows
  for execution of up to 35 queries/second per user and about 200
  queries/second answered by each server on average" (55 Mb/s client
  links, 100 Mb/s server links, 2-out-of-3 sharing);
- "each snippet contains about 250 B including XML formatting, which
  yields 2.5 KB for the top-10 snippets. Thus average total response size
  for the top-10 results is 24 KB";
- the comparison constants: Google 15 KB, Altavista 37 KB, Yahoo 59 KB,
  with compressed-response ratios 3 / 2.4 / 1.6 versus Zerber;
- "Zerber's element shares are almost random, so standard HTML
  compression is ineffective" — :func:`compression_experiment` measures
  that with zlib on real share bytes.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass

from repro.errors import ReproError
from repro.secretsharing.field import DEFAULT_PRIME, PrimeField
from repro.secretsharing.shamir import ShamirScheme
from repro.server.transport import LAN_100_MBPS, WLAN_55_MBPS

#: §7.3 comparison constants (top-10 response sizes, bytes).
GOOGLE_TOP10_BYTES = 15_000
ALTAVISTA_TOP10_BYTES = 37_000
YAHOO_TOP10_BYTES = 59_000

#: §7.3 workload constants.
PAPER_ELEMENTS_PER_QUERY_TERM = 2_700
PAPER_TERMS_PER_QUERY = 2.45
PAPER_SNIPPET_BYTES = 250
PAPER_TOP_K = 10


@dataclass(frozen=True)
class BandwidthReport:
    """The §7.3 derived quantities.

    Attributes:
        response_bits_per_query_term: one server's share stream for one
            query term.
        response_kb_per_query_term: same, in kilobytes (the paper's 21.5).
        query_response_bits_user: what the querying user downloads per
            query (k servers × terms-per-query × per-term response).
        queries_per_second_user: client-link-bound query throughput.
        queries_per_second_server: server-link-bound answer throughput.
        snippet_bytes_top_k: snippet payload for the top-K (the 2.5 KB).
        total_response_bytes_top_k: elements + snippets (the 24 KB).
        vs_google / vs_altavista / vs_yahoo: Zerber top-K response size
            relative to each engine's (>1 means Zerber is bigger).
    """

    response_bits_per_query_term: float
    response_kb_per_query_term: float
    query_response_bits_user: float
    queries_per_second_user: float
    queries_per_second_server: float
    snippet_bytes_top_k: float
    total_response_bytes_top_k: float
    vs_google: float
    vs_altavista: float
    vs_yahoo: float


class BandwidthModel:
    """Parameterized §7.3 algebra."""

    def __init__(
        self,
        elements_per_query_term: float = PAPER_ELEMENTS_PER_QUERY_TERM,
        element_bits: int = 64,
        terms_per_query: float = PAPER_TERMS_PER_QUERY,
        k: int = 2,
        user_bandwidth_bps: float = WLAN_55_MBPS,
        server_bandwidth_bps: float = LAN_100_MBPS,
        snippet_bytes: float = PAPER_SNIPPET_BYTES,
        top_k: int = PAPER_TOP_K,
    ) -> None:
        """Defaults reproduce the paper's setup exactly (2-out-of-3
        sharing, 55/100 Mb/s links, ODP workload averages)."""
        if min(elements_per_query_term, terms_per_query) <= 0:
            raise ReproError("workload averages must be positive")
        if element_bits < 1 or k < 1 or top_k < 1:
            raise ReproError("element_bits, k and top_k must be positive")
        self.elements_per_query_term = elements_per_query_term
        self.element_bits = element_bits
        self.terms_per_query = terms_per_query
        self.k = k
        self.user_bandwidth_bps = user_bandwidth_bps
        self.server_bandwidth_bps = server_bandwidth_bps
        self.snippet_bytes = snippet_bytes
        self.top_k = top_k

    # -- §7.3 insertion/deletion costs -------------------------------------------

    def insert_bandwidth_factor(self, n: int, overhead: float = 1.5) -> float:
        """"Zerber uses 1.5 n times more network bandwidth" for inserts."""
        if n < 1:
            raise ReproError("need at least one server")
        return overhead * n

    def delete_equals_insert_cost(self) -> bool:
        """"The document deletion network cost is thus the same as its
        insertion cost" — encrypted doc IDs force per-element deletes."""
        return True

    # -- §7.3 query costs -----------------------------------------------------------

    def report(self) -> BandwidthReport:
        """Derive every §7.3 number from the configured parameters."""
        per_term_bits = self.elements_per_query_term * self.element_bits
        # The user pulls the response from k servers (shares from each).
        per_query_bits_user = (
            self.k * self.terms_per_query * per_term_bits
        )
        # Each server, per query it answers, uploads one share stream.
        per_query_bits_server = self.terms_per_query * per_term_bits
        snippet_total = self.snippet_bytes * self.top_k
        # §7.3 composes the "average total response size for the top-10
        # results" as ONE query-term element payload (21.5 KB) plus the
        # top-10 snippets (2.5 KB) = 24 KB; we reproduce that arithmetic.
        total_top_k = per_term_bits / 8 + snippet_total
        return BandwidthReport(
            response_bits_per_query_term=per_term_bits,
            response_kb_per_query_term=per_term_bits / 8 / 1000,
            query_response_bits_user=per_query_bits_user,
            queries_per_second_user=(
                self.user_bandwidth_bps / per_query_bits_user
            ),
            queries_per_second_server=(
                self.server_bandwidth_bps / per_query_bits_server
            ),
            snippet_bytes_top_k=snippet_total,
            total_response_bytes_top_k=total_top_k,
            vs_google=total_top_k / GOOGLE_TOP10_BYTES,
            vs_altavista=total_top_k / ALTAVISTA_TOP10_BYTES,
            vs_yahoo=total_top_k / YAHOO_TOP10_BYTES,
        )


def compression_experiment(
    num_elements: int = 2_000,
    k: int = 2,
    n: int = 3,
    seed: int = 0xC02,
) -> dict[str, float]:
    """Measure zlib compressibility of share streams vs plaintext postings.

    "Zerber's element shares are almost random, so standard HTML
    compression is ineffective." We build ``num_elements`` realistic
    posting elements, wire-encode (a) the plaintext postings and (b) one
    server's Shamir share stream, and zlib both.

    Returns:
        {"plaintext_ratio": ..., "share_ratio": ...} where ratio =
        compressed size / raw size (1.0 = incompressible).
    """
    if num_elements < 16:
        raise ReproError("need a non-trivial element count")
    rng = random.Random(seed)
    field = PrimeField(DEFAULT_PRIME)
    scheme = ShamirScheme(k=k, n=n, field=field, rng=rng)
    share_bytes = (field.p.bit_length() + 7) // 8
    plain_parts: list[bytes] = []
    share_parts: list[bytes] = []
    for i in range(num_elements):
        # Realistic plaintext: clustered doc ids, small term ids, skewed tf.
        doc_id = rng.randrange(10_000)
        term_id = rng.randrange(500)
        tf = max(1, min(4095, int(rng.expovariate(1 / 40))))
        secret = (doc_id << 34) | (term_id << 12) | tf
        plain_parts.append(secret.to_bytes(8, "big"))
        shares = scheme.split(secret)
        share_parts.append(shares[0].y.to_bytes(share_bytes, "big"))
    plain_blob = b"".join(plain_parts)
    share_blob = b"".join(share_parts)
    return {
        "plaintext_ratio": len(zlib.compress(plain_blob, 9)) / len(plain_blob),
        "share_ratio": len(zlib.compress(share_blob, 9)) / len(share_blob),
    }
