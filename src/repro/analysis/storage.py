"""Storage-overhead accounting (paper §7.2).

"The number of posting elements that Zerber maintains per index server is
the same as in any conventional inverted index. However, Zerber posting
elements include additional fields to identify the term in the merged set
and the global element ID, which increases element size by about 50%.
Encryption under Shamir's k-out-of-n scheme does not change the element
size. Hence, each Zerber index server uses about 50% more space than an
ordinary inverted index. Since Zerber replicates the index on n servers,
the total index space required is 1.5n times more than for an ordinary
inverted index."

The report derives those factors from the configured
:class:`~repro.core.posting.PackingSpec` rather than hard-coding 1.5, so a
custom layout reports its true overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.posting import PackingSpec
from repro.errors import ReproError


@dataclass(frozen=True)
class StorageReport:
    """Per-element and fleet-wide storage accounting.

    Attributes:
        plain_element_bits: ordinary index element (doc_id + tf).
        zerber_element_bits: Zerber wire element (packed secret + element id).
        per_server_overhead: zerber/plain per-element ratio (§7.2's ≈1.5).
        num_servers: n.
        total_overhead: per_server_overhead * n (§7.2's ≈1.5 n).
        num_elements: posting elements in the indexed collection.
        plain_index_bytes: total bytes of the ordinary single-copy index.
        zerber_fleet_bytes: total bytes across all n Zerber replicas.
    """

    plain_element_bits: int
    zerber_element_bits: int
    per_server_overhead: float
    num_servers: int
    total_overhead: float
    num_elements: int
    plain_index_bytes: int
    zerber_fleet_bytes: int


def storage_report(
    num_elements: int,
    num_servers: int,
    spec: PackingSpec | None = None,
) -> StorageReport:
    """Compute the §7.2 storage comparison for a collection.

    Args:
        num_elements: posting elements in the collection (equal for the
            ordinary index and each Zerber server, per §7.2).
        num_servers: n, the replication degree.
        spec: the element bit layout (standard 64-bit layout by default).
    """
    if num_elements < 0:
        raise ReproError("element count cannot be negative")
    if num_servers < 1:
        raise ReproError("need at least one server")
    spec = spec or PackingSpec()
    plain_bits = spec.plain_element_bits
    zerber_bits = spec.zerber_element_bits
    per_server = zerber_bits / plain_bits
    return StorageReport(
        plain_element_bits=plain_bits,
        zerber_element_bits=zerber_bits,
        per_server_overhead=per_server,
        num_servers=num_servers,
        total_overhead=per_server * num_servers,
        num_elements=num_elements,
        plain_index_bytes=num_elements * plain_bits // 8,
        zerber_fleet_bytes=num_elements * zerber_bits * num_servers // 8,
    )
