"""The Zerber index server (paper §5.3–§5.4, Figure 3).

Each of the n servers holds exactly one Shamir share of every posting
element, keyed by merged-posting-list ID and global element ID, next to the
user-group table it consults before answering. The interface is
deliberately narrow — "providing only a narrow interface to the outside
world (i.e., only insert, delete, and look up posting list elements)" — and
every operation authenticates the caller first.

:meth:`IndexServer.compromise` models an attacker taking the box over
("one can bribe the sysadmin, measure radiation, take over root"): it
exposes everything a root-level adversary could see — shares, list
lengths, the group table, and the update log — which is precisely the
information the §7.1 attack experiments are allowed to use.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import AccessDeniedError, IndexServerError
from repro.server.auth import AuthService, AuthToken
from repro.server.groups import GroupDirectory


@dataclass(frozen=True, slots=True)
class ShareRecord:
    """One stored (or served) share of one posting element.

    Attributes:
        element_id: the owner-minted global element ID — the join key a
            client uses to combine this share with the other servers'.
        group_id: the collaboration group allowed to read the element.
        share_y: this server's y-coordinate of the element's polynomial.
    """

    element_id: int
    group_id: int
    share_y: int

    def wire_bytes(self, share_bytes: int = 9) -> int:
        """On-the-wire size: element id (4) + group id (4) + share."""
        return 4 + 4 + share_bytes


@dataclass(frozen=True, slots=True)
class InsertOp:
    """One element insertion bound for one server."""

    pl_id: int
    element_id: int
    group_id: int
    share_y: int

    def wire_bytes(self, share_bytes: int = 9) -> int:
        """pl id (4) + element id (4) + group id (4) + share."""
        return 4 + 4 + 4 + share_bytes


@dataclass(frozen=True, slots=True)
class DeleteOp:
    """One element deletion ("its owner must delete each element separately")."""

    pl_id: int
    element_id: int

    def wire_bytes(self) -> int:
        return 4 + 4


@dataclass(frozen=True)
class PostingListResponse:
    """One merged posting list's accessible elements, §5.4.2's

    ``PL_ID, [{g_id1, e(doc1, term1, tf1)}, ...]``
    """

    pl_id: int
    records: tuple[ShareRecord, ...]

    def wire_bytes(self, share_bytes: int = 9) -> int:
        # Every record is the same fixed width (element id + group id +
        # share), so the sum is a product — this sizer runs once per
        # lookup response on the read hot path.
        return 4 + len(self.records) * (4 + 4 + share_bytes)


@dataclass(frozen=True)
class CompromisedView:
    """Everything an adversary who owns the box can observe.

    Attributes:
        server_id: which server fell.
        x_coordinate: the server's public Shamir x-coordinate.
        posting_store: pl_id -> list of stored share records. Lengths of
            these lists are the merged document frequencies the adversary
            can read directly.
        group_table: the user-group membership snapshot.
        update_log: per accepted batch, the (pl_id, element_id) pairs it
            carried, in arrival order — the raw material of the §7.1
            correlation attack.
        query_log: per lookup, (user_id, requested pl_ids) — what §7.1
            concedes Alice sees ("Alice can see which posting lists each
            user queries at her compromised server").
    """

    server_id: str
    x_coordinate: int
    posting_store: dict[int, list[ShareRecord]]
    group_table: dict[int, frozenset[str]]
    update_log: list[list[tuple[int, int]]]
    query_log: list[tuple[str, tuple[int, ...]]]

    def merged_list_lengths(self) -> dict[int, int]:
        """pl_id -> combined posting-list length (all the lengths leak)."""
        return {pl: len(records) for pl, records in self.posting_store.items()}


class IndexServer:
    """One of the n index servers: share store + ACL + narrow interface."""

    def __init__(
        self,
        server_id: str,
        x_coordinate: int,
        auth: AuthService,
        groups: GroupDirectory,
        share_bytes: int = 9,
    ) -> None:
        """Args:
        server_id: unique name (also its network endpoint).
        x_coordinate: the server's public Shamir x-coordinate.
        auth: the enterprise authentication service it trusts.
        groups: its replica of the user-group table.
        share_bytes: wire size of one share value (ceil(bits(p)/8)).
        """
        if x_coordinate <= 0:
            raise IndexServerError("x-coordinate must be positive")
        self.server_id = server_id
        self.x_coordinate = x_coordinate
        self.share_bytes = share_bytes
        self._auth = auth
        self._groups = groups
        self._store: dict[int, dict[int, ShareRecord]] = defaultdict(dict)
        self._update_log: list[list[tuple[int, int]]] = []
        self._query_log: list[tuple[str, tuple[int, ...]]] = []
        self._persistence = None

    # -- persistence hook ------------------------------------------------------
    #
    # Durability is the seat's own concern: every *accepted* mutation —
    # user-facing inserts/deletes and the replication-channel adopt/drop
    # — is reported to the attached store after validation succeeds, so
    # rejected batches never hit disk. This replaces the old
    # ``attach_log`` bound-method monkey-patching: the hook is part of
    # the server, not a wrapper taped over it.

    def attach_store(self, store) -> None:
        """Wire a seat store (anything with ``append_inserts`` /
        ``append_deletes``) into this server's mutation path.

        Raises:
            IndexServerError: a store is already attached (detach first;
                two stores double-logging is never what anyone wants).
        """
        if self._persistence is not None:
            raise IndexServerError(
                f"server {self.server_id!r} already has a persistence store"
            )
        self._persistence = store

    def detach_store(self):
        """Unhook and return the attached store (None when there is none).

        Decommissioning uses this so a store can be closed and destroyed
        without the seat's final wipe trying to log into it.
        """
        store, self._persistence = self._persistence, None
        return store

    @property
    def persistence(self):
        """The attached seat store, or None."""
        return self._persistence

    def bulk_load(
        self, records: dict[int, dict[int, ShareRecord]]
    ) -> int:
        """Load a replayed store wholesale (the recovery path's public API).

        Args:
            records: ``pl_id -> {element_id -> ShareRecord}`` — exactly
                what a seat store's ``replay()`` returns.

        Returns:
            The number of elements now stored.

        Raises:
            IndexServerError: the server already holds data (recovery
                happens before a seat serves traffic; merging two states
                silently would hide a double-recovery bug).
        """
        if self.num_elements:
            raise IndexServerError("bulk-load target server is not empty")
        for pl_id, plist in records.items():
            self._store[pl_id].update(plist)
        return self.num_elements

    # -- narrow interface: insert --------------------------------------------

    def insert_batch(
        self, token: AuthToken, operations: Sequence[InsertOp]
    ) -> int:
        """Accept one update batch; returns elements inserted.

        The whole batch is logged as a single update event — batching is the
        §5.4.1 defence against correlation attacks, and the log models what
        a compromised server's watcher can actually distinguish.

        Raises:
            AuthError: bad token.
            AccessDeniedError: inserting into a group the user is outside.
            IndexServerError: duplicate element ID within a posting list.

        Batches are atomic: every operation is validated before any is
        applied, so a rejected batch leaves neither the in-memory store
        nor the persistence store touched — a partial apply that never
        reached the WAL would silently vanish on restart and break
        replica byte-identity.
        """
        user_id = self._auth.verify(token)
        seen: set[tuple[int, int]] = set()
        for op in operations:
            if not self._groups.is_member(user_id, op.group_id):
                raise AccessDeniedError(
                    f"user {user_id!r} is not in group {op.group_id}"
                )
            key = (op.pl_id, op.element_id)
            if key in seen or op.element_id in self._store.get(
                op.pl_id, ()
            ):
                raise IndexServerError(
                    f"element {op.element_id} already exists in list {op.pl_id}"
                )
            seen.add(key)
        batch_entry: list[tuple[int, int]] = []
        for op in operations:
            self._store[op.pl_id][op.element_id] = ShareRecord(
                element_id=op.element_id,
                group_id=op.group_id,
                share_y=op.share_y,
            )
            batch_entry.append((op.pl_id, op.element_id))
        if batch_entry:
            self._update_log.append(batch_entry)
        if self._persistence is not None:
            self._persistence.append_inserts(operations)
        return len(batch_entry)

    # -- narrow interface: delete -----------------------------------------------

    def delete(self, token: AuthToken, operations: Sequence[DeleteOp]) -> int:
        """Delete elements one by one; returns how many existed.

        "Zerber elements (and hence the document ID field) are encrypted,
        so the server cannot determine which posting elements have the same
        document ID. To delete a document, its owner must delete each
        element separately." (§7.3)

        Like :meth:`insert_batch`, the batch is atomic: ACLs are checked
        for every targeted record before any is removed, so a rejected
        batch cannot leave deletions applied in memory that never
        reached the persistence store (they would resurrect on restart).
        """
        user_id = self._auth.verify(token)
        for op in operations:
            record = self._store.get(op.pl_id, {}).get(op.element_id)
            if record is not None and not self._groups.is_member(
                user_id, record.group_id
            ):
                raise AccessDeniedError(
                    f"user {user_id!r} may not delete from group {record.group_id}"
                )
        deleted = 0
        for op in operations:
            plist = self._store.get(op.pl_id)
            if plist is None:
                continue
            if plist.pop(op.element_id, None) is not None:
                deleted += 1
        if self._persistence is not None:
            self._persistence.append_deletes(operations)
        return deleted

    # -- narrow interface: lookup ---------------------------------------------------

    def get_posting_lists(
        self, token: AuthToken, pl_ids: Iterable[int]
    ) -> list[PostingListResponse]:
        """§5.4.2 lookup: return each requested list's *accessible* elements.

        The server "determines her groups by consulting the group table"
        and returns a share of every element in a group she belongs to.
        Unknown posting lists yield empty responses rather than errors: an
        error would tell the caller the list has never been used anywhere,
        which §6.4 works to conceal.
        """
        user_id = self._auth.verify(token)
        user_groups = self._groups.groups_of(user_id)
        requested = tuple(pl_ids)
        self._query_log.append((user_id, requested))
        responses = []
        for pl_id in requested:
            stored = self._store.get(pl_id, {})
            records = tuple(
                record
                for record in stored.values()
                if record.group_id in user_groups
            )
            responses.append(PostingListResponse(pl_id=pl_id, records=records))
        return responses

    # -- pod-to-pod replication seam ----------------------------------------------
    #
    # Rebalancing a sharded cluster moves posting lists between *slot-
    # aligned* servers of different pods. Slot s of every pod holds the
    # same Shamir share of every element (the owner splits once and fans
    # the same y out to each replica pod), so a server-to-server transfer
    # ships exactly the bytes the destination would have received from
    # the owner — shares only, confidentiality unchanged. These methods
    # bypass the narrow insert/delete/lookup interface on purpose: they
    # are the operator's replication channel, not a user-facing one.

    def export_posting_list(self, pl_id: int) -> list[ShareRecord]:
        """This server's stored share records for one merged list."""
        return list(self._store.get(pl_id, {}).values())

    def adopt_posting_list(
        self, pl_id: int, records: Sequence[ShareRecord]
    ) -> list[ShareRecord]:
        """Merge transferred records into the store (idempotent).

        Returns the records actually added, so the caller can append
        exactly those to this seat's WAL.
        """
        plist = self._store[pl_id]
        added: list[ShareRecord] = []
        for record in records:
            if record.element_id not in plist:
                plist[record.element_id] = record
                added.append(record)
        if added and self._persistence is not None:
            self._persistence.append_inserts(
                InsertOp(
                    pl_id=pl_id,
                    element_id=record.element_id,
                    group_id=record.group_id,
                    share_y=record.share_y,
                )
                for record in added
            )
        return added

    def drop_posting_list(self, pl_id: int) -> list[ShareRecord]:
        """Discard a list this server no longer owns; returns the records."""
        plist = self._store.pop(pl_id, None)
        removed = list(plist.values()) if plist else []
        if removed and self._persistence is not None:
            self._persistence.append_deletes(
                DeleteOp(pl_id=pl_id, element_id=record.element_id)
                for record in removed
            )
        return removed

    def export_snapshot(
        self, pl_ids: Sequence[int]
    ) -> tuple[bytes, int]:
        """Seal the named lists into one ``ZSNP`` image (bulk transfer).

        Returns ``(image, record_count)``. Lists this server does not
        hold contribute nothing — the receiver drops its own copy of
        every *requested* list, so shipping an absent list is how a
        stale copy at the far end dies.
        """
        # Imported here: repro.storage.snapshot imports ShareRecord from
        # this module, so a top-level import would be a cycle.
        from repro.storage.snapshot import snapshot_bytes

        subset = {
            pl_id: self._store[pl_id]
            for pl_id in pl_ids
            if self._store.get(pl_id)
        }
        return snapshot_bytes(subset)

    def ingest_snapshot(
        self, pl_ids: Sequence[int], snapshot: bytes, suffix: bytes = b""
    ) -> int:
        """Bulk-load a shipped snapshot, replacing the listed lists.

        Replace semantics: every listed ``pl_id`` is dropped first (a
        stale seat may hold shares of since-deleted elements — an
        idempotent merge could never remove those), then the CRC-checked
        image is loaded in one pass, then ``suffix`` — segment-framed
        operations logged after the image's rotation point — is
        replayed. All three phases run through the logged mutation
        paths, so the seat's WAL stays a faithful history.

        Returns the number of elements now stored across the listed
        lists.

        Raises:
            StorageError: the image or suffix fails validation (CRC,
                framing), or carries a list outside ``pl_ids`` — a
                shipment must not smuggle writes into lists the caller
                never named.
        """
        from repro.errors import StorageError
        from repro.storage.segment import decode_op_frames
        from repro.storage.snapshot import parse_snapshot_bytes

        source = f"snapshot shipped to {self.server_id}"
        loaded = parse_snapshot_bytes(snapshot, source=source)
        wanted = set(pl_ids)
        unknown = set(loaded) - wanted
        if unknown:
            raise StorageError(
                f"{source}: image carries unrequested lists "
                f"{sorted(unknown)}"
            )
        operations = decode_op_frames(suffix, source=source)
        for op in operations:
            if op.pl_id not in wanted:
                raise StorageError(
                    f"{source}: suffix carries unrequested list {op.pl_id}"
                )
        for pl_id in sorted(wanted):
            self.drop_posting_list(pl_id)
            records = loaded.get(pl_id)
            if records:
                self.adopt_posting_list(pl_id, list(records.values()))
        for op in operations:
            if isinstance(op, InsertOp):
                self.adopt_posting_list(
                    op.pl_id,
                    (
                        ShareRecord(
                            element_id=op.element_id,
                            group_id=op.group_id,
                            share_y=op.share_y,
                        ),
                    ),
                )
            else:
                plist = self._store.get(op.pl_id)
                if (
                    plist is not None
                    and plist.pop(op.element_id, None) is not None
                    and self._persistence is not None
                ):
                    self._persistence.append_deletes((op,))
        return sum(len(self._store.get(pl_id, {})) for pl_id in wanted)

    # -- operator/diagnostic surface ---------------------------------------------

    @property
    def num_posting_lists(self) -> int:
        return sum(1 for plist in self._store.values() if plist)

    @property
    def num_elements(self) -> int:
        return sum(len(plist) for plist in self._store.values())

    def storage_bytes(self) -> int:
        """Bytes this server's store occupies on the wire encoding."""
        per_record = 4 + 4 + 4 + self.share_bytes  # pl id + record fields
        return self.num_elements * per_record

    # -- the attack surface ------------------------------------------------------

    def compromise(self) -> CompromisedView:
        """Hand the adversary the whole box (for the §7.1 experiments)."""
        return CompromisedView(
            server_id=self.server_id,
            x_coordinate=self.x_coordinate,
            posting_store={
                pl_id: list(plist.values())
                for pl_id, plist in self._store.items()
                if plist
            },
            group_table=self._groups.snapshot(),
            update_log=[list(batch) for batch in self._update_log],
            query_log=list(self._query_log),
        )
