"""Simulated network with bandwidth accounting (paper §7.3).

§7.3's evaluation is algebra over message sizes and link rates: "users
connect over a 55 Mb/s wireless LAN, while servers use 100 Mb/s LAN
connections." This module provides the substrate for reproducing those
numbers: named endpoints, per-link bandwidth/latency, and an accounting
ledger of every byte that crossed each link, broken down by message kind
(insert / delete / lookup / snippet).

The network does not move real packets — handlers are invoked in-process —
but every call charges its wire size against the link, so the §7.3 bench
can report bytes-per-operation and derived queries-per-second exactly the
way the paper does.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.errors import TransportError, UnknownEndpointError

#: §7.3 link presets.
WLAN_55_MBPS = 55_000_000.0
LAN_100_MBPS = 100_000_000.0


@dataclass(frozen=True)
class LinkSpec:
    """One directed link's characteristics.

    Attributes:
        bandwidth_bps: rated bandwidth in bits per second.
        latency_s: one-way propagation delay in seconds.
    """

    bandwidth_bps: float = LAN_100_MBPS
    latency_s: float = 0.0005

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise TransportError("bandwidth must be positive")
        if self.latency_s < 0:
            raise TransportError("latency must be non-negative")

    def transfer_time(self, payload_bytes: int) -> float:
        """Seconds to move ``payload_bytes`` across this link."""
        if payload_bytes < 0:
            raise TransportError("negative payload size")
        return self.latency_s + (payload_bytes * 8) / self.bandwidth_bps


@dataclass
class NetworkStats:
    """Accumulated traffic ledger."""

    bytes_by_link: dict[tuple[str, str], int] = field(
        default_factory=lambda: defaultdict(int)
    )
    bytes_by_kind: dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    messages_by_kind: dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    simulated_seconds: float = 0.0

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_link.values())

    def reset(self) -> None:
        self.bytes_by_link.clear()
        self.bytes_by_kind.clear()
        self.messages_by_kind.clear()
        self.simulated_seconds = 0.0


class SimulatedNetwork:
    """Endpoint registry + message router + traffic ledger."""

    def __init__(self, default_link: LinkSpec | None = None) -> None:
        self._endpoints: dict[str, Callable[[str, Any], Any]] = {}
        self._links: dict[tuple[str, str], LinkSpec] = {}
        self._default_link = default_link or LinkSpec()
        self.stats = NetworkStats()
        # The parallel read fan-out issues calls from worker threads;
        # the ledger increments must not lose updates. Handlers run
        # outside the lock (they may be slow, or call back in).
        self._stats_lock = threading.Lock()

    # -- topology ------------------------------------------------------------

    def register(
        self, name: str, handler: Callable[[str, Any], Any]
    ) -> None:
        """Attach an endpoint. ``handler(kind, message) -> response``."""
        if name in self._endpoints:
            raise TransportError(f"endpoint {name!r} already registered")
        self._endpoints[name] = handler

    def unregister(self, name: str) -> None:
        """Detach an endpoint (a decommissioned server leaves the network)."""
        if name not in self._endpoints:
            raise UnknownEndpointError(
                name, f"endpoint {name!r} is not registered"
            )
        del self._endpoints[name]

    def set_link(self, src: str, dst: str, spec: LinkSpec) -> None:
        """Configure one directed link (both directions need two calls)."""
        self._links[(src, dst)] = spec

    def link(self, src: str, dst: str) -> LinkSpec:
        return self._links.get((src, dst), self._default_link)

    def endpoints(self) -> list[str]:
        return sorted(self._endpoints)

    def has_endpoint(self, name: str) -> bool:
        return name in self._endpoints

    # -- messaging --------------------------------------------------------------

    def call(
        self,
        src: str,
        dst: str,
        kind: str,
        message: Any,
        request_bytes: int,
        response_bytes_of: Callable[[Any], int] | None = None,
    ) -> Any:
        """Deliver ``message`` to ``dst`` and account the traffic.

        Args:
            src: sender endpoint name (need not be registered).
            dst: receiver endpoint name (must be registered).
            kind: message kind for the per-kind ledger (e.g. "lookup").
            message: the payload object handed to the handler.
            request_bytes: wire size of the request.
            response_bytes_of: sizer for the handler's response; defaults
                to 0 (fire-and-forget accounting).

        Returns:
            The handler's response.

        Raises:
            UnknownEndpointError: unknown destination — typed, and naming
                the endpoint, because the caller may legitimately race a
                pod retirement (the failover ladder catches it as an
                ordinary :class:`TransportError` and moves on).
        """
        handler = self._endpoints.get(dst)
        if handler is None:
            raise UnknownEndpointError(dst)
        if request_bytes < 0:
            raise TransportError("negative request size")
        forward = self.link(src, dst)
        with self._stats_lock:
            self.stats.bytes_by_link[(src, dst)] += request_bytes
            self.stats.bytes_by_kind[kind] += request_bytes
            self.stats.messages_by_kind[kind] += 1
            self.stats.simulated_seconds += forward.transfer_time(
                request_bytes
            )
        response = handler(kind, message)
        if response_bytes_of is not None:
            size = response_bytes_of(response)
            backward = self.link(dst, src)
            with self._stats_lock:
                self.stats.bytes_by_link[(dst, src)] += size
                self.stats.bytes_by_kind[kind] += size
                self.stats.simulated_seconds += backward.transfer_time(size)
        return response


class ConcurrentDispatcher:
    """Thread-pooled fan-out with a deterministic merge order.

    The read path issues one fetch per replica pod per round; the pods
    are independent, so the fetches can run concurrently — but the
    results must fold back in a fixed order or diagnostics (and any
    order-sensitive merge) would depend on thread scheduling.
    :meth:`map_ordered` returns results in *submission* order no matter
    which call finishes first, and runs single calls inline so the
    common one-pod round never pays for a thread hop.

    The executor is created lazily on the first multi-call dispatch and
    shared across calls (worker threads are reused, not churned per
    query).
    """

    def __init__(
        self,
        max_workers: int = 8,
        thread_name_prefix: str = "zerber-fanout",
    ) -> None:
        """Args:
        max_workers: thread-pool width; 1 forces sequential dispatch
            (useful to A/B the parallel path against it).
        thread_name_prefix: worker-thread name prefix. Deployments pass
            a per-instance prefix so lifecycle tests can prove *their*
            workers died with the deployment's ``close()``.
        """
        if max_workers < 1:
            raise TransportError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self._max_workers = max_workers
        self.thread_name_prefix = thread_name_prefix
        self._executor: ThreadPoolExecutor | None = None
        self._executor_lock = threading.Lock()

    def map_ordered(self, calls: Sequence[Callable[[], Any]]) -> list[Any]:
        """Run every thunk, return their results in submission order.

        An exception from any call is re-raised — the earliest failing
        call in submission order wins, after every future has settled
        (no call is abandoned mid-flight with shared state half-merged).
        """
        calls = list(calls)
        if len(calls) <= 1 or self._max_workers == 1:
            return [call() for call in calls]
        executor = self._ensure_executor()
        futures: list[Future] = [executor.submit(call) for call in calls]
        outcomes = []
        error: BaseException | None = None
        for future in futures:
            try:
                outcomes.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                outcomes.append(None)
                if error is None:
                    error = exc
        if error is not None:
            raise error
        return outcomes

    def submit(self, call: Callable[[], Any]) -> Future:
        """Run one thunk on the pool; returns its :class:`Future`.

        The escape hatch for callers that race calls instead of joining
        them all (hedged reads: primary leg vs delayed backup leg,
        first answer wins). Unlike :meth:`map_ordered` this never runs
        inline — the caller needs to keep the current thread free to
        time the race.
        """
        return self._ensure_executor().submit(call)

    def _ensure_executor(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix=self.thread_name_prefix,
                )
            return self._executor

    def shutdown(self) -> None:
        """Release the worker threads (idempotent)."""
        with self._executor_lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
