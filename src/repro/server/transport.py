"""Simulated network with bandwidth accounting (paper §7.3).

§7.3's evaluation is algebra over message sizes and link rates: "users
connect over a 55 Mb/s wireless LAN, while servers use 100 Mb/s LAN
connections." This module provides the substrate for reproducing those
numbers: named endpoints, per-link bandwidth/latency, and an accounting
ledger of every byte that crossed each link, broken down by message kind
(insert / delete / lookup / snippet).

The network does not move real packets — handlers are invoked in-process —
but every call charges its wire size against the link, so the §7.3 bench
can report bytes-per-operation and derived queries-per-second exactly the
way the paper does.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import TransportError

#: §7.3 link presets.
WLAN_55_MBPS = 55_000_000.0
LAN_100_MBPS = 100_000_000.0


@dataclass(frozen=True)
class LinkSpec:
    """One directed link's characteristics.

    Attributes:
        bandwidth_bps: rated bandwidth in bits per second.
        latency_s: one-way propagation delay in seconds.
    """

    bandwidth_bps: float = LAN_100_MBPS
    latency_s: float = 0.0005

    def __post_init__(self) -> None:
        if self.bandwidth_bps <= 0:
            raise TransportError("bandwidth must be positive")
        if self.latency_s < 0:
            raise TransportError("latency must be non-negative")

    def transfer_time(self, payload_bytes: int) -> float:
        """Seconds to move ``payload_bytes`` across this link."""
        if payload_bytes < 0:
            raise TransportError("negative payload size")
        return self.latency_s + (payload_bytes * 8) / self.bandwidth_bps


@dataclass
class NetworkStats:
    """Accumulated traffic ledger."""

    bytes_by_link: dict[tuple[str, str], int] = field(
        default_factory=lambda: defaultdict(int)
    )
    bytes_by_kind: dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    messages_by_kind: dict[str, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    simulated_seconds: float = 0.0

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_link.values())

    def reset(self) -> None:
        self.bytes_by_link.clear()
        self.bytes_by_kind.clear()
        self.messages_by_kind.clear()
        self.simulated_seconds = 0.0


class SimulatedNetwork:
    """Endpoint registry + message router + traffic ledger."""

    def __init__(self, default_link: LinkSpec | None = None) -> None:
        self._endpoints: dict[str, Callable[[str, Any], Any]] = {}
        self._links: dict[tuple[str, str], LinkSpec] = {}
        self._default_link = default_link or LinkSpec()
        self.stats = NetworkStats()

    # -- topology ------------------------------------------------------------

    def register(
        self, name: str, handler: Callable[[str, Any], Any]
    ) -> None:
        """Attach an endpoint. ``handler(kind, message) -> response``."""
        if name in self._endpoints:
            raise TransportError(f"endpoint {name!r} already registered")
        self._endpoints[name] = handler

    def unregister(self, name: str) -> None:
        """Detach an endpoint (a decommissioned server leaves the network)."""
        if name not in self._endpoints:
            raise TransportError(f"endpoint {name!r} is not registered")
        del self._endpoints[name]

    def set_link(self, src: str, dst: str, spec: LinkSpec) -> None:
        """Configure one directed link (both directions need two calls)."""
        self._links[(src, dst)] = spec

    def link(self, src: str, dst: str) -> LinkSpec:
        return self._links.get((src, dst), self._default_link)

    def endpoints(self) -> list[str]:
        return sorted(self._endpoints)

    def has_endpoint(self, name: str) -> bool:
        return name in self._endpoints

    # -- messaging --------------------------------------------------------------

    def call(
        self,
        src: str,
        dst: str,
        kind: str,
        message: Any,
        request_bytes: int,
        response_bytes_of: Callable[[Any], int] | None = None,
    ) -> Any:
        """Deliver ``message`` to ``dst`` and account the traffic.

        Args:
            src: sender endpoint name (need not be registered).
            dst: receiver endpoint name (must be registered).
            kind: message kind for the per-kind ledger (e.g. "lookup").
            message: the payload object handed to the handler.
            request_bytes: wire size of the request.
            response_bytes_of: sizer for the handler's response; defaults
                to 0 (fire-and-forget accounting).

        Returns:
            The handler's response.

        Raises:
            TransportError: unknown destination.
        """
        handler = self._endpoints.get(dst)
        if handler is None:
            raise TransportError(f"unknown endpoint {dst!r}")
        if request_bytes < 0:
            raise TransportError("negative request size")
        forward = self.link(src, dst)
        self.stats.bytes_by_link[(src, dst)] += request_bytes
        self.stats.bytes_by_kind[kind] += request_bytes
        self.stats.messages_by_kind[kind] += 1
        self.stats.simulated_seconds += forward.transfer_time(request_bytes)
        response = handler(kind, message)
        if response_bytes_of is not None:
            size = response_bytes_of(response)
            backward = self.link(dst, src)
            self.stats.bytes_by_link[(dst, src)] += size
            self.stats.bytes_by_kind[kind] += size
            self.stats.simulated_seconds += backward.transfer_time(size)
        return response
