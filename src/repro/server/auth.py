"""Enterprise authentication service (paper §2, §5.4.2).

"Members are, however, willing to trust the enterprise's authentication
facilities" and "the index servers rely on an enterprise-wide authentication
service, such as one normally finds in today's large enterprises; Kerberos
or any other approach to authentication in distributed systems can be
adopted here."

We model that facility as a token service: users authenticate once with a
credential and receive an HMAC-signed, expiring token; every index server
holds the service's verification key (the enterprise trust anchor) and
verifies tokens locally — no round trip per request, like a Kerberos ticket.
The tokens carry no key material for the *index content*; Zerber remains
key-management-free for documents.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass

from repro.errors import AuthError


@dataclass(frozen=True, slots=True)
class AuthToken:
    """A signed authentication ticket.

    Attributes:
        user_id: the authenticated principal.
        issued_at: logical issue time (service clock tick).
        expires_at: logical expiry tick.
        signature: HMAC-SHA256 over the other fields.
    """

    user_id: str
    issued_at: int
    expires_at: int
    signature: bytes

    def payload(self) -> bytes:
        """The byte string the signature covers."""
        return f"{self.user_id}\x00{self.issued_at}\x00{self.expires_at}".encode()

    def wire_bytes(self) -> int:
        """Approximate on-the-wire size (user id + 2 ints + 32-byte MAC)."""
        return len(self.user_id) + 8 + 8 + 32


class AuthService:
    """The enterprise-wide token issuer and verifier.

    A logical clock stands in for wall time so tests control expiry
    deterministically. Credentials are random per-user secrets distributed
    out of band (the enterprise's existing account provisioning).
    """

    def __init__(self, token_lifetime: int = 1000) -> None:
        """Args:
        token_lifetime: validity window in logical ticks.
        """
        if token_lifetime < 1:
            raise AuthError("token lifetime must be positive")
        self._signing_key = secrets.token_bytes(32)
        self._credentials: dict[str, bytes] = {}
        self._revoked_users: set[str] = set()
        self._clock = 0
        self._token_lifetime = token_lifetime

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> int:
        return self._clock

    def advance_clock(self, ticks: int = 1) -> int:
        """Advance logical time (tests use this to expire tokens)."""
        if ticks < 0:
            raise AuthError("time only moves forward")
        self._clock += ticks
        return self._clock

    # -- provisioning ----------------------------------------------------------

    def register_user(self, user_id: str) -> bytes:
        """Provision an account; returns the credential handed to the user."""
        if not user_id:
            raise AuthError("user_id must be non-empty")
        if user_id in self._credentials:
            raise AuthError(f"user {user_id!r} already registered")
        credential = secrets.token_bytes(16)
        self._credentials[user_id] = credential
        self._revoked_users.discard(user_id)
        return credential

    def deprovision_user(self, user_id: str) -> None:
        """Disable an account; outstanding tokens are rejected immediately."""
        self._credentials.pop(user_id, None)
        self._revoked_users.add(user_id)

    # -- tokens -------------------------------------------------------------------

    def _sign(self, payload: bytes) -> bytes:
        return hmac.new(self._signing_key, payload, hashlib.sha256).digest()

    def issue_token(self, user_id: str, credential: bytes) -> AuthToken:
        """Authenticate with a credential and obtain a ticket.

        Raises:
            AuthError: unknown user or wrong credential.
        """
        stored = self._credentials.get(user_id)
        if stored is None or not hmac.compare_digest(stored, credential):
            raise AuthError(f"authentication failed for {user_id!r}")
        token = AuthToken(
            user_id=user_id,
            issued_at=self._clock,
            expires_at=self._clock + self._token_lifetime,
            signature=b"",
        )
        return AuthToken(
            user_id=token.user_id,
            issued_at=token.issued_at,
            expires_at=token.expires_at,
            signature=self._sign(token.payload()),
        )

    def verify(self, token: AuthToken) -> str:
        """Validate a ticket and return the principal.

        Index servers call this on every request ("Each non-compromised
        index server authenticates the user ... before giving her an
        element in response to her query").

        Raises:
            AuthError: bad signature, expired ticket, or revoked account.
        """
        if token.user_id in self._revoked_users:
            raise AuthError(f"user {token.user_id!r} is deprovisioned")
        if token.user_id not in self._credentials:
            raise AuthError(f"unknown user {token.user_id!r}")
        if not hmac.compare_digest(self._sign(token.payload()), token.signature):
            raise AuthError("token signature invalid")
        if token.expires_at <= self._clock:
            raise AuthError("token expired")
        return token.user_id
