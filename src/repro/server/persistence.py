"""Durable storage for index servers (paper §5.4.1).

"The element IDs help an index recover after failure" — this module makes
that sentence concrete. Each server can attach a :class:`PostingLog`, an
append-only write-ahead log of insert/delete records keyed by
``(pl_id, element_id)``. Because element IDs are globally unique within
their posting list, replaying the log is idempotent and order-tolerant
past the last checkpoint, which is exactly why Zerber gives elements
stable public IDs instead of positional addresses.

Format: one record per line —

    I <pl_id> <element_id> <group_id> <share_y>
    D <pl_id> <element_id>
    C <snapshot line count>          (checkpoint marker)

Shares are integers in Z_p; the log never stores anything but shares, so
a stolen disk is exactly as useless as a compromised server (§5).
"""

from __future__ import annotations

import os
import pathlib
from typing import Iterable

from repro.errors import IndexServerError
from repro.server.index_server import InsertOp, DeleteOp, ShareRecord


class PostingLog:
    """Append-only WAL + snapshot persistence for one server's store."""

    def __init__(self, path: str | pathlib.Path) -> None:
        """Args:
        path: the log file; created empty if absent.
        """
        self._path = pathlib.Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self._path, "a", encoding="ascii")
        self.records_appended = 0

    # -- writing ------------------------------------------------------------

    def append_inserts(self, operations: Iterable[InsertOp]) -> int:
        """Log one accepted insert batch (call after ACL checks pass)."""
        count = 0
        for op in operations:
            self._handle.write(
                f"I {op.pl_id} {op.element_id} {op.group_id} {op.share_y}\n"
            )
            count += 1
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.records_appended += count
        return count

    def append_deletes(self, operations: Iterable[DeleteOp]) -> int:
        """Log accepted deletions."""
        count = 0
        for op in operations:
            self._handle.write(f"D {op.pl_id} {op.element_id}\n")
            count += 1
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.records_appended += count
        return count

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    # -- recovery -------------------------------------------------------------

    def replay(self) -> dict[int, dict[int, ShareRecord]]:
        """Rebuild the posting store from the log.

        Returns:
            pl_id -> {element_id -> ShareRecord}, the exact in-memory
            layout of :class:`~repro.server.index_server.IndexServer`.

        Raises:
            IndexServerError: on a corrupt record (torn writes at the
                tail are tolerated: a final partial line is skipped).
        """
        store: dict[int, dict[int, ShareRecord]] = {}
        if not self._path.exists():
            return store
        with open(self._path, "r", encoding="ascii") as handle:
            lines = handle.readlines()
        for line_no, line in enumerate(lines):
            if not line.endswith("\n"):
                if line_no == len(lines) - 1:
                    break  # torn tail write: discard
                raise IndexServerError(f"corrupt log line {line_no}")
            parts = line.split()
            if not parts:
                continue
            kind = parts[0]
            try:
                if kind == "I":
                    pl_id, element_id, group_id, share_y = map(int, parts[1:])
                    store.setdefault(pl_id, {})[element_id] = ShareRecord(
                        element_id=element_id,
                        group_id=group_id,
                        share_y=share_y,
                    )
                elif kind == "D":
                    pl_id, element_id = map(int, parts[1:])
                    store.get(pl_id, {}).pop(element_id, None)
                elif kind == "C":
                    continue  # checkpoint markers are informational
                else:
                    raise ValueError(kind)
            except (ValueError, IndexError) as exc:
                raise IndexServerError(
                    f"corrupt log record at line {line_no}: {line!r}"
                ) from exc
        return store

    def compact(self, store: dict[int, dict[int, ShareRecord]]) -> int:
        """Rewrite the log as a snapshot of the live store.

        Returns the number of records written. The old log is atomically
        replaced (write to a temp file, fsync, rename).
        """
        tmp_path = self._path.with_suffix(".compact")
        count = 0
        with open(tmp_path, "w", encoding="ascii") as tmp:
            for pl_id in sorted(store):
                for element_id in sorted(store[pl_id]):
                    record = store[pl_id][element_id]
                    tmp.write(
                        f"I {pl_id} {record.element_id} "
                        f"{record.group_id} {record.share_y}\n"
                    )
                    count += 1
            tmp.write(f"C {count}\n")
            tmp.flush()
            os.fsync(tmp.fileno())
        self.close()
        os.replace(tmp_path, self._path)
        self._handle = open(self._path, "a", encoding="ascii")
        return count


def attach_log(server, log: PostingLog) -> None:
    """Wire a :class:`PostingLog` into a live IndexServer.

    Wraps the server's narrow interface so every accepted mutation is
    logged *after* validation succeeds (rejected batches never hit disk).
    """
    original_insert = server.insert_batch
    original_delete = server.delete

    def insert_batch(token, operations):
        inserted = original_insert(token, operations)
        log.append_inserts(operations)
        return inserted

    def delete(token, operations):
        deleted = original_delete(token, operations)
        log.append_deletes(operations)
        return deleted

    server.insert_batch = insert_batch
    server.delete = delete
    server.posting_log = log


def recover_server(server, log: PostingLog) -> int:
    """Load a replayed store into a fresh IndexServer; returns element count.

    The server must be empty (recovery happens before it serves traffic).
    """
    if server.num_elements:
        raise IndexServerError("recovery target server is not empty")
    replayed = log.replay()
    for pl_id, records in replayed.items():
        server._store[pl_id].update(records)
    return server.num_elements
