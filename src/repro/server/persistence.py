"""Durable storage for index servers (paper §5.4.1).

"The element IDs help an index recover after failure" — this module makes
that sentence concrete. Each server can attach a :class:`PostingLog`, an
append-only write-ahead log of insert/delete records keyed by
``(pl_id, element_id)``. Because element IDs are globally unique within
their posting list, replaying the log is idempotent and order-tolerant
past the last checkpoint, which is exactly why Zerber gives elements
stable public IDs instead of positional addresses.

Format: one record per line —

    I <pl_id> <element_id> <group_id> <share_y>
    D <pl_id> <element_id>
    C <snapshot line count>          (checkpoint marker)

Shares are integers in Z_p; the log never stores anything but shares, so
a stolen disk is exactly as useless as a compromised server (§5).

This flat line-per-record layout is the ``storage="flat"`` engine of the
cluster; large stores should prefer the binary segment + snapshot engine
in :mod:`repro.storage`, which recovers from a snapshot plus a short
segment suffix instead of replaying the entire history.
"""

from __future__ import annotations

import os
import pathlib
from typing import Iterable

from repro.errors import CheckpointMismatchError, IndexServerError
from repro.server.index_server import InsertOp, DeleteOp, ShareRecord


def fsync_dir(path: str | pathlib.Path) -> None:
    """fsync a directory so a rename/create inside it is durable.

    ``os.replace`` makes a swap atomic but not persistent: until the
    parent directory's metadata reaches disk, a crash can resurrect the
    old name. Platforms whose directory handles cannot be fsynced
    (Windows) are skipped — there the rename itself is the best
    available barrier.
    """
    try:
        dir_fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-specific
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


class PostingLog:
    """Append-only WAL + snapshot persistence for one server's store."""

    #: Engine tag (the segmented engine answers ``"segmented"``).
    engine = "flat"

    def __init__(self, path: str | pathlib.Path) -> None:
        """Args:
        path: the log file; created empty if absent.

        A stale ``.compact`` temp file left by a compaction that crashed
        before its atomic rename is deleted here: the real log is still
        the authoritative copy, and the orphan would otherwise sit on
        disk forever (and get clobbered mid-write by the next
        compaction, confusing forensics).
        """
        self._path = pathlib.Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._path.with_suffix(".compact").unlink(missing_ok=True)
        self._handle = open(self._path, "a", encoding="ascii")
        self.records_appended = 0

    # -- writing ------------------------------------------------------------

    def append_inserts(self, operations: Iterable[InsertOp]) -> int:
        """Log one accepted insert batch (call after ACL checks pass)."""
        count = 0
        for op in operations:
            self._handle.write(
                f"I {op.pl_id} {op.element_id} {op.group_id} {op.share_y}\n"
            )
            count += 1
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.records_appended += count
        return count

    def append_deletes(self, operations: Iterable[DeleteOp]) -> int:
        """Log accepted deletions."""
        count = 0
        for op in operations:
            self._handle.write(f"D {op.pl_id} {op.element_id}\n")
            count += 1
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.records_appended += count
        return count

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def destroy(self) -> None:
        """Close the log and delete its on-disk artifacts (orphan cleanup)."""
        self.close()
        self._path.unlink(missing_ok=True)
        self._path.with_suffix(".compact").unlink(missing_ok=True)

    # -- recovery -------------------------------------------------------------

    def replay(self) -> dict[int, dict[int, ShareRecord]]:
        """Rebuild the posting store from the log.

        Returns:
            pl_id -> {element_id -> ShareRecord}, the exact in-memory
            layout of :class:`~repro.server.index_server.IndexServer`.

        Raises:
            IndexServerError: on a corrupt record (torn writes at the
                tail are tolerated: a final partial line is skipped).
            CheckpointMismatchError: a ``C <count>`` checkpoint marker
                disagrees with the live-record count the replay
                reconstructed at that point — the history *before* the
                marker is damaged, which a torn tail can never explain.
        """
        store: dict[int, dict[int, ShareRecord]] = {}
        if not self._path.exists():
            return store
        live = 0
        with open(self._path, "r", encoding="ascii") as handle:
            lines = handle.readlines()
        for line_no, line in enumerate(lines):
            if not line.endswith("\n"):
                if line_no == len(lines) - 1:
                    break  # torn tail write: discard
                raise IndexServerError(f"corrupt log line {line_no}")
            parts = line.split()
            if not parts:
                continue
            kind = parts[0]
            try:
                if kind == "I":
                    pl_id, element_id, group_id, share_y = map(int, parts[1:])
                    store.setdefault(pl_id, {})[element_id] = ShareRecord(
                        element_id=element_id,
                        group_id=group_id,
                        share_y=share_y,
                    )
                    live += 1
                elif kind == "D":
                    pl_id, element_id = map(int, parts[1:])
                    if store.get(pl_id, {}).pop(element_id, None) is not None:
                        live -= 1
                elif kind == "C":
                    (expected,) = map(int, parts[1:])
                    if live != expected:
                        raise CheckpointMismatchError(
                            f"checkpoint at line {line_no} claims "
                            f"{expected} live records, replay "
                            f"reconstructed {live}"
                        )
                else:
                    raise ValueError(kind)
            except CheckpointMismatchError:
                raise
            except (ValueError, IndexError) as exc:
                raise IndexServerError(
                    f"corrupt log record at line {line_no}: {line!r}"
                ) from exc
        return store

    def compact(
        self, store: dict[int, dict[int, ShareRecord]] | None = None
    ) -> int:
        """Rewrite the log as a snapshot of the live store.

        Args:
            store: the state to snapshot; defaults to this log's own
                :meth:`replay` so the engine-agnostic ``compact()``
                facade works without a handle on the server.

        Returns the number of records written. The old log is atomically
        replaced (write to a temp file, fsync, rename, fsync the
        directory — without the directory fsync a crash after the rename
        could resurrect the uncompacted log *and* the temp file).
        """
        if store is None:
            store = self.replay()
        tmp_path = self._path.with_suffix(".compact")
        count = 0
        with open(tmp_path, "w", encoding="ascii") as tmp:
            for pl_id in sorted(store):
                for element_id in sorted(store[pl_id]):
                    record = store[pl_id][element_id]
                    tmp.write(
                        f"I {pl_id} {record.element_id} "
                        f"{record.group_id} {record.share_y}\n"
                    )
                    count += 1
            tmp.write(f"C {count}\n")
            tmp.flush()
            os.fsync(tmp.fileno())
        self.close()
        os.replace(tmp_path, self._path)
        fsync_dir(self._path.parent)
        self._handle = open(self._path, "a", encoding="ascii")
        return count

    # -- operator surface ------------------------------------------------------

    def disk_bytes(self) -> int:
        """Bytes the log currently occupies on disk."""
        try:
            return self._path.stat().st_size
        except OSError:
            return 0

    def status(self) -> dict:
        """Operator snapshot (``repro storage status`` renders this)."""
        return {
            "engine": self.engine,
            "path": str(self._path),
            "records_appended": self.records_appended,
            "disk_bytes": self.disk_bytes(),
        }


def attach_log(server, log: PostingLog) -> None:
    """Wire a :class:`PostingLog` into a live IndexServer.

    Thin shim over the first-class hook
    (:meth:`~repro.server.index_server.IndexServer.attach_store`); every
    accepted mutation is logged *after* validation succeeds, so rejected
    batches never hit disk. Kept for callers of the original
    monkey-patching API.
    """
    server.attach_store(log)
    server.posting_log = log


def recover_server(server, log: PostingLog) -> int:
    """Load a replayed store into a fresh IndexServer; returns element count.

    The server must be empty (recovery happens before it serves
    traffic); the load goes through the public
    :meth:`~repro.server.index_server.IndexServer.bulk_load` API.
    """
    return server.bulk_load(log.replay())
