"""User-group metadata tables (paper §5.3, Figure 3).

"Each index server records which users belong to each group, and which
posting elements are accessible to each group. ... The architecture supports
dynamic changes in group membership. To add or remove a user from a group,
only the table containing the user-group metadata needs to be updated."

Membership changes are therefore *immediately* reflected in query answers —
the property §2's ideal scheme demands — because access control is evaluated
against this table at lookup time, not baked into any encryption.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.errors import AccessDeniedError


class GroupDirectory:
    """The user ↔ group membership table replicated at every index server.

    Also records each group's coordinator — "the group coordinator maintain
    a list of the identities of the people in the group" (§2) — who is the
    only principal allowed to mutate membership.
    """

    def __init__(self) -> None:
        self._members: dict[int, set[str]] = defaultdict(set)
        self._groups_of: dict[str, set[int]] = defaultdict(set)
        self._coordinators: dict[int, str] = {}
        #: Membership-change listeners, called as ``listener(group_id,
        #: user_id)`` after every add/remove. Cache layers subscribe so
        #: a revocation evicts eagerly instead of waiting for key
        #: rotation to age old entries out.
        self._listeners: list = []

    def subscribe(self, listener) -> None:
        """Register a ``listener(group_id, user_id)`` membership hook."""
        self._listeners.append(listener)

    def _notify(self, group_id: int, user_id: str) -> None:
        for listener in list(self._listeners):
            listener(group_id, user_id)

    # -- administration ------------------------------------------------------

    def create_group(self, group_id: int, coordinator: str) -> None:
        """Create a group with its coordinator as the first member."""
        if group_id in self._coordinators:
            raise AccessDeniedError(f"group {group_id} already exists")
        self._coordinators[group_id] = coordinator
        self.add_member(group_id, coordinator, actor=coordinator)

    def coordinator_of(self, group_id: int) -> str | None:
        return self._coordinators.get(group_id)

    def _check_actor(self, group_id: int, actor: str | None) -> None:
        coordinator = self._coordinators.get(group_id)
        if coordinator is None:
            raise AccessDeniedError(f"group {group_id} does not exist")
        if actor is not None and actor != coordinator:
            raise AccessDeniedError(
                f"only coordinator {coordinator!r} may administer group {group_id}"
            )

    def add_member(
        self, group_id: int, user_id: str, actor: str | None = None
    ) -> None:
        """Add ``user_id`` to the group (coordinator-gated when actor given)."""
        self._check_actor(group_id, actor)
        self._members[group_id].add(user_id)
        self._groups_of[user_id].add(group_id)
        self._notify(group_id, user_id)

    def remove_member(
        self, group_id: int, user_id: str, actor: str | None = None
    ) -> None:
        """Remove a member; their future queries stop matching instantly."""
        self._check_actor(group_id, actor)
        self._members[group_id].discard(user_id)
        self._groups_of[user_id].discard(group_id)
        self._notify(group_id, user_id)

    # -- lookup (the Fig. 3 query path) -----------------------------------------

    def groups_of(self, user_id: str) -> frozenset[int]:
        """All groups the user belongs to — the O(N) lookup of §5.4.2."""
        return frozenset(self._groups_of.get(user_id, frozenset()))

    def members_of(self, group_id: int) -> frozenset[str]:
        return frozenset(self._members.get(group_id, frozenset()))

    def is_member(self, user_id: str, group_id: int) -> bool:
        return user_id in self._members.get(group_id, frozenset())

    def group_ids(self) -> list[int]:
        return sorted(self._coordinators)

    # -- replication ----------------------------------------------------------------

    def snapshot(self) -> dict[int, frozenset[str]]:
        """Replication payload: group -> members (what servers exchange)."""
        return {gid: frozenset(m) for gid, m in self._members.items()}

    def load_snapshot(
        self,
        snapshot: dict[int, Iterable[str]],
        coordinators: dict[int, str] | None = None,
    ) -> None:
        """Replace local state with a replicated snapshot."""
        self._members = defaultdict(set)
        self._groups_of = defaultdict(set)
        for gid, members in snapshot.items():
            for user in members:
                self._members[gid].add(user)
                self._groups_of[user].add(gid)
        if coordinators is not None:
            self._coordinators = dict(coordinators)
        else:
            for gid in snapshot:
                self._coordinators.setdefault(gid, "")
