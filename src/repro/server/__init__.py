"""The n largely-untrusted index servers and their environment (paper §5.3–§5.4).

"Zerber relies on a centralized set of largely untrusted index servers that
hold posting list elements encrypted with a k out of n secret sharing
scheme." Each server exposes only the narrow interface of §5 — "only
insert, delete, and look up posting list elements" — authenticates every
caller against the enterprise authentication service, and filters posting
elements through its user-group table (Fig. 3) before answering.

- :mod:`repro.server.auth` — the enterprise authentication facility
  ("Kerberos or any other approach to authentication in distributed systems
  can be adopted here");
- :mod:`repro.server.groups` — the user-group metadata tables;
- :mod:`repro.server.index_server` — the index server proper, including the
  compromise hook the §7.1 attack experiments use;
- :mod:`repro.server.transport` — a simulated network with per-link
  bandwidth accounting for the §7.3 experiments.
"""

from repro.server.auth import AuthService, AuthToken
from repro.server.groups import GroupDirectory
from repro.server.index_server import (
    CompromisedView,
    IndexServer,
    PostingListResponse,
    ShareRecord,
)
from repro.server.transport import NetworkStats, SimulatedNetwork, LinkSpec

__all__ = [
    "AuthService",
    "AuthToken",
    "GroupDirectory",
    "IndexServer",
    "ShareRecord",
    "PostingListResponse",
    "CompromisedView",
    "SimulatedNetwork",
    "NetworkStats",
    "LinkSpec",
]
