"""The searcher-local L1: reconstructed postings, zero network on a hit.

Where the coordinator's share cache and the L2 tier store *shares*
(a hit still pays Lagrange reconstruction), the L1 sits past the
reconstruction stage: it holds the decrypted-but-unfiltered posting
elements of one list for one ``(user, group fingerprint, width)``
context, so a hot repeat query costs no messages, no bytes, and no
field arithmetic at all.

Because the values are plaintext postings, the L1 is strictly
*searcher-local* — it lives inside the querying user's own client,
which already sees these postings; nothing here weakens the §5 model.
Two safety rules keep it byte-identical to a fresh fetch:

- **invalidate-before-write**: the coordinator fans every write's
  invalidation out to all registered L1s (weakly referenced — a
  dropped searcher unregisters itself by dying) before any seat sees
  the write;
- **eager membership eviction**: a group add/remove evicts every entry
  of the affected user immediately (:meth:`evict_user`) — the
  fingerprint in the key would rotate anyway, but eager eviction frees
  the space and guarantees a revoked user cannot be served even if a
  stale fingerprint is somehow replayed.

Shortfall entries are never stored: a list fetched with any element
below k shares is served but uncacheable, same rule as the share cache.

Thread safety: the owning searcher runs get/put on its query thread,
but the coordinator mutates registered L1s from *other* threads —
``invalidate_list`` on the write path and the membership-change
subscription call ``invalidate()``/``evict_user()`` — so every public
method takes the cache lock, mirroring :class:`~repro.cachetier.store
.CacheTierStore`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.errors import ClusterError

#: key = (user_id, group fingerprint, num_servers, pl_id[, epoch])
L1Key = tuple


class L1PostingCache:
    """A small LRU of reconstructed, unfiltered posting-element tuples."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ClusterError(f"L1 capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[L1Key, tuple] = OrderedDict()
        self._keys_of_pl: dict[int, set[L1Key]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: L1Key):
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: L1Key, pl_id: int, elements: tuple) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._drop(key)
            while len(self._entries) >= self.capacity:
                victim, _ = self._entries.popitem(last=False)
                self._unindex(victim)
                self.evictions += 1
            self._entries[key] = elements
            self._keys_of_pl.setdefault(pl_id, set()).add(key)

    def invalidate(self, pl_id: int) -> int:
        """A write landed on the list: every entry of it must go."""
        with self._lock:
            keys = self._keys_of_pl.pop(pl_id, None)
            if not keys:
                return 0
            for key in keys:
                self._entries.pop(key, None)
            self.invalidations += len(keys)
            return len(keys)

    def evict_user(self, user_id: str) -> int:
        """Membership changed for ``user_id``: drop their entries now."""
        with self._lock:
            doomed = [key for key in self._entries if key[0] == user_id]
            for key in doomed:
                self._drop(key)
            self.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._keys_of_pl.clear()

    def _drop(self, key: L1Key) -> None:
        """Caller holds :attr:`_lock`."""
        self._entries.pop(key, None)
        self._unindex(key)

    def _unindex(self, key: L1Key) -> None:
        """Caller holds :attr:`_lock`."""
        pl_id = key[3]
        keys = self._keys_of_pl.get(pl_id)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._keys_of_pl[pl_id]

    def stats_snapshot(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
