"""The tiered cache subsystem: searcher-local L1 + shared L2 tier.

Two tiers in front of the server fleet:

- **L1** (:mod:`repro.cachetier.l1`): a searcher-local cache of
  reconstructed postings — a hit skips the network *and* Lagrange
  reconstruction entirely;
- **L2** (:mod:`repro.cachetier.store` / :mod:`~repro.cachetier.service`):
  a memcache-shaped cache-tier server holding share-level entries,
  reachable as an ordinary protocol endpoint over every transport
  backend, with pluggable eviction/admission policies
  (:mod:`repro.cachetier.policies`).

Both tiers obey the share cache's two safety rules — invalidate before
any write is delivered, re-key (and eagerly evict) on membership
change — which is what keeps a cached read byte-identical to an
uncached one.
"""

from repro.cachetier.l1 import L1PostingCache
from repro.cachetier.policies import (
    POLICIES,
    FrequencySketch,
    LRUPolicy,
    TinyLFUPolicy,
    make_policy,
)
from repro.cachetier.service import CACHE_TIER_ENDPOINT, CacheTierService
from repro.cachetier.store import CacheTierStore
from repro.cachetier.wire import (
    decode_entry,
    encode_entry,
    entry_key,
    parse_key,
)

__all__ = [
    "CACHE_TIER_ENDPOINT",
    "CacheTierService",
    "CacheTierStore",
    "FrequencySketch",
    "L1PostingCache",
    "LRUPolicy",
    "POLICIES",
    "TinyLFUPolicy",
    "decode_entry",
    "encode_entry",
    "entry_key",
    "make_policy",
    "parse_key",
]
