"""The shared cache tier's key-value store.

Memcache-shaped on purpose: opaque string keys, opaque byte values,
exact-match get/put, plus the one Zerber-specific verb — invalidate by
posting-list id. The store never interprets keys or values; the key
scheme (group fingerprint × fan-out width × posting list × write
epoch) and the value format (encoded slot-aligned share responses, see
:mod:`repro.cachetier.wire`) are client-side conventions, and access
control — token verification plus the fingerprint check — lives in the
protocol layer (:class:`repro.cachetier.service.CacheTierService`),
not here. Note the values are share-*encoded* but not share-*safe*: an
entry aggregates >= k shares per element, so the host this store runs
on sits inside the trust boundary (see ``docs/ARCHITECTURE.md``).

Thread safety: the socket and async servers dispatch requests from
multiple connection threads, so every public method takes the store
lock. Eviction/admission decisions are delegated to a policy object
(:mod:`repro.cachetier.policies`).
"""

from __future__ import annotations

import threading

from repro.errors import ClusterError
from repro.cachetier.policies import make_policy


class CacheTierStore:
    """A bounded, policy-driven, invalidation-indexed byte store."""

    def __init__(self, capacity: int = 4096, policy: str = "lru") -> None:
        if capacity < 0:
            raise ClusterError(
                f"cache-tier capacity must be >= 0, got {capacity}"
            )
        self.capacity = capacity
        self.policy_name = policy
        self._policy = make_policy(policy, capacity)
        #: key -> (pl_id, value)
        self._entries: dict[str, tuple[int, bytes]] = {}
        #: pl_id -> keys currently cached for that list (the
        #: invalidation index — a write must evict every entry of its
        #: list without scanning the store).
        self._keys_of_pl: dict[int, set[str]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.rejections = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> bytes | None:
        with self._lock:
            self._policy.touch(key)
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            return entry[1]

    def put(self, key: str, pl_id: int, value: bytes) -> bool:
        """Store ``value``; returns False when admission rejected it."""
        if self.capacity == 0:
            return False
        with self._lock:
            if key in self._entries:
                old_pl, _ = self._entries[key]
                if old_pl != pl_id:
                    self._unindex(key, old_pl)
                    self._keys_of_pl.setdefault(pl_id, set()).add(key)
                self._entries[key] = (pl_id, value)
                self._policy.touch(key)
                return True
            if len(self._entries) >= self.capacity:
                victim = self._policy.admit(key)
                if victim is None:
                    self.rejections += 1
                    return False
                self._evict(victim)
            self._entries[key] = (pl_id, value)
            self._keys_of_pl.setdefault(pl_id, set()).add(key)
            self._policy.record_insert(key)
            return True

    def invalidate(self, pl_id: int) -> int:
        """Evict every entry of the list; returns how many went."""
        with self._lock:
            keys = self._keys_of_pl.pop(pl_id, None)
            if not keys:
                return 0
            for key in keys:
                self._entries.pop(key, None)
                self._policy.record_evict(key)
            self.invalidations += len(keys)
            return len(keys)

    def clear(self) -> None:
        with self._lock:
            for key in list(self._entries):
                self._policy.record_evict(key)
            self._entries.clear()
            self._keys_of_pl.clear()

    def _evict(self, key: str) -> None:
        pl_id, _ = self._entries.pop(key)
        self._unindex(key, pl_id)
        self._policy.record_evict(key)
        self.evictions += 1

    def _unindex(self, key: str, pl_id: int) -> None:
        keys = self._keys_of_pl.get(pl_id)
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._keys_of_pl[pl_id]

    def stats_snapshot(self) -> dict:
        with self._lock:
            return {
                "policy": self.policy_name,
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "rejections": self.rejections,
            }
