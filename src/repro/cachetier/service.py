"""The cache tier as a protocol endpoint.

:class:`CacheTierService` is just another PR 4 service: it answers the
four cache messages and nothing else, so registering it on a transport
registry makes it reachable over the in-process, socket, and async
backends alike — the transports neither know nor care that the endpoint
is a cache.
"""

from __future__ import annotations

from repro.cachetier.store import CacheTierStore
from repro.errors import ProtocolError
from repro.protocol.messages import (
    CacheGetRequest,
    CacheInvalidateRequest,
    CachePutRequest,
    CacheStatsRequest,
    CacheStatsResponse,
    CacheValueResponse,
    OpCountResponse,
)

#: The conventional endpoint name deployments register the tier under.
CACHE_TIER_ENDPOINT = "cache-tier"


class CacheTierService:
    """Protocol dispatch for one cache-tier store."""

    def __init__(self, store: CacheTierStore) -> None:
        self.store = store

    def handle(self, request):
        if isinstance(request, CacheGetRequest):
            value = self.store.get(request.key)
            if value is None:
                return CacheValueResponse(hit=False)
            return CacheValueResponse(hit=True, value=value)
        if isinstance(request, CachePutRequest):
            admitted = self.store.put(
                request.key, request.pl_id, request.value
            )
            return OpCountResponse(count=1 if admitted else 0)
        if isinstance(request, CacheInvalidateRequest):
            evicted = sum(
                self.store.invalidate(pl_id) for pl_id in request.pl_ids
            )
            return OpCountResponse(count=evicted)
        if isinstance(request, CacheStatsRequest):
            return CacheStatsResponse(**self.store.stats_snapshot())
        raise ProtocolError(
            f"cache tier cannot handle {type(request).__name__}"
        )
