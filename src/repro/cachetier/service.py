"""The cache tier as a protocol endpoint.

:class:`CacheTierService` is just another PR 4 service: it answers the
four cache messages and nothing else, so registering it on a transport
registry makes it reachable over the in-process, socket, and async
backends alike — the transports neither know nor care that the endpoint
is a cache.

Reachable-by-anyone is exactly why the tier enforces its own access
control instead of trusting keys: an L2 value bundles the whole
slot-aligned fetch for a list — at least k shares per element, enough
to Lagrange-reconstruct plaintext postings — and the key that names it
is trivially forgeable. So ``CacheGet`` and ``CachePut`` carry the same
enterprise :class:`~repro.server.auth.AuthToken` every index-server
request carries; the tier verifies it and then checks that the key's
group fingerprint equals the caller's *live* group set (looked up in
the shared :class:`~repro.server.groups.GroupDirectory`, never taken
from the key). A client can therefore only read or write entries its
index-server-filtered fetches would have produced anyway — the tier
cannot be used to bypass the servers' token/group filtering, and a put
cannot poison entries served to other fingerprints.

``CacheInvalidate`` and ``CacheStats`` stay token-free: invalidation
only evicts (always correctness-safe — the worst a forged invalidation
costs is a refetch) and is issued by the coordinator, which holds no
user token; stats expose counters only.
"""

from __future__ import annotations

from repro.cachetier.store import CacheTierStore
from repro.cachetier.wire import parse_key
from repro.errors import AccessDeniedError, ProtocolError
from repro.protocol.messages import (
    CacheGetRequest,
    CacheInvalidateRequest,
    CachePutRequest,
    CacheStatsRequest,
    CacheStatsResponse,
    CacheValueResponse,
    OpCountResponse,
)
from repro.server.auth import AuthService, AuthToken
from repro.server.groups import GroupDirectory

#: The conventional endpoint name deployments register the tier under.
CACHE_TIER_ENDPOINT = "cache-tier"


class CacheTierService:
    """Protocol dispatch for one cache-tier store."""

    def __init__(
        self,
        store: CacheTierStore,
        auth: AuthService,
        groups: GroupDirectory,
    ) -> None:
        """Args:
        store: the byte store behind the endpoint.
        auth: the enterprise token verifier (the same trust anchor
            every index server holds).
        groups: the live group directory the fingerprint check reads.
        """
        self.store = store
        self._auth = auth
        self._groups = groups

    def _authorize(self, token: AuthToken, key: str) -> None:
        """Verify the token and match the key's fingerprint to the
        caller's live groups.

        Raises:
            AuthError: bad, expired, or revoked token.
            AccessDeniedError: the key claims a group set the caller
                does not currently hold.
            ProtocolError: the key does not follow the key scheme.
        """
        user_id = self._auth.verify(token)
        claimed, _num_servers, _pl_id, _epoch = parse_key(key)
        if claimed != self._groups.groups_of(user_id):
            raise AccessDeniedError(
                f"user {user_id!r} is not authorized for cache entries "
                f"of group fingerprint {sorted(claimed)}"
            )

    def handle(self, request):
        if isinstance(request, CacheGetRequest):
            self._authorize(request.token, request.key)
            value = self.store.get(request.key)
            if value is None:
                return CacheValueResponse(hit=False)
            return CacheValueResponse(hit=True, value=value)
        if isinstance(request, CachePutRequest):
            self._authorize(request.token, request.key)
            admitted = self.store.put(
                request.key, request.pl_id, request.value
            )
            return OpCountResponse(count=1 if admitted else 0)
        if isinstance(request, CacheInvalidateRequest):
            evicted = sum(
                self.store.invalidate(pl_id) for pl_id in request.pl_ids
            )
            return OpCountResponse(count=evicted)
        if isinstance(request, CacheStatsRequest):
            return CacheStatsResponse(**self.store.stats_snapshot())
        raise ProtocolError(
            f"cache tier cannot handle {type(request).__name__}"
        )
