"""Byte format of one cache-tier value.

A value is the exact thing the cluster client's share cache stores for
one posting list: the sorted ``(slot_index, PostingListResponse)``
pairs a fetch produced. Encoding reuses the wire protocol's strict
LEB128 primitives (the public :func:`repro.protocol.codec.write_uint` /
:class:`repro.protocol.codec.Reader` surface), so the byte discipline —
bounds checks, varint caps, no trailing garbage — is shared, not
reimplemented.

Shares only, never reconstructed postings: an L2 value decodes to the
same slot-aligned share responses a server fleet would have returned,
which is what makes a cached read byte-identical to an uncached one and
a stolen cache no more useful than a compromised server (§5).
"""

from __future__ import annotations

from repro.protocol.codec import Reader, write_uint
from repro.server.index_server import PostingListResponse, ShareRecord

Entry = list[tuple[int, PostingListResponse]]


def encode_entry(pairs: Entry) -> bytes:
    """Serialize sorted (slot_index, response) pairs to an opaque value."""
    out = bytearray()
    write_uint(out, len(pairs))
    for slot_index, response in pairs:
        write_uint(out, slot_index)
        write_uint(out, response.pl_id)
        write_uint(out, len(response.records))
        for record in response.records:
            write_uint(out, record.element_id)
            write_uint(out, record.group_id)
            write_uint(out, record.share_y)
    return bytes(out)


def decode_entry(data: bytes) -> Entry:
    """Parse a cache value back into (slot_index, response) pairs.

    Raises:
        ProtocolError: truncation or trailing bytes — a corrupt cache
            entry must fail loudly, never decode to wrong shares.
    """
    r = Reader(data)
    pairs: Entry = []
    for _ in range(r.uint()):
        slot_index = r.uint()
        pl_id = r.uint()
        records = tuple(
            ShareRecord(
                element_id=r.uint(), group_id=r.uint(), share_y=r.uint()
            )
            for _ in range(r.uint())
        )
        pairs.append(
            (slot_index, PostingListResponse(pl_id=pl_id, records=records))
        )
    r.done()
    return pairs


def entry_key(fingerprint, num_servers: int, pl_id: int) -> str:
    """The L2 key scheme: group fingerprint × fan-out width × list.

    No user id — index servers filter responses by group membership
    only, so two users with identical group sets receive identical
    bytes and may share entries (that sharing is the point of a fleet-
    wide tier). A membership change rotates the fingerprint and thus
    the key, exactly the re-keying rule the per-coordinator share cache
    relies on.
    """
    groups = ",".join(str(g) for g in sorted(fingerprint))
    return f"{groups}|{num_servers}|{pl_id}"
