"""Byte format of one cache-tier value.

A value is the exact thing the cluster client's share cache stores for
one posting list: the sorted ``(slot_index, PostingListResponse)``
pairs a fetch produced. Encoding reuses the wire protocol's strict
LEB128 primitives (the public :func:`repro.protocol.codec.write_uint` /
:class:`repro.protocol.codec.Reader` surface), so the byte discipline —
bounds checks, varint caps, no trailing garbage — is shared, not
reimplemented.

Shares only, never reconstructed postings: an L2 value decodes to the
same slot-aligned share responses a server fleet would have returned,
which is what makes a cached read byte-identical to an uncached one.
Unlike a single index server's store, though, one value aggregates the
*whole* slot-aligned fetch — at least k shares per element — so it is
Lagrange-reconstructible by whoever holds it. That is why the tier
authenticates every get/put and re-checks the key's group fingerprint
against the live group directory (:class:`repro.cachetier.service
.CacheTierService`), and why a compromised cache-tier *host* must be
treated like k compromised index servers, not one (see the "Cache
tier" safety argument in ``docs/ARCHITECTURE.md``).
"""

from __future__ import annotations

from repro.errors import ProtocolError
from repro.protocol.codec import Reader, write_uint
from repro.server.index_server import PostingListResponse, ShareRecord

Entry = list[tuple[int, PostingListResponse]]


def encode_entry(pairs: Entry) -> bytes:
    """Serialize sorted (slot_index, response) pairs to an opaque value."""
    out = bytearray()
    write_uint(out, len(pairs))
    for slot_index, response in pairs:
        write_uint(out, slot_index)
        write_uint(out, response.pl_id)
        write_uint(out, len(response.records))
        for record in response.records:
            write_uint(out, record.element_id)
            write_uint(out, record.group_id)
            write_uint(out, record.share_y)
    return bytes(out)


def decode_entry(data: bytes) -> Entry:
    """Parse a cache value back into (slot_index, response) pairs.

    Raises:
        ProtocolError: truncation or trailing bytes — a corrupt cache
            entry must fail loudly, never decode to wrong shares.
    """
    r = Reader(data)
    pairs: Entry = []
    for _ in range(r.uint()):
        slot_index = r.uint()
        pl_id = r.uint()
        records = tuple(
            ShareRecord(
                element_id=r.uint(), group_id=r.uint(), share_y=r.uint()
            )
            for _ in range(r.uint())
        )
        pairs.append(
            (slot_index, PostingListResponse(pl_id=pl_id, records=records))
        )
    r.done()
    return pairs


def entry_key(
    fingerprint, num_servers: int, pl_id: int, epoch: int = 0
) -> str:
    """The L2 key scheme: fingerprint × fan-out width × list × epoch.

    No user id — index servers filter responses by group membership
    only, so two users with identical group sets receive identical
    bytes and may share entries (that sharing is the point of a fleet-
    wide tier). A membership change rotates the fingerprint and thus
    the key, exactly the re-keying rule the per-coordinator share cache
    relies on.

    ``epoch`` is the list's coordinator write epoch, captured *before*
    the fetch that produced the entry. Invalidation bumps the epoch, so
    a look-aside fill that raced a concurrent write installs its
    pre-write shares under a key no post-write reader ever derives —
    the fence that keeps the byte-identity invariant under concurrent
    write+read (readers always key gets by the current epoch).
    """
    groups = ",".join(str(g) for g in sorted(fingerprint))
    return f"{groups}|{num_servers}|{pl_id}|{epoch}"


def parse_key(key: str) -> tuple[frozenset[int], int, int, int]:
    """Split an L2 key into (group set, num_servers, pl_id, epoch).

    The tier uses the group-set component to enforce access control —
    a key is trivially forgeable, so the fingerprint it claims must be
    checked against the caller's live group memberships, never trusted.

    Raises:
        ProtocolError: the key does not follow the scheme.
    """
    parts = key.split("|")
    if len(parts) != 4:
        raise ProtocolError(f"malformed cache key {key!r}")
    groups_part, num_servers, pl_id, epoch = parts
    try:
        groups = frozenset(
            int(g) for g in groups_part.split(",") if g != ""
        )
        return groups, int(num_servers), int(pl_id), int(epoch)
    except ValueError as exc:
        raise ProtocolError(f"malformed cache key {key!r}") from exc
