"""Eviction/admission policies for the shared cache tier.

Two policies, one interface:

- :class:`LRUPolicy` — the baseline: admit everything, evict the least
  recently used entry. It is the same discipline the coordinator's
  per-process share cache uses, lifted behind a policy interface so the
  bench can compare it head-to-head with smarter admission.
- :class:`TinyLFUPolicy` — LRU eviction order plus a TinyLFU-style
  admission filter: a count-min sketch estimates how often each key has
  been *asked for* lately, and a new key is only admitted when its
  estimated frequency beats the would-be LRU victim's. Under a Zipf
  query log this keeps one-hit wonders from flushing the hot head of
  the distribution out of a small cache. The sketch halves all counters
  every ``sample_size`` observations, so "lately" really means lately
  (the aging step from the TinyLFU paper).

A policy tracks *keys and ordering only*; the store owns the values.
The store drives the policy with three calls:

- ``touch(key)`` on every lookup (hit or miss) — frequency feed + LRU
  refresh;
- ``admit(key)`` when inserting into a full cache — returns the key to
  evict, or ``None`` to reject the insertion;
- ``record_insert(key)`` / ``record_evict(key)`` to keep the policy's
  key ordering in sync with the store.

Determinism is part of the contract: the sketch hashes with
:func:`zlib.crc32` under fixed per-row seeds (Python's builtin ``hash``
is salted per process), so the same query log replayed against the same
policy always makes the same admission decisions — BENCH_cache.json is
reproducible by construction.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict

from repro.errors import ClusterError


class LRUPolicy:
    """Admit always, evict least-recently-used."""

    name = "lru"

    def __init__(self) -> None:
        self._order: OrderedDict[str, None] = OrderedDict()

    def __len__(self) -> int:
        return len(self._order)

    def touch(self, key: str) -> None:
        if key in self._order:
            self._order.move_to_end(key)

    def admit(self, key: str) -> str | None:
        """The victim to evict so ``key`` can come in (cache is full)."""
        return next(iter(self._order))

    def record_insert(self, key: str) -> None:
        self._order[key] = None
        self._order.move_to_end(key)

    def record_evict(self, key: str) -> None:
        self._order.pop(key, None)


class FrequencySketch:
    """A count-min sketch with 4-bit-style saturation and periodic aging.

    ``depth`` rows of ``width`` counters; a key increments one counter
    per row (min-of-rows is the estimate). Counters saturate at 15 and
    every counter is halved once ``sample_size`` increments have been
    fed, so the sketch tracks *recent* popularity, not all-time counts.
    """

    _MAX_COUNT = 15

    def __init__(self, width: int, depth: int = 4,
                 sample_size: int | None = None) -> None:
        if width <= 0:
            raise ClusterError(f"sketch width must be positive, got {width}")
        self.width = width
        self.depth = depth
        self.sample_size = sample_size if sample_size else 10 * width
        self._rows = [[0] * width for _ in range(depth)]
        self._observed = 0

    def _indexes(self, key: str) -> list[int]:
        raw = key.encode("utf-8")
        return [
            zlib.crc32(raw, row * 0x9E3779B9 & 0xFFFFFFFF) % self.width
            for row in range(self.depth)
        ]

    def increment(self, key: str) -> None:
        for row, index in zip(self._rows, self._indexes(key)):
            if row[index] < self._MAX_COUNT:
                row[index] += 1
        self._observed += 1
        if self._observed >= self.sample_size:
            self._age()

    def estimate(self, key: str) -> int:
        return min(
            row[index]
            for row, index in zip(self._rows, self._indexes(key))
        )

    def _age(self) -> None:
        for row in self._rows:
            for i, count in enumerate(row):
                row[i] = count >> 1
        self._observed >>= 1


class TinyLFUPolicy:
    """LRU eviction order gated by a frequency-sketch admission filter.

    On a full cache, a candidate key is admitted only if the sketch
    thinks it has been requested at least as often as the LRU victim
    lately — otherwise the candidate is rejected and the cache keeps
    the victim. Rejected keys still feed the sketch (via ``touch`` on
    their lookups), so sustained demand eventually wins admission.
    """

    name = "tinylfu"

    def __init__(self, capacity: int) -> None:
        self._order: OrderedDict[str, None] = OrderedDict()
        self._sketch = FrequencySketch(width=max(16, 4 * max(capacity, 1)))

    def __len__(self) -> int:
        return len(self._order)

    def touch(self, key: str) -> None:
        self._sketch.increment(key)
        if key in self._order:
            self._order.move_to_end(key)

    def admit(self, key: str) -> str | None:
        victim = next(iter(self._order))
        if self._sketch.estimate(key) >= self._sketch.estimate(victim):
            return victim
        return None

    def record_insert(self, key: str) -> None:
        self._order[key] = None
        self._order.move_to_end(key)

    def record_evict(self, key: str) -> None:
        self._order.pop(key, None)


#: policy name -> factory(capacity). The CLI and deployment look
#: policies up here, so adding one is a one-line change.
POLICIES = {
    "lru": lambda capacity: LRUPolicy(),
    "tinylfu": lambda capacity: TinyLFUPolicy(capacity),
}


def make_policy(name: str, capacity: int):
    try:
        factory = POLICIES[name]
    except KeyError:
        raise ClusterError(
            f"unknown cache policy {name!r}; known: {sorted(POLICIES)}"
        ) from None
    return factory(capacity)
