"""Client-side ranking (paper §5.4.2).

"Zerber uses client-side ranking with personalized collection statistics
obtained from the set of all documents accessible to the user. We use a
modification of Fagin's Threshold Algorithm that lets one obtain the top-K
ranked results."

- :mod:`repro.ranking.scores` — TF-IDF scoring over personalized
  statistics (the user's accessible sub-collection, not the global corpus,
  because the global document frequencies are exactly what Zerber hides);
- :mod:`repro.ranking.threshold` — Fagin's Threshold Algorithm over
  tf-descending posting lists.
"""

from repro.ranking.scores import CollectionStatistics, TfIdfScorer
from repro.ranking.threshold import RankedHit, threshold_top_k

__all__ = [
    "CollectionStatistics",
    "TfIdfScorer",
    "RankedHit",
    "threshold_top_k",
]
