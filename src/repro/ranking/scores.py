"""TF-IDF scoring with personalized collection statistics (paper §5.4.2).

Zerber cannot use global corpus statistics for ranking — global document
frequencies are the very thing the index hides. Instead, "Zerber uses
client-side ranking with personalized collection statistics obtained from
the set of all documents accessible to the user": the client derives
document frequencies from the decrypted posting elements it is allowed to
see, and scores with a standard ltc-style tf-idf [30].
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import RankingError


@dataclass(frozen=True)
class CollectionStatistics:
    """The user's personal view of the collection.

    Attributes:
        num_documents: documents accessible to this user (their personal N).
        document_frequencies: term -> number of *accessible* documents
            containing it.
    """

    num_documents: int
    document_frequencies: Mapping[str, int]

    def __post_init__(self) -> None:
        if self.num_documents < 0:
            raise RankingError("document count cannot be negative")
        bad = [t for t, df in self.document_frequencies.items() if df < 0]
        if bad:
            raise RankingError(f"negative document frequency for {bad[:3]}")

    @classmethod
    def from_postings(
        cls, postings_by_term: Mapping[str, Iterable[int]]
    ) -> "CollectionStatistics":
        """Derive statistics from decrypted query results.

        Args:
            postings_by_term: term -> iterable of doc_ids the user can see.
        """
        dfs: dict[str, int] = {}
        all_docs: set[int] = set()
        for term, doc_ids in postings_by_term.items():
            docs = set(doc_ids)
            dfs[term] = len(docs)
            all_docs |= docs
        return cls(num_documents=len(all_docs), document_frequencies=dfs)

    def idf(self, term: str) -> float:
        """Smoothed inverse document frequency ``ln((N + 1) / (df + 1)) + 1``.

        The +1 smoothing keeps the weight positive and defined even when a
        term matches every accessible document (common in tiny personal
        collections).
        """
        df = self.document_frequencies.get(term, 0)
        return math.log((self.num_documents + 1) / (df + 1)) + 1.0


class TfIdfScorer:
    """Weighted-sum tf-idf document scorer over personalized statistics."""

    def __init__(self, statistics: CollectionStatistics) -> None:
        self._statistics = statistics

    def weight(self, term: str) -> float:
        """The query-side weight (idf) of one term."""
        return self._statistics.idf(term)

    def score(self, term_tfs: Mapping[str, float]) -> float:
        """Score one document from its term -> tf map for the query terms.

        The aggregate is the monotone weighted sum Fagin's TA requires:
        ``sum_t tf(t, d) * idf(t)``.
        """
        if any(tf < 0 for tf in term_tfs.values()):
            raise RankingError("negative term frequency")
        return sum(
            tf * self._statistics.idf(term) for term, tf in term_tfs.items()
        )
