"""Fagin's Threshold Algorithm for client-side top-K (paper §5.4.2, [14]).

After decryption the client holds, per query term, a posting list it can
sort by term frequency. The Threshold Algorithm walks these lists in
parallel in tf-descending order, maintaining the invariant that no unseen
document can beat the threshold ``T = sum_t w_t * tf_t(current depth)``;
once K seen documents score >= T, the scan stops — typically long before
the lists are exhausted, which is how Zerber keeps client-side ranking
cheap despite receiving *all* accessible elements.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import RankingError


@dataclass(frozen=True, slots=True)
class RankedHit:
    """One top-K result.

    Attributes:
        doc_id: the document.
        score: its aggregate (weighted tf-idf) score.
    """

    doc_id: int
    score: float


def threshold_top_k(
    postings_by_term: Mapping[str, Sequence[tuple[int, float]]],
    weights: Mapping[str, float],
    k: int,
) -> list[RankedHit]:
    """Top-K documents under the weighted-sum score, via Fagin's TA.

    Args:
        postings_by_term: term -> [(doc_id, tf), ...]; order is irrelevant,
            the algorithm sorts each list tf-descending itself (the client
            just decrypted them, so no order is available anyway).
        weights: term -> non-negative query weight (idf). Terms missing
            from ``weights`` default to weight 1.0.
        k: result count (>= 1).

    Returns:
        Up to ``k`` hits, score-descending (ties broken by doc_id for
        determinism).
    """
    if k < 1:
        raise RankingError(f"k must be >= 1, got {k}")
    sorted_lists: dict[str, list[tuple[int, float]]] = {}
    for term, postings in postings_by_term.items():
        if any(tf < 0 for _, tf in postings):
            raise RankingError(f"negative tf in list for {term!r}")
        sorted_lists[term] = sorted(postings, key=lambda p: (-p[1], p[0]))
    terms = [t for t, lst in sorted_lists.items() if lst]
    if not terms:
        return []
    term_weights = {t: float(weights.get(t, 1.0)) for t in terms}
    if any(w < 0 for w in term_weights.values()):
        raise RankingError("negative term weight")
    # Random-access structures: doc -> tf per term.
    tf_of: dict[str, dict[int, float]] = {
        t: {doc: tf for doc, tf in lst} for t, lst in sorted_lists.items()
    }

    def full_score(doc_id: int) -> float:
        return sum(
            term_weights[t] * tf_of[t].get(doc_id, 0.0) for t in terms
        )

    seen: set[int] = set()
    # Min-heap of (score, -doc_id) keeps the current top-K.
    heap: list[tuple[float, int]] = []
    depth = 0
    max_depth = max(len(lst) for lst in sorted_lists.values())
    while depth < max_depth:
        frontier_tfs = {}
        for t in terms:
            lst = sorted_lists[t]
            if depth < len(lst):
                doc_id, tf = lst[depth]
                frontier_tfs[t] = tf
                if doc_id not in seen:
                    seen.add(doc_id)
                    score = full_score(doc_id)
                    if len(heap) < k:
                        heapq.heappush(heap, (score, -doc_id))
                    elif (score, -doc_id) > heap[0]:
                        heapq.heapreplace(heap, (score, -doc_id))
            else:
                frontier_tfs[t] = 0.0
        depth += 1
        # TA stopping rule: threshold is the best score any unseen
        # document could still achieve.
        threshold = sum(
            term_weights[t] * frontier_tfs[t] for t in terms
        )
        if len(heap) == k and heap[0][0] >= threshold:
            break
    hits = [RankedHit(doc_id=-neg, score=score) for score, neg in heap]
    hits.sort(key=lambda h: (-h.score, h.doc_id))
    return hits


def naive_top_k(
    postings_by_term: Mapping[str, Sequence[tuple[int, float]]],
    weights: Mapping[str, float],
    k: int,
) -> list[RankedHit]:
    """Exhaustive scorer used as the TA's correctness oracle in tests."""
    if k < 1:
        raise RankingError(f"k must be >= 1, got {k}")
    scores: dict[int, float] = {}
    for term, postings in postings_by_term.items():
        w = float(weights.get(term, 1.0))
        for doc_id, tf in postings:
            scores[doc_id] = scores.get(doc_id, 0.0) + w * tf
    ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
    return [RankedHit(doc_id=d, score=s) for d, s in ranked[:k]]
