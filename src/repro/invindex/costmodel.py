"""Disk cost model and workload cost — formula (6) (paper §6, §7.4).

§7.4 defines how the experiments measure query cost: "The time to scan a
posting list is the sum of the seek time (to position the disk head at the
start of the posting list) and the transfer time (the time to read the
posting list). The total seek time for a given query workload is a constant,
independent of the merging heuristic. The transfer time for a posting list
is proportional to its length. Formula (6) is the sum of the posting list
lengths, weighted by their query frequencies. Thus the total transfer time
(and hence the total workload cost ...) is proportional to formula (6),
which we use as the workload cost."

This module provides both the physical model (seek + transfer seconds) and
the abstract formula-(6) cost that all the Fig. 6/10/11 experiments use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import ReproError


@dataclass(frozen=True)
class DiskCostModel:
    """A seek + transfer disk model.

    Attributes:
        seek_time_s: constant cost to position at the start of a list.
        transfer_time_per_element_s: per-posting-element read cost.
    """

    seek_time_s: float = 0.008
    transfer_time_per_element_s: float = 2e-7

    def __post_init__(self) -> None:
        if self.seek_time_s < 0 or self.transfer_time_per_element_s < 0:
            raise ReproError("disk cost parameters must be non-negative")

    def scan_time(self, list_length: int) -> float:
        """Seconds to scan one posting list of ``list_length`` elements."""
        if list_length < 0:
            raise ReproError("negative list length")
        return self.seek_time_s + list_length * self.transfer_time_per_element_s

    def workload_time(
        self,
        list_lengths: Mapping[int, int],
        list_query_frequencies: Mapping[int, int],
    ) -> float:
        """Total seconds for a workload of per-list query frequencies.

        Args:
            list_lengths: posting-list id -> element count.
            list_query_frequencies: posting-list id -> number of queries
                that touch it.
        """
        total = 0.0
        for list_id, qf in list_query_frequencies.items():
            if qf < 0:
                raise ReproError("negative query frequency")
            total += qf * self.scan_time(list_lengths.get(list_id, 0))
        return total


def workload_cost(
    lists: Sequence[Sequence[str]],
    document_frequencies: Mapping[str, int],
    query_frequencies: Mapping[str, int],
) -> float:
    """Formula (6): ``Q = sum_L [ length(L) * sum_{j in L} q_j ]``.

    Each query for any term of a merged list transfers the *whole* list
    (the server cannot tell which elements match), so a list's contribution
    is its length times the total query frequency of its member terms.

    Args:
        lists: the merged posting lists, each a sequence of member terms.
        document_frequencies: term -> document frequency (list length
            contribution of that term).
        query_frequencies: term -> query frequency; terms absent from the
            map are treated as never queried.

    Returns:
        The workload cost in posting-element transfers.
    """
    total = 0.0
    for members in lists:
        length = sum(document_frequencies.get(t, 0) for t in members)
        qf_sum = sum(query_frequencies.get(t, 0) for t in members)
        total += length * qf_sum
    return total


def unmerged_workload_cost(
    document_frequencies: Mapping[str, int],
    query_frequencies: Mapping[str, int],
) -> float:
    """Formula (6) for the *unmerged* index: each term is its own list.

    This is the ordinary-inverted-index denominator used by the Fig. 10
    cost-ratio experiment.
    """
    return sum(
        document_frequencies.get(t, 0) * qf
        for t, qf in query_frequencies.items()
    )
