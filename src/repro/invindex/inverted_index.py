"""The ordinary (plaintext) inverted index — Zerber's baseline (Fig. 1).

This is the structure every §7 comparison is made against: term -> posting
list, supporting insertion/deletion of whole documents and conjunctive /
disjunctive keyword lookup. It also serves as each document owner's local
index ("Each document server maintains an inverted index (also useful for
local search) of its local shared documents, to support efficient updates",
§7.2).
"""

from __future__ import annotations

from typing import Iterable

from repro.corpus.document import Document
from repro.errors import ReproError
from repro.invindex.postings import Posting, PostingList
from repro.invindex.tokenizer import Tokenizer


class InvertedIndex:
    """A classic in-memory inverted index over :class:`Document` objects."""

    def __init__(self, tokenizer: Tokenizer | None = None) -> None:
        self._tokenizer = tokenizer or Tokenizer()
        self._lists: dict[str, PostingList] = {}
        self._doc_terms: dict[int, set[str]] = {}
        self._doc_lengths: dict[int, int] = {}

    # -- updates -------------------------------------------------------------

    def index_document(self, document: Document) -> int:
        """Index (or re-index) one document; returns its distinct-term count."""
        if document.doc_id in self._doc_terms:
            self.delete_document(document.doc_id)
        terms = set()
        for term, count in document.term_counts.items():
            posting = Posting(doc_id=document.doc_id, tf=count / document.length)
            self._lists.setdefault(term, PostingList(term)).add(posting)
            terms.add(term)
        self._doc_terms[document.doc_id] = terms
        self._doc_lengths[document.doc_id] = document.length
        return len(terms)

    def index_text(
        self, doc_id: int, text: str, host: str = "local", group_id: int = 0
    ) -> Document:
        """Tokenize raw text and index it; returns the built Document."""
        counts = self._tokenizer.term_counts(text)
        if not counts:
            raise ReproError(f"document {doc_id} tokenized to nothing")
        document = Document(
            doc_id=doc_id,
            host=host,
            group_id=group_id,
            term_counts=dict(counts),
            length=sum(counts.values()),
            text=text,
        )
        self.index_document(document)
        return document

    def delete_document(self, doc_id: int) -> bool:
        """Remove every posting of ``doc_id``.

        Note the contrast exploited in §7.3: a *plaintext* index can delete
        by document ID in one message because the server can see which
        postings share it; Zerber cannot.
        """
        terms = self._doc_terms.pop(doc_id, None)
        if terms is None:
            return False
        self._doc_lengths.pop(doc_id, None)
        for term in terms:
            plist = self._lists.get(term)
            if plist is not None:
                plist.remove(doc_id)
                if len(plist) == 0:
                    del self._lists[term]
        return True

    # -- lookups ---------------------------------------------------------------

    def posting_list(self, term: str) -> PostingList | None:
        """The posting list for ``term`` (None if the term is unindexed)."""
        return self._lists.get(term)

    def document_frequency(self, term: str) -> int:
        plist = self._lists.get(term)
        return len(plist) if plist else 0

    def lookup(self, terms: Iterable[str]) -> dict[str, list[Posting]]:
        """Disjunctive lookup: term -> its postings, omitting unknown terms."""
        result = {}
        for term in terms:
            plist = self._lists.get(term)
            if plist is not None:
                result[term] = list(plist)
        return result

    def search_or(self, terms: Iterable[str]) -> set[int]:
        """Documents containing *any* query term."""
        docs: set[int] = set()
        for postings in self.lookup(terms).values():
            docs.update(p.doc_id for p in postings)
        return docs

    def search_and(self, terms: Iterable[str]) -> set[int]:
        """Documents containing *all* query terms."""
        term_list = list(terms)
        if not term_list:
            return set()
        sets = []
        for term in term_list:
            plist = self._lists.get(term)
            if plist is None:
                return set()
            sets.append({p.doc_id for p in plist})
        sets.sort(key=len)
        result = sets[0]
        for s in sets[1:]:
            result &= s
        return result

    # -- statistics --------------------------------------------------------------

    @property
    def num_documents(self) -> int:
        return len(self._doc_terms)

    @property
    def vocabulary_size(self) -> int:
        return len(self._lists)

    @property
    def num_postings(self) -> int:
        """Total posting elements across all lists."""
        return sum(len(pl) for pl in self._lists.values())

    def document_frequencies(self) -> dict[str, int]:
        """term -> document frequency for the whole index."""
        return {term: len(plist) for term, plist in self._lists.items()}

    def terms_of(self, doc_id: int) -> set[str]:
        """Distinct terms of an indexed document (empty set if unknown)."""
        return set(self._doc_terms.get(doc_id, set()))

    def document_length(self, doc_id: int) -> int:
        """Token length recorded at indexing time (0 if unknown)."""
        return self._doc_lengths.get(doc_id, 0)
