"""Posting-list structures for the ordinary inverted index (Fig. 1).

A posting records that one document contains one term, together with the
normalized term frequency that ranking needs ("in practice, each element
includes a term frequency, that is, a count of the number of times that term
appears in that document, divided by the document's length", §1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import ReproError


@dataclass(frozen=True, slots=True)
class Posting:
    """One posting-list element of the *plaintext* index.

    Attributes:
        doc_id: the containing document.
        tf: normalized term frequency, ``count / document_length`` in (0, 1].
    """

    doc_id: int
    tf: float

    def __post_init__(self) -> None:
        if not 0.0 < self.tf <= 1.0:
            raise ReproError(
                f"term frequency {self.tf} outside (0, 1] for doc {self.doc_id}"
            )


class PostingList:
    """An append-ordered list of postings for one term.

    Exposes the two quantities the threat model cares about: its *length*
    (the term's document frequency, which "can tell an industrial spy which
    compounds are used", §1) and its elements.
    """

    def __init__(self, term: str) -> None:
        self.term = term
        self._postings: dict[int, Posting] = {}

    def __len__(self) -> int:
        return len(self._postings)

    def __iter__(self) -> Iterator[Posting]:
        return iter(self._postings.values())

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._postings

    def add(self, posting: Posting) -> None:
        """Insert or replace the posting for ``posting.doc_id``."""
        self._postings[posting.doc_id] = posting

    def remove(self, doc_id: int) -> bool:
        """Delete the posting for ``doc_id``; returns whether one existed."""
        return self._postings.pop(doc_id, None) is not None

    def get(self, doc_id: int) -> Posting | None:
        return self._postings.get(doc_id)

    @property
    def document_frequency(self) -> int:
        """The term's document frequency — the list's length."""
        return len(self._postings)

    def by_tf_descending(self) -> list[Posting]:
        """Postings sorted by tf descending (the order Fagin's TA scans)."""
        return sorted(
            self._postings.values(), key=lambda p: (-p.tf, p.doc_id)
        )
