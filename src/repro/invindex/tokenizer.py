"""Document tokenization.

Zerber's indexing flow starts with "its owner first parses the document and
computes its elements" (§5.1). This tokenizer performs that parse: Unicode
word extraction, lowercasing, optional stop-word removal and length
filtering. Note the paper's experiments keep stop words ("we did not remove
stop words", §7.5), so removal defaults to off.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass

# A compact English stop list; only used when a Tokenizer opts in.
DEFAULT_STOP_WORDS = frozenset(
    """a an and are as at be but by for from has have if in into is it its of
    on or not no so such that the their then there these they this to was
    were will with""".split()
)

_WORD_RE = re.compile(r"[\w][\w'-]*", re.UNICODE)


@dataclass(frozen=True)
class Tokenizer:
    """Configurable text -> term-sequence converter.

    Attributes:
        lowercase: fold case before emitting terms.
        remove_stop_words: drop terms in ``stop_words`` (paper default: off).
        stop_words: the stop list used when removal is enabled.
        min_length: drop terms shorter than this many characters.
        max_length: truncate terms longer than this (guards the packed
            term-ID dictionary against pathological tokens).
    """

    lowercase: bool = True
    remove_stop_words: bool = False
    stop_words: frozenset[str] = DEFAULT_STOP_WORDS
    min_length: int = 1
    max_length: int = 64

    def tokens(self, text: str) -> list[str]:
        """All terms of ``text`` in order (with duplicates)."""
        out = []
        for match in _WORD_RE.finditer(text):
            token = match.group(0)
            if self.lowercase:
                token = token.lower()
            if len(token) < self.min_length:
                continue
            token = token[: self.max_length]
            if self.remove_stop_words and token in self.stop_words:
                continue
            out.append(token)
        return out

    def term_counts(self, text: str) -> Counter[str]:
        """term -> occurrence count for ``text``."""
        return Counter(self.tokens(text))


def tokenize(text: str) -> list[str]:
    """Tokenize with paper-default settings (lowercase, stop words kept)."""
    return Tokenizer().tokens(text)
