"""Ordinary inverted index substrate (paper §1, Fig. 1; baseline in §7).

"An inverted index is a sequence of posting lists, each of which contains
the IDs of all documents containing one particular term." This package
implements that classic structure from scratch — tokenizer, posting lists
with term frequencies, and the disk cost model of §7.4 (seek + transfer
time, workload cost formula (6)) — both as Zerber's plaintext comparison
baseline and as the local per-owner index that "each document server
maintains ... of its local shared documents, to support efficient updates"
(§7.2).
"""

from repro.invindex.tokenizer import Tokenizer, tokenize
from repro.invindex.postings import Posting, PostingList
from repro.invindex.inverted_index import InvertedIndex
from repro.invindex.costmodel import DiskCostModel, workload_cost

__all__ = [
    "Tokenizer",
    "tokenize",
    "Posting",
    "PostingList",
    "InvertedIndex",
    "DiskCostModel",
    "workload_cost",
]
