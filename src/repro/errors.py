"""Exception hierarchy for the Zerber reproduction.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch one base class at an API boundary. Subclasses are grouped by the
subsystem that raises them; none of them carry sensitive payloads (no secrets,
no shares) so they are always safe to log.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library.

    Every exception carries a :attr:`retryable` classification read by
    :class:`repro.resilience.RetryPolicy`: True means the failure is
    transient *and* re-issuing the request cannot double-apply state
    (the server rejected it before dispatch, or the request is a pure
    read that never reached an applier). The class attribute is the
    conservative default for the type; transports override it per
    *instance* where safety depends on the request (a broken connection
    is retryable for reads, ambiguous for writes).
    """

    #: May this failure be retried without at-least-once side effects?
    retryable: bool = False


class FieldError(ReproError):
    """Invalid finite-field construction or operation (e.g. non-prime modulus)."""


class SecretSharingError(ReproError):
    """Secret-sharing failure: bad parameters, insufficient or inconsistent shares."""


class InsufficientSharesError(SecretSharingError):
    """Fewer than ``k`` distinct shares were supplied to a reconstruction."""


class PackingError(ReproError):
    """A posting element does not fit the configured bit layout."""


class MergingError(ReproError):
    """A merging heuristic was invoked with unsatisfiable parameters."""


class ConfidentialityError(ReproError):
    """An r-confidentiality computation received invalid probabilities."""


class AuthError(ReproError):
    """Authentication or authorization failure at an index server."""


class AccessDeniedError(AuthError):
    """The authenticated principal lacks the group membership for an operation."""


class IndexServerError(ReproError):
    """An index server rejected a structurally invalid request."""


class UnknownPostingListError(IndexServerError):
    """A lookup referenced a posting-list ID the server has never seen."""


class StorageError(ReproError):
    """A seat's durable store is corrupt, inconsistent, or misused
    (interior segment corruption, bad manifest, engine misconfiguration)."""


class CheckpointMismatchError(IndexServerError):
    """A WAL checkpoint marker (``C <count>``) disagrees with the number
    of live records the replay reconstructed at that point — the log was
    corrupted or truncated *before* the marker, so the replayed state
    cannot be trusted."""


class TransportError(ReproError):
    """Transport failure (unknown endpoint, link down, socket error)."""


class UnknownEndpointError(TransportError):
    """A message was addressed to an endpoint no transport knows about.

    Carries the offending endpoint name so operators (and the failover
    ladder's diagnostics) can say *which* seat vanished — the kill-pod /
    retire-pod race hits this when a client still holds a routing plan
    that names a just-unregistered server.
    """

    def __init__(self, endpoint: str, message: str | None = None) -> None:
        super().__init__(message or f"unknown endpoint {endpoint!r}")
        self.endpoint = endpoint


class DeadlineExceededError(ReproError):
    """A request's deadline budget ran out before a response arrived.

    Raised client-side when the budget expires at send time or while
    waiting, and shipped server-side (as a typed ``ErrorResponse``)
    when the remaining budget is already gone before dispatch. Never
    retryable: the caller's time is spent — retrying a dead deadline
    only burns someone else's.
    """


class OverloadedError(ReproError):
    """A server shed this request at admission instead of queueing it.

    The request was rejected *before* dispatch, so nothing was applied
    — which is exactly what makes it safe to retry (with backoff), even
    for writes.
    """

    retryable = True


class ProtocolError(ReproError):
    """A wire-protocol message could not be encoded or decoded (garbage,
    truncated frame, unknown message type, or unsupported version)."""


class CorpusError(ReproError):
    """Corpus or query-log generation was configured inconsistently."""


class RankingError(ReproError):
    """Ranking was asked to score with malformed statistics."""


class ClusterError(ReproError):
    """A sharded cluster was configured or operated inconsistently."""


class ClusterDegradedError(ClusterError):
    """A pod has fewer than ``k`` live servers, so it can neither accept
    writes nor serve reconstructable lookups until servers restart."""


def error_class(name: str) -> type[ReproError]:
    """Resolve a library exception class by name.

    The wire protocol ships server-side failures as ``ErrorResponse``
    messages carrying the exception's class name; the client-side
    transport re-raises the matching class so callers see the same
    exception across every transport backend. Unknown names fall back to
    :class:`ReproError` (a newer server may know errors this client does
    not).
    """

    def walk(cls: type[ReproError]):
        yield cls
        for sub in cls.__subclasses__():
            yield from walk(sub)

    for cls in walk(ReproError):
        if cls.__name__ == name:
            return cls
    return ReproError
