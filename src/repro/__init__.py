"""repro — a full reproduction of *Zerber: r-Confidential Indexing for
Distributed Documents* (Zerr et al., EDBT 2008).

Zerber is an inverted index for sensitive documents shared inside
collaboration groups. Posting elements are protected with k-out-of-n
Shamir secret sharing across n largely-untrusted index servers (no keys to
manage, no re-encryption on membership change), and posting lists are
*merged* so that the index leaks at most a tunable factor ``r`` beyond an
adversary's background knowledge — even if she takes over ``k - 1``
servers.

Package map (see DESIGN.md for the paper-section cross-reference):

- :mod:`repro.core` — r-confidentiality, posting elements, merging
  heuristics (DFM/BFM/UDM/hash), mapping table, deployment facade;
- :mod:`repro.secretsharing` — Z_p arithmetic, Shamir split/reconstruct,
  proactive refresh;
- :mod:`repro.invindex` — the ordinary inverted index substrate;
- :mod:`repro.server` — index servers, auth, groups, simulated network;
- :mod:`repro.client` — owner daemon, search client, batching, snippets;
- :mod:`repro.ranking` — personalized tf-idf and Fagin's TA;
- :mod:`repro.baselines` — ordinary index, ideal trusted index, μ-Serv;
- :mod:`repro.corpus` — synthetic ODP / Stud IP corpora and query logs;
- :mod:`repro.attacks` — the §7.1 adversary simulations;
- :mod:`repro.analysis` — workload/bandwidth/storage models (§7.2–7.4);
- :mod:`repro.extensions` — the paper's future-work features;
- :mod:`repro.cluster` — the sharded multi-pod cluster engine (pods,
  placement, batched lookups, failover, share caching);
- :mod:`repro.protocol` — the wire-protocol service API: versioned
  messages, binary codec, server-side dispatch, and the pluggable
  in-process / socket transports.
"""

__version__ = "1.1.0"

# core must finish initializing before cluster (which builds on the
# client/core facade) — keep this import first.
from repro.core.zerber_index import ZerberDeployment, ZerberSearchResult

from repro.cluster.deployment import ClusterDeployment

__all__ = [
    "ClusterDeployment",
    "ZerberDeployment",
    "ZerberSearchResult",
    "__version__",
]
