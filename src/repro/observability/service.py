"""The metrics registry as a protocol endpoint.

Like the cache tier, the metrics surface is just another PR 4 service:
register :class:`MetricsService` on a transport registry and the
``MetricsDump`` message answers over the in-process, threaded-socket,
and async-socket backends alike. ``repro cluster top``, ``repro
cluster status``, and a remote operator's scrape all read through this
one door, so they can never disagree with each other.

The dump is token-free by the same argument as ``ServerStatusRequest``
and ``CacheStatsRequest``: it exposes counters, gauges, and latency
quantiles only — never shares, keys, or tokens.
"""

from __future__ import annotations

from repro.errors import ProtocolError
from repro.observability.metrics import MetricsRegistry
from repro.protocol.messages import MetricsDumpRequest, MetricsDumpResponse

#: The conventional endpoint name deployments register the registry under.
METRICS_ENDPOINT = "metrics"


class MetricsService:
    """Protocol dispatch for one metrics registry."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry

    def handle(self, request):
        if isinstance(request, MetricsDumpRequest):
            return MetricsDumpResponse(
                samples=tuple(
                    (s.name, s.labels, s.value)
                    for s in self.registry.samples()
                )
            )
        raise ProtocolError(
            f"metrics endpoint cannot handle {type(request).__name__}"
        )
