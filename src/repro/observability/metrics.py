"""The metrics registry: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` per deployment. Subsystems publish two
ways:

- **hot-path instruments** — a counter/histogram handle fetched once
  and updated on every request (transport frames, query latencies,
  cache hits). Updates take one small lock per instrument, never the
  registry lock.
- **collectors** — callbacks registered with :meth:`add_collector`
  that push point-in-time gauges (per-pod seat liveness, breaker
  states, cache occupancy, repair backlog) when a snapshot is taken.
  State that already lives in a subsystem object is *pulled* at dump
  time instead of being mirrored on every mutation, so the read hot
  path pays nothing for observability it is not using.

Quantiles come from fixed cumulative buckets with linear interpolation
inside the landing bucket — the standard Prometheus estimation. They
are monotone in the quantile by construction (cumulative counts never
decrease across buckets) and safe to read concurrently with writers:
a snapshot is taken under the instrument lock, so totals are never
torn even while many threads record.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Callable, Iterable

#: Default latency buckets in seconds: 100 µs .. ~13 s, x2 per step.
#: Fine enough to resolve loopback RPCs, wide enough for a stalled pod.
DEFAULT_BUCKETS_S = tuple(100e-6 * 2**i for i in range(18))


@dataclass(frozen=True)
class MetricSample:
    """One exported time-series point: ``name{labels} value``."""

    name: str
    labels: str  # canonical 'k="v",k2="v2"' form, "" when unlabelled
    value: float


def _label_key(labels: dict[str, str]) -> str:
    """The canonical label string (sorted, Prometheus-quoted)."""
    if not labels:
        return ""
    return ",".join(
        f'{key}="{value}"' for key, value in sorted(labels.items())
    )


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that goes up and down (depth, occupancy, liveness)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with quantile readout.

    Buckets are upper bounds (``le``); an observation lands in the
    first bucket whose bound is >= the value, or the overflow bucket.
    """

    __slots__ = ("_lock", "bounds", "_counts", "_sum", "_count")

    def __init__(self, bounds: Iterable[float] = DEFAULT_BUCKETS_S) -> None:
        self.bounds = tuple(sorted(float(b) for b in bounds))
        if not self.bounds:
            raise ValueError("a histogram needs at least one bucket")
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.bounds) + 1)  # +1: overflow
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        # Bisect without the import: bucket counts are small (<=18 by
        # default) and the linear scan stays cache-friendly.
        index = 0
        for bound in self.bounds:
            if value <= bound:
                break
            index += 1
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> tuple[list[int], float, int]:
        """(bucket counts, sum, count) — consistent under the lock."""
        with self._lock:
            return list(self._counts), self._sum, self._count

    def quantile(self, q: float, *, _snapshot=None) -> float:
        """Estimated q-quantile (0 < q <= 1) via bucket interpolation.

        Returns 0.0 for an empty histogram. Estimates are monotone in
        ``q`` for any fixed snapshot: the cumulative counts the search
        walks never decrease.
        """
        counts, _total_sum, count = _snapshot or self.snapshot()
        if count == 0:
            return 0.0
        rank = q * count
        cumulative = 0
        lower = 0.0
        for index, bound in enumerate(self.bounds):
            previous = cumulative
            cumulative += counts[index]
            if cumulative >= rank:
                inside = counts[index]
                fraction = (rank - previous) / inside if inside else 0.0
                return lower + (bound - lower) * fraction
            lower = bound
        return self.bounds[-1]  # landed in the overflow bucket

    def percentiles(self) -> dict[str, float]:
        """The dashboard trio, from one consistent snapshot."""
        snap = self.snapshot()
        return {
            "p50": self.quantile(0.50, _snapshot=snap),
            "p95": self.quantile(0.95, _snapshot=snap),
            "p99": self.quantile(0.99, _snapshot=snap),
        }


class MetricsRegistry:
    """Get-or-create instrument store plus collector callbacks.

    Instruments are identified by ``(name, canonical labels)``; asking
    twice returns the same object, so subsystems can fetch handles
    lazily without coordination. A name is one kind of instrument
    forever — re-registering it as another kind raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple[str, str], object] = {}
        self._kinds: dict[str, type] = {}
        self._collectors: list[Callable[["MetricsRegistry"], None]] = []

    def _get(self, cls: type, name: str, labels: dict[str, str], **kwargs):
        key = (name, _label_key(labels))
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} is a "
                        f"{type(existing).__name__}, not a {cls.__name__}"
                    )
                return existing
            kind = self._kinds.setdefault(name, cls)
            if kind is not cls:
                raise TypeError(
                    f"metric {name!r} already registered as {kind.__name__}"
                )
            instrument = cls(**kwargs)
            self._instruments[key] = instrument
            return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS_S,
        **labels: str,
    ) -> Histogram:
        return self._get(Histogram, name, labels, bounds=buckets)

    def add_collector(
        self, collector: Callable[["MetricsRegistry"], None]
    ) -> None:
        """Register a dump-time callback that sets gauges from live state."""
        with self._lock:
            self._collectors.append(collector)

    def collect(self) -> None:
        """Run every collector (each may set gauges on this registry)."""
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            collector(self)

    def samples(self) -> list[MetricSample]:
        """All series, collectors included, histograms exploded into
        ``_bucket``/``_sum``/``_count`` plus quantile series."""
        self.collect()
        with self._lock:
            items = sorted(self._instruments.items())
        out: list[MetricSample] = []
        for (name, labels), instrument in items:
            if isinstance(instrument, (Counter, Gauge)):
                out.append(MetricSample(name, labels, instrument.value))
                continue
            assert isinstance(instrument, Histogram)
            counts, total_sum, count = instrument.snapshot()
            cumulative = 0
            for index, bound in enumerate(instrument.bounds):
                cumulative += counts[index]
                le = _label_key({"le": f"{bound:g}"})
                tag = f"{labels},{le}" if labels else le
                out.append(MetricSample(f"{name}_bucket", tag, cumulative))
            inf = _label_key({"le": "+Inf"})
            tag = f"{labels},{inf}" if labels else inf
            out.append(MetricSample(f"{name}_bucket", tag, count))
            out.append(MetricSample(f"{name}_sum", labels, total_sum))
            out.append(MetricSample(f"{name}_count", labels, count))
            snap = (counts, total_sum, count)
            for q in (0.50, 0.95, 0.99):
                qlabel = _label_key({"quantile": f"{q:g}"})
                tag = f"{labels},{qlabel}" if labels else qlabel
                out.append(
                    MetricSample(
                        name, tag, instrument.quantile(q, _snapshot=snap)
                    )
                )
        return out


def parse_labels(labels: str) -> dict[str, str]:
    """Invert :func:`_label_key`: ``'k="v",k2="v2"'`` -> dict.

    Values are the registry's own canonical quoting (no embedded
    quotes or commas), so a plain split round-trips exactly.
    """
    if not labels:
        return {}
    out: dict[str, str] = {}
    for part in labels.split(","):
        key, _eq, value = part.partition("=")
        out[key] = value.strip('"')
    return out


class SampleView:
    """Read-side index over a dumped sample set.

    Accepts :class:`MetricSample` objects or the wire triples a
    ``MetricsDumpResponse`` carries, so the CLI renders local and
    remote dumps through the same code.
    """

    def __init__(self, samples: Iterable) -> None:
        self.samples: list[MetricSample] = [
            s if isinstance(s, MetricSample) else MetricSample(*s)
            for s in samples
        ]

    def value(
        self, name: str, default: float | None = None, **labels: str
    ) -> float | None:
        """The sample's value at exactly these labels (default: absent)."""
        key = _label_key(labels)
        for sample in self.samples:
            if sample.name == name and sample.labels == key:
                return sample.value
        return default

    def label_values(self, name: str, label: str) -> list[str]:
        """Distinct values one label takes across a series (sorted)."""
        seen = set()
        for sample in self.samples:
            if sample.name != name:
                continue
            value = parse_labels(sample.labels).get(label)
            if value is not None:
                seen.add(value)
        return sorted(seen)

    def by_label(self, name: str, label: str) -> dict[str, float]:
        """label value -> sample value, for single-label series."""
        out: dict[str, float] = {}
        for sample in self.samples:
            if sample.name != name:
                continue
            value = parse_labels(sample.labels).get(label)
            if value is not None:
                out[value] = sample.value
        return out


def render_prometheus(samples: Iterable[MetricSample]) -> str:
    """Prometheus text exposition (format 0.0.4) of a sample set.

    ``# TYPE`` comments are deliberately omitted: the registry's
    sample list interleaves quantile series with raw series under one
    family name, and a wrong type hint is worse than none. Values use
    ``repr``-faithful formatting so a scrape round-trips exactly.
    """
    lines = []
    for sample in samples:
        label_part = f"{{{sample.labels}}}" if sample.labels else ""
        value = sample.value
        if value == math.floor(value) and abs(value) < 1e15:
            rendered = str(int(value))
        else:
            rendered = repr(value)
        lines.append(f"{sample.name}{label_part} {rendered}")
    return "\n".join(lines) + ("\n" if lines else "")
