"""Cluster-wide observability: metrics registry, tracing, exposition.

Three pieces, each usable on its own:

- :mod:`repro.observability.metrics` — a thread-safe registry of
  counters, gauges, and fixed-bucket histograms (p50/p95/p99 readout)
  that every subsystem publishes into. One registry per deployment;
  collectors pull point-in-time state (per-pod gauges, breaker states,
  cache occupancy) at dump time so nothing polls in the hot path.
- :mod:`repro.observability.tracing` — wire-level request tracing: a
  thread-local trace context (modeled on the deadline scope), per-hop
  span records in a bounded in-memory buffer, and the 8-byte trace id
  + 2-byte hop counter that rides the request envelope under
  ``TRACE_FLAG``.
- :mod:`repro.observability.service` — the ``MetricsDump`` protocol
  endpoint plus the Prometheus-style text writer, so a remote
  operator's probe reads the same numbers `repro cluster top` renders.
"""

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricSample,
    MetricsRegistry,
    SampleView,
    parse_labels,
    render_prometheus,
)
from repro.observability.tracing import (
    Span,
    SpanBuffer,
    TraceContext,
    current_trace,
    global_spans,
    new_trace_id,
    record_span,
    span,
    trace_scope,
)
from repro.observability.service import METRICS_ENDPOINT, MetricsService

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSample",
    "MetricsRegistry",
    "SampleView",
    "parse_labels",
    "render_prometheus",
    "Span",
    "SpanBuffer",
    "TraceContext",
    "current_trace",
    "global_spans",
    "new_trace_id",
    "record_span",
    "span",
    "trace_scope",
    "METRICS_ENDPOINT",
    "MetricsService",
]
