"""Wire-level request tracing: ambient trace context + span records.

The design copies :mod:`repro.resilience.deadline` deliberately: a
trace is a thread-local ambient context set by :func:`trace_scope`,
sampled by the transports at send time, and re-applied explicitly on
fan-out worker threads (the dispatcher does not inherit thread-locals).
On the wire the context is an 8-byte trace id plus a 2-byte hop
counter riding the request envelope under ``TRACE_FLAG`` — see
:mod:`repro.protocol.transport`.

Spans are **passive**: recording one never influences routing, replica
ordering, retry decisions, or response bytes, which is how tracing
keeps the byte-identity invariant (results with tracing on equal
results with tracing off, CI-pinned). With no ambient trace,
:func:`span` is a no-op costing one thread-local read.

Spans land in a bounded in-memory ring (:class:`SpanBuffer`); the
process-wide default (:func:`global_spans`) is what the embedded
servers and clients share, dumpable per trace id.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

#: Trace ids are 8 wire bytes; hop counters 2.
MAX_TRACE_ID = 0xFFFF_FFFF_FFFF_FFFF
MAX_HOP = 0xFFFF

_local = threading.local()

# Process-unique, deterministic trace ids: a counter folded with the
# 'ZT' tag in the high bytes so ids are recognizably ours in dumps.
# (No entropy on purpose — seeded runs produce identical trace ids.)
_ids = itertools.count(1)


def new_trace_id() -> int:
    """The next process-unique 64-bit trace id."""
    return (0x5A54 << 48) | (next(_ids) & 0xFFFF_FFFF_FFFF)


@dataclass(frozen=True)
class TraceContext:
    """The ambient identity of one traced request."""

    trace_id: int
    hop: int = 0

    def next_hop(self) -> "TraceContext":
        """The context a downstream peer should run under."""
        return TraceContext(self.trace_id, min(self.hop + 1, MAX_HOP))


@dataclass
class Span:
    """One recorded stage of a traced request."""

    trace_id: int
    hop: int
    stage: str
    start_s: float  # time.perf_counter() at stage entry
    duration_s: float
    wire_bytes: int = 0

    def render(self) -> str:
        return (
            f"hop {self.hop:2d}  {self.stage:<24s} "
            f"{self.duration_s * 1e3:9.3f} ms  {self.wire_bytes:8d} B"
        )


class SpanBuffer:
    """A bounded, thread-safe ring of spans (oldest evicted first).

    Backed by a ``deque(maxlen=...)`` so recording at capacity is an
    O(1) append-with-evict — a list-based ring pays an O(capacity)
    shift per record once full, which shows up as double-digit
    saturation-qps loss under the instrumentation-overhead gate.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("span buffer capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._spans: deque[Span] = deque(maxlen=capacity)
        self.dropped = 0

    def record(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) == self.capacity:
                self.dropped += 1
            self._spans.append(span)

    def spans_for(self, trace_id: int) -> list[Span]:
        """All retained spans of one trace, in start order."""
        with self._lock:
            matched = [s for s in self._spans if s.trace_id == trace_id]
        return sorted(matched, key=lambda s: (s.start_s, s.hop))

    def dump(self, trace_id: int) -> str:
        """A human-readable per-trace breakdown."""
        spans = self.spans_for(trace_id)
        header = f"trace {trace_id:#018x}: {len(spans)} spans"
        return "\n".join([header] + [f"  {s.render()}" for s in spans])

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


_GLOBAL_SPANS = SpanBuffer(capacity=8192)


def global_spans() -> SpanBuffer:
    """The process-wide span ring shared by embedded clients/servers."""
    return _GLOBAL_SPANS


def current_trace() -> TraceContext | None:
    """The calling thread's ambient trace, if a scope is active."""
    return getattr(_local, "trace", None)


@contextmanager
def trace_scope(
    trace: TraceContext | None = None, trace_id: int | None = None
) -> Iterator[TraceContext | None]:
    """Run the body under a trace context (thread-local, nested).

    Pass an existing ``trace`` (re-applying a caller's context on a
    worker thread, or restoring the wire context server-side) or a
    bare ``trace_id`` to start hop 0. With neither, the body runs
    untraced — callers can pass through their arguments unconditionally.
    """
    if trace is None:
        if trace_id is None:
            yield None
            return
        trace = TraceContext(trace_id=trace_id, hop=0)
    previous = current_trace()
    _local.trace = trace
    try:
        yield trace
    finally:
        _local.trace = previous


def record_span(
    stage: str,
    start_s: float,
    duration_s: float,
    wire_bytes: int = 0,
    trace: TraceContext | None = None,
    buffer: SpanBuffer | None = None,
) -> None:
    """Record one span against the ambient (or given) trace; no-op
    when no trace is active."""
    if trace is None:
        trace = current_trace()
        if trace is None:
            return
    # Explicit None check: an *empty* SpanBuffer is falsy (__len__), so
    # ``buffer or _GLOBAL_SPANS`` would silently misroute the first span.
    target = _GLOBAL_SPANS if buffer is None else buffer
    target.record(
        Span(
            trace_id=trace.trace_id,
            hop=trace.hop,
            stage=stage,
            start_s=start_s,
            duration_s=duration_s,
            wire_bytes=wire_bytes,
        )
    )


@dataclass
class _OpenSpan:
    """The mutable handle :func:`span` yields (to attach wire bytes)."""

    wire_bytes: int = 0


@contextmanager
def span(stage: str, buffer: SpanBuffer | None = None):
    """Time the body as one stage of the ambient trace.

    No ambient trace — one thread-local read, nothing recorded. The
    yielded handle's ``wire_bytes`` can be set before exit to tag the
    span with its wire cost. The span is recorded even when the body
    raises: a failed stage still spent its time.
    """
    trace = current_trace()
    if trace is None:
        yield _OpenSpan()
        return
    handle = _OpenSpan()
    start = time.perf_counter()
    try:
        yield handle
    finally:
        record_span(
            stage,
            start_s=start,
            duration_s=time.perf_counter() - start,
            wire_bytes=handle.wire_bytes,
            trace=trace,
            buffer=buffer,
        )
