"""Server-side admission control: shed early, shed typed, shed cheap.

An overloaded server that keeps queueing turns overload into latency
collapse — every queued request still gets served, seconds too late,
and the client has long since timed out and retried (adding more
load). Bounding the dispatch queue converts the same overload into
fast typed :class:`~repro.errors.OverloadedError` rejections: the
client's :class:`~repro.resilience.retry.RetryPolicy` backs off (the
error is classified retryable — nothing was applied), the deadline
machinery keeps the caller's budget honest, and the server's goodput
stays at capacity instead of collapsing.

One controller instance guards one server's dispatch concurrency; both
socket servers and :class:`~repro.protocol.service.IndexServerService`
accept one. Counters are cheap and lock-protected — they feed the
load bench (``BENCH_load.json``) and operator surfaces.
"""

from __future__ import annotations

import threading

from repro.errors import OverloadedError, ReproError


class AdmissionController:
    """A bounded dispatch gate with shed accounting.

    Args:
        max_pending: concurrent admitted requests before shedding.
    """

    def __init__(self, max_pending: int) -> None:
        if max_pending < 1:
            raise ReproError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        self.max_pending = max_pending
        self._lock = threading.Lock()
        self._depth = 0
        self.peak_depth = 0
        self.admitted = 0
        self.shed = 0

    def try_acquire(self) -> bool:
        """Admit one request, or count a shed and refuse."""
        with self._lock:
            if self._depth >= self.max_pending:
                self.shed += 1
                return False
            self._depth += 1
            self.admitted += 1
            if self._depth > self.peak_depth:
                self.peak_depth = self._depth
            return True

    def release(self) -> None:
        with self._lock:
            if self._depth > 0:
                self._depth -= 1

    def admit(self, what: str = "request") -> None:
        """Admit or raise the typed retryable rejection."""
        if not self.try_acquire():
            raise OverloadedError(
                f"{what} shed: {self.max_pending} requests already "
                "in dispatch (retryable)"
            )

    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth

    def stats(self) -> dict:
        """Counters for benches and ``status_snapshot`` surfaces."""
        with self._lock:
            return {
                "max_pending": self.max_pending,
                "depth": self._depth,
                "peak_depth": self.peak_depth,
                "admitted": self.admitted,
                "shed": self.shed,
            }
