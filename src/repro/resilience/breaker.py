"""Per-pod circuit breakers: stop asking a fleet that keeps saying no.

The failover ladder already *survives* a dead pod — but it still pays
to discover the death on every query (a TransportError per seat per
round). A breaker remembers: ``failure_threshold`` consecutive failed
legs open it, an open breaker deprioritizes the pod in
:meth:`ClusterCoordinator.read_replicas` ranking for ``cooldown_s``,
then a single half-open probe decides between closing it (pod is back)
and re-opening for a doubled cooldown (still down, capped at
``max_cooldown_s``). Ranking-level integration means an open pod is
*deprioritized, never forbidden* — when every replica's breaker is
open, the ladder still tries them all rather than failing a query the
pods could have answered.

State transitions are observation-driven (record_success /
record_failure from the query path), so with a deterministic clock and
a deterministic failure schedule the breaker is fully reproducible.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """One endpoint-group's health automaton (thread-safe).

    Args:
        failure_threshold: consecutive failures that open the breaker.
        cooldown_s: how long an open breaker deprioritizes its pod
            before allowing a half-open probe.
        max_cooldown_s: cap for the doubling re-open cooldown.
        clock: injectable monotonic clock for deterministic tests.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 1.0,
        max_cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._failure_threshold = failure_threshold
        self._base_cooldown_s = cooldown_s
        self._cooldown_s = cooldown_s
        self._max_cooldown_s = max_cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_outstanding = False
        #: Lifetime counters (surfaced in ``status_snapshot()["health"]``).
        self.times_opened = 0
        self.recorded_failures = 0
        self.recorded_successes = 0

    # -- observations ----------------------------------------------------------

    def record_success(self) -> None:
        """A leg against this pod completed: close whatever was open."""
        with self._lock:
            self.recorded_successes += 1
            self._consecutive_failures = 0
            self._probe_outstanding = False
            if self._state != CLOSED:
                self._state = CLOSED
                self._cooldown_s = self._base_cooldown_s

    def record_failure(self) -> None:
        """A leg failed outright (no seat of the pod answered)."""
        with self._lock:
            self.recorded_failures += 1
            self._consecutive_failures += 1
            if self._state == HALF_OPEN:
                # The probe failed: re-open for longer.
                self._trip()
            elif (
                self._state == CLOSED
                and self._consecutive_failures >= self._failure_threshold
            ):
                self._trip()

    def _trip(self) -> None:
        """(Re-)open; caller holds the lock."""
        if self._state == HALF_OPEN:
            self._cooldown_s = min(
                self._cooldown_s * 2.0, self._max_cooldown_s
            )
        self._state = OPEN
        self._opened_at = self._clock()
        self._probe_outstanding = False
        self.times_opened += 1

    # -- routing reads ---------------------------------------------------------

    def deprioritize(self) -> bool:
        """Should ranking push this pod to the back *right now*?

        An open breaker whose cooldown has elapsed releases exactly one
        half-open probe (the first ranking read after the cooldown sees
        the pod at normal priority; concurrent readers keep it
        deprioritized until the probe's outcome is recorded).
        """
        with self._lock:
            if self._state == CLOSED:
                return False
            if self._state == OPEN:
                if self._clock() - self._opened_at < self._cooldown_s:
                    return True
                self._state = HALF_OPEN
                self._probe_outstanding = False
            # HALF_OPEN: let one probe through at normal rank.
            if self._probe_outstanding:
                return True
            self._probe_outstanding = True
            return False

    # -- introspection ---------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            if (
                self._state == OPEN
                and self._clock() - self._opened_at >= self._cooldown_s
            ):
                return HALF_OPEN  # due for a probe
            return self._state

    def snapshot(self) -> dict:
        """The ``status_snapshot()["health"]`` entry for this breaker."""
        state = self.state
        with self._lock:
            return {
                "state": state,
                "consecutive_failures": self._consecutive_failures,
                "times_opened": self.times_opened,
                "failures": self.recorded_failures,
                "successes": self.recorded_successes,
                "cooldown_s": self._cooldown_s,
            }


class BreakerRegistry:
    """Breakers keyed by pod name, created on first observation."""

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 1.0,
        max_cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._factory = lambda: CircuitBreaker(
            failure_threshold=failure_threshold,
            cooldown_s=cooldown_s,
            max_cooldown_s=max_cooldown_s,
            clock=clock,
        )
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}

    def of(self, name: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = self._breakers[name] = self._factory()
            return breaker

    def record_success(self, name: str) -> None:
        self.of(name).record_success()

    def record_failure(self, name: str) -> None:
        self.of(name).record_failure()

    def deprioritize(self, name: str) -> bool:
        """Ranking read; pods never observed are healthy by default."""
        with self._lock:
            breaker = self._breakers.get(name)
        return breaker.deprioritize() if breaker is not None else False

    def forget(self, name: str) -> None:
        """Drop a retired pod's breaker (name may be reused later)."""
        with self._lock:
            self._breakers.pop(name, None)

    def snapshot(self) -> dict[str, dict]:
        with self._lock:
            items = list(self._breakers.items())
        return {name: breaker.snapshot() for name, breaker in items}
