"""Ambient request deadlines: one absolute expiry, many shrinking hops.

A deadline is an absolute ``time.monotonic()`` instant, not a duration:
every layer that touches the request — the searcher's fetch ladder, a
failover round, a transport retry, the snippet fetch — reads the *same*
expiry and therefore sees a naturally shrinking budget, with no
budget-threading through a dozen call signatures. The deadline rides a
thread-local set by :func:`deadline_scope`; transports sample it at
send time and serialize the *remaining* budget onto the wire (absolute
instants don't survive clock skew between machines — a remaining
budget does, minus transit time, which only makes the server side
*more* conservative).

The scope is per thread by design: the cluster's fan-out dispatcher
runs pod legs on worker threads, so code that hands work to another
thread re-applies the deadline explicitly (``deadline_scope(
deadline=...)``) — see :meth:`ClusterSearchClient._fetch_with_failover`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.errors import DeadlineExceededError

#: Wire budgets are 4-byte unsigned microseconds (~71 minutes max —
#: anything longer is indistinguishable from "no deadline" for a
#: request/response protocol and is clamped rather than rejected).
MAX_BUDGET_US = 0xFFFF_FFFF

_local = threading.local()


class Deadline:
    """An absolute expiry on the monotonic clock.

    Args:
        expires_at: ``time.monotonic()`` instant after which the
            request's answer is worthless to its caller.
    """

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float) -> None:
        self.expires_at = float(expires_at)

    @classmethod
    def after(cls, budget_s: float) -> "Deadline":
        """A deadline ``budget_s`` seconds from now."""
        return cls(time.monotonic() + budget_s)

    def remaining_s(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - time.monotonic()

    @property
    def expired(self) -> bool:
        return self.remaining_s() <= 0.0

    def budget_us(self) -> int:
        """The remaining budget as clamped wire microseconds (>= 0)."""
        remaining = self.remaining_s()
        if remaining <= 0.0:
            return 0
        return min(int(remaining * 1e6), MAX_BUDGET_US)

    def check(self, what: str = "request") -> None:
        """Raise the typed error if this deadline has passed."""
        remaining = self.remaining_s()
        if remaining <= 0.0:
            raise DeadlineExceededError(
                f"{what} deadline exceeded "
                f"({-remaining * 1e3:.1f} ms past its budget)"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining={self.remaining_s() * 1e3:.1f}ms)"


def current_deadline() -> Deadline | None:
    """The calling thread's ambient deadline, if a scope is active."""
    return getattr(_local, "deadline", None)


def remaining_budget_s() -> float | None:
    """Seconds left on the ambient deadline (None when unbounded)."""
    deadline = current_deadline()
    return None if deadline is None else deadline.remaining_s()


def check_deadline(what: str = "request") -> None:
    """Raise :class:`DeadlineExceededError` if the ambient deadline passed."""
    deadline = current_deadline()
    if deadline is not None:
        deadline.check(what)


@contextmanager
def deadline_scope(
    budget_s: float | None = None, deadline: Deadline | None = None
):
    """Run the body under a deadline (thread-local, properly nested).

    Pass either a relative ``budget_s`` or an existing ``deadline``
    object (re-applying a caller's deadline on a worker thread). A
    nested scope can only *tighten* the deadline: when an outer scope
    is already closer, the outer expiry stays in force — a callee must
    never outlive its caller's patience.
    """
    if deadline is None:
        if budget_s is None:
            yield None
            return
        deadline = Deadline.after(budget_s)
    previous = current_deadline()
    if previous is not None and previous.expires_at < deadline.expires_at:
        deadline = previous
    _local.deadline = deadline
    try:
        yield deadline
    finally:
        _local.deadline = previous
