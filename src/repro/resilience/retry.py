"""Declarative retry: bounded attempts, seeded-jitter backoff, typed
classification.

One policy object replaces the transports' ad-hoc ``for attempt in
(0, 1)`` loops. Three rules decide whether an attempt N+1 happens:

1. the error must be classified retryable — the ``retryable``
   attribute on the :mod:`repro.errors` hierarchy, instance overrides
   included (a broken connection is retryable for pure reads, a fail-
   fast ambiguity for writes);
2. attempts are bounded by ``max_attempts``;
3. the backoff sleep must fit the ambient deadline — a retry that
   would outsleep the caller's budget converts to the typed
   :class:`~repro.errors.DeadlineExceededError` immediately instead.

Jitter is deterministic: the policy owns a seeded RNG, so a test (or a
reproduced incident) replays the exact same sleep schedule. The RNG is
lock-protected — one policy instance is typically shared by every
calling thread of a transport.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from random import Random
from typing import Any, Callable

from repro.errors import DeadlineExceededError, ReproError
from repro.resilience.deadline import current_deadline


def is_retryable(error: BaseException) -> bool:
    """The taxonomy read: instance attribute first, class default second."""
    return bool(getattr(error, "retryable", False))


@dataclass
class RetryPolicy:
    """How many times, how long between, and which failures at all.

    Args:
        max_attempts: total tries including the first (1 = no retry).
        base_backoff_s: sleep before the first retry.
        multiplier: exponential growth per further retry.
        max_backoff_s: cap on any single sleep.
        jitter: fraction of the computed backoff replaced by a seeded
            uniform draw — ``backoff * (1 - jitter + jitter * u)``
            keeps the expectation near the schedule while decorrelating
            concurrent retriers.
        seed: jitter RNG seed (deterministic sleep schedule per policy).
        sleep: injectable sleep for tests.
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.01
    multiplier: float = 2.0
    max_backoff_s: float = 0.25
    jitter: float = 0.5
    seed: int = 0x2E4B
    sleep: Callable[[float], None] = time.sleep
    _rng: Random = field(init=False, repr=False)
    _rng_lock: threading.Lock = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ReproError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        self._rng = Random(self.seed)
        self._rng_lock = threading.Lock()

    def backoff_s(self, retry_index: int) -> float:
        """The jittered sleep before retry ``retry_index`` (0-based)."""
        backoff = min(
            self.base_backoff_s * (self.multiplier**retry_index),
            self.max_backoff_s,
        )
        if self.jitter <= 0.0 or backoff <= 0.0:
            return backoff
        with self._rng_lock:
            u = self._rng.random()
        return backoff * (1.0 - self.jitter + self.jitter * u)

    def should_retry(self, error: BaseException, attempt: int) -> bool:
        """May attempt ``attempt`` (0-based) be followed by another?"""
        return attempt + 1 < self.max_attempts and is_retryable(error)

    def pause_before_retry(self, retry_index: int) -> None:
        """Sleep the scheduled backoff, deadline-capped.

        Raises:
            DeadlineExceededError: the remaining ambient budget is
                smaller than the scheduled sleep — the retry could
                never answer in time, so the caller learns *now*.
        """
        backoff = self.backoff_s(retry_index)
        deadline = current_deadline()
        if deadline is not None and deadline.remaining_s() <= backoff:
            raise DeadlineExceededError(
                f"retry backoff of {backoff * 1e3:.1f} ms does not fit "
                "the remaining deadline budget"
            )
        if backoff > 0.0:
            self.sleep(backoff)

    def run(self, attempt_fn: Callable[[int], Any]) -> Any:
        """Run ``attempt_fn(attempt_index)`` under this policy.

        The last error is re-raised unchanged when attempts run out or
        the error is terminal — classification lives on the error, so
        callers keep their typed failure modes.
        """
        retries = 0
        for attempt in range(self.max_attempts):
            try:
                return attempt_fn(attempt)
            except ReproError as exc:
                if not self.should_retry(exc, attempt):
                    raise
                self.pause_before_retry(retries)
                retries += 1
        raise AssertionError("unreachable")  # pragma: no cover
