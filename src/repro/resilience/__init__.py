"""Request-lifecycle machinery: deadlines, retries, breakers, chaos.

Everything a production request path needs beyond "either it works or
it raises":

- :mod:`~repro.resilience.deadline` — an ambient per-thread deadline
  that transports serialize onto the wire as a shrinking budget and
  servers check before dispatch;
- :mod:`~repro.resilience.retry` — a declarative :class:`RetryPolicy`
  (bounded attempts, exponential backoff, deterministic seeded jitter,
  ``retryable``-classified errors) shared by both socket transports;
- :mod:`~repro.resilience.breaker` — per-pod circuit breakers
  (closed / open / half-open) feeding the coordinator's replica
  ranking and ``status_snapshot()["health"]``;
- :mod:`~repro.resilience.admission` — bounded server-side dispatch
  with typed retryable :class:`~repro.errors.OverloadedError` shedding;
- :mod:`~repro.resilience.faults` — the seeded :class:`FaultPlan` /
  :class:`FaultyTransport` chaos harness behind
  ``tests/test_chaos_drill.py``.

All randomness in this package is seeded: two runs with the same seeds
make the same retry jitter, the same fault schedule, the same breaker
decisions at the same observed failures.
"""

from repro.resilience.admission import AdmissionController
from repro.resilience.breaker import BreakerRegistry, CircuitBreaker
from repro.resilience.deadline import (
    Deadline,
    check_deadline,
    current_deadline,
    deadline_scope,
    remaining_budget_s,
)
from repro.resilience.retry import RetryPolicy, is_retryable

_LAZY = ("FaultPlan", "FaultyTransport")


def __getattr__(name: str):
    # The chaos harness imports the transport layer, and the transport
    # layer imports this package's deadline/retry submodules — loading
    # faults lazily keeps that dependency loop open at import time.
    if name in _LAZY:
        from repro.resilience import faults

        return getattr(faults, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )

__all__ = [
    "AdmissionController",
    "BreakerRegistry",
    "CircuitBreaker",
    "Deadline",
    "FaultPlan",
    "FaultyTransport",
    "RetryPolicy",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
    "is_retryable",
    "remaining_budget_s",
]
