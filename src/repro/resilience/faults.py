"""Deterministic chaos: seeded fault schedules over any transport.

:class:`FaultyTransport` wraps any :class:`~repro.protocol.transport
.Transport` and injects the unpolite failure modes the real network
produces — latency spikes, connection resets, dropped frames,
duplicated frames, slow-seat stalls — on a schedule drawn from a
seeded :class:`FaultPlan`. Same seed, same schedule: a chaos drill
that fails replays exactly.

The injection point is the client-side ``call`` boundary, which makes
the harness transport-agnostic (the same plan runs over in-process,
threaded TCP, and the async stack) and keeps fault *semantics* honest:

- a **reset** or **drop** surfaces as the same typed
  :class:`~repro.errors.TransportError` a real broken socket produces,
  with the same read-vs-write ``retryable`` classification the
  transports apply (a lost write response is ambiguous — it may have
  been applied — so it must fail fast);
- a **duplicate** re-delivers a *pure read* and returns the second
  response (byte-identical stores answer byte-identically — that is
  the invariant the drill checks). Write frames are never duplicated:
  TCP cannot duplicate a frame inside one stream, and the fail-fast
  write classification exists precisely because a transport can never
  know whether an unacknowledged write landed;
- **latency** and **stall** sleep before forwarding, which exercises
  deadline enforcement and hedged reads.

For storage-level chaos, :meth:`FaultPlan.storage_crash_hook` reuses
the PR 5 crash-injection seam (``SegmentedStore._crash_hook``) to
crash compactions at seeded points.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Collection

from repro.errors import ReproError, TransportError
from repro.protocol.transport import _RETRY_SAFE, Transport

from random import Random

#: The injectable fault kinds, in draw order.
FAULT_KINDS = ("latency", "stall", "reset", "drop", "duplicate")


class FaultPlan:
    """A seeded schedule of fault draws.

    Each :meth:`draw` consumes one uniform variate and maps it onto the
    configured rates, so the fault sequence is a pure function of the
    seed and the number of calls made so far. Rates are probabilities
    per call; their sum must stay <= 1.

    Args:
        seed: the schedule.
        latency_rate / latency_s: small latency spikes.
        stall_rate / stall_s: long slow-seat stalls.
        reset_rate: injected connection resets.
        drop_rate: dropped frames (no response ever arrives).
        duplicate_rate: duplicated read frames.
        endpoints: when given, faults only strike calls to these
            destination names (the "one slow pod" shape); other calls
            pass through untouched *without consuming a draw*, so the
            targeted schedule is independent of background traffic.
        max_faults: stop injecting after this many faults (None: never).
    """

    def __init__(
        self,
        seed: int,
        latency_rate: float = 0.0,
        latency_s: float = 0.005,
        stall_rate: float = 0.0,
        stall_s: float = 0.2,
        reset_rate: float = 0.0,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        endpoints: Collection[str] | None = None,
        max_faults: int | None = None,
    ) -> None:
        rates = {
            "latency": latency_rate,
            "stall": stall_rate,
            "reset": reset_rate,
            "drop": drop_rate,
            "duplicate": duplicate_rate,
        }
        if any(rate < 0.0 for rate in rates.values()):
            raise ReproError("fault rates must be >= 0")
        if sum(rates.values()) > 1.0 + 1e-9:
            raise ReproError(
                f"fault rates sum to {sum(rates.values()):.3f} > 1"
            )
        self.seed = seed
        self.rates = rates
        self.latency_s = latency_s
        self.stall_s = stall_s
        self.endpoints = None if endpoints is None else frozenset(endpoints)
        self.max_faults = max_faults
        self._rng = Random(seed)
        self._lock = threading.Lock()
        #: kind -> times injected (drills assert the schedule actually
        #: exercised something).
        self.injected: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}

    def targets(self, dst: str) -> bool:
        return self.endpoints is None or dst in self.endpoints

    def draw(self) -> str | None:
        """The next fault in the schedule (None: this call is clean)."""
        with self._lock:
            if (
                self.max_faults is not None
                and sum(self.injected.values()) >= self.max_faults
            ):
                return None
            u = self._rng.random()
            cumulative = 0.0
            for kind in FAULT_KINDS:
                cumulative += self.rates[kind]
                if u < cumulative:
                    self.injected[kind] += 1
                    return kind
            return None

    def total_injected(self) -> int:
        with self._lock:
            return sum(self.injected.values())

    def storage_crash_hook(
        self,
        crash_rate: float,
        crash_exception: Callable[[str], BaseException],
    ) -> Callable[[str], None]:
        """A seeded ``SegmentedStore._crash_hook`` — the PR 5 seam.

        Each compaction checkpoint label draws against ``crash_rate``;
        a hit raises ``crash_exception(label)`` there, simulating a
        crash at that point of the compaction.
        """

        def hook(label: str) -> None:
            with self._lock:
                u = self._rng.random()
            if u < crash_rate:
                raise crash_exception(label)

        return hook


class FaultyTransport(Transport):
    """A transport wrapper executing a :class:`FaultPlan`.

    Endpoint listing and registration-ish surfaces pass straight
    through; only ``call`` draws faults.
    """

    def __init__(
        self,
        inner: Transport,
        plan: FaultPlan,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._inner = inner
        self.plan = plan
        self._sleep = sleep

    def call(self, src: str, dst: str, request: Any) -> Any:
        if not self.plan.targets(dst):
            return self._inner.call(src, dst, request)
        fault = self.plan.draw()
        if fault == "latency":
            self._sleep(self.plan.latency_s)
        elif fault == "stall":
            self._sleep(self.plan.stall_s)
        elif fault in ("reset", "drop"):
            detail = (
                "injected connection reset"
                if fault == "reset"
                else "injected dropped frame (no response)"
            )
            error = TransportError(f"{detail} for {dst!r}")
            # Same classification the real transports apply: a lost
            # pure read is safely retryable, a lost write is ambiguous.
            error.retryable = isinstance(request, _RETRY_SAFE)
            raise error
        elif fault == "duplicate" and isinstance(request, _RETRY_SAFE):
            self._inner.call(src, dst, request)
            return self._inner.call(src, dst, request)
        return self._inner.call(src, dst, request)

    def has_endpoint(self, name: str) -> bool:
        return self._inner.has_endpoint(name)

    def endpoints(self) -> list[str]:
        return self._inner.endpoints()

    def close(self) -> None:
        # The wrapped transport usually belongs to a deployment that
        # closes it itself; closing here too is harmless (idempotent).
        self._inner.close()
