"""Collusion with fewer than k servers learns nothing (§5, §7.1).

"If the colluders take over fewer than k servers, they will not be able to
violate r-confidentiality for documents committed before the attack."

Shamir's scheme gives this information-theoretically, and this module
demonstrates it three ways, all executable:

- :func:`attempt_reconstruction` — the direct attempt simply fails
  (fewer than k distinct shares cannot determine the polynomial);
- :func:`consistent_with_every_secret` — constructively exhibits, for any
  candidate secret, a polynomial consistent with the observed k-1 shares:
  the shares rule *nothing* out, which is the definition of zero leakage;
- :func:`share_uniformity_pvalue` — a chi-squared test that observed share
  values are indistinguishable from uniform field elements (what a
  statistical adversary staring at one server's y-values actually faces).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import SecretSharingError
from repro.secretsharing.field import PrimeField
from repro.secretsharing.shamir import Share, reconstruct_secret


def attempt_reconstruction(
    shares: Sequence[Share], k: int, field: PrimeField
) -> int:
    """Try to reconstruct with whatever shares the colluders pooled.

    Succeeds iff they hold >= k distinct shares; otherwise raises
    :class:`InsufficientSharesError` — there is no partial answer to give.
    """
    return reconstruct_secret(shares, k, field)


def consistent_with_every_secret(
    shares: Sequence[Share],
    k: int,
    field: PrimeField,
    candidate_secrets: Iterable[int],
) -> bool:
    """Perfect-secrecy witness: every candidate secret fits the shares.

    Given at most ``k - 1`` shares, for *any* hypothesized secret ``s``
    there exists a degree-(k-1) polynomial with constant term ``s``
    passing through all observed shares: interpolate through the points
    ``{(0, s)} ∪ shares``. If that interpolation exists for every
    candidate (it always does, with distinct x-coordinates), the observed
    shares carry zero information about the secret.

    Returns:
        True iff every candidate is consistent.

    Raises:
        SecretSharingError: if called with >= k shares (where secrecy
            genuinely does not hold and the premise is wrong).
    """
    distinct = {field.normalize(s.x) for s in shares}
    if len(distinct) >= k:
        raise SecretSharingError(
            "with k or more shares the secret IS determined; "
            "this check only makes sense below the threshold"
        )
    if 0 in distinct:
        raise SecretSharingError("x = 0 would itself be the secret")
    for candidate in candidate_secrets:
        points = [(0, field.normalize(candidate))] + [
            (s.x, s.y) for s in shares
        ]
        # Interpolation through <= k points always yields a polynomial of
        # degree <= k-1; it exists iff x-coordinates are distinct. Evaluate
        # it back at x=0 to confirm consistency (it returns the candidate
        # by construction — the point is that nothing fails).
        recovered = field.lagrange_at_zero(points)
        if recovered != field.normalize(candidate):
            return False
    return True


def share_uniformity_pvalue(
    share_values: Sequence[int],
    field: PrimeField,
    num_buckets: int = 16,
) -> float:
    """Chi-squared p-value that share y-values look uniform over Z_p.

    A compromised server's stored y-values are, for a secure scheme,
    uniform field elements; a p-value well above the usual significance
    thresholds means the adversary's distributional tests come up empty.

    Args:
        share_values: the y-values harvested from the compromised store.
        field: the field they live in.
        num_buckets: histogram resolution for the test.

    Returns:
        The chi-squared goodness-of-fit p-value.
    """
    from scipy import stats as scipy_stats

    if len(share_values) < num_buckets * 5:
        raise SecretSharingError(
            "too few shares for a meaningful uniformity test"
        )
    bucket_width = field.p // num_buckets + 1
    observed = [0] * num_buckets
    for y in share_values:
        observed[min(y // bucket_width, num_buckets - 1)] += 1
    expected = len(share_values) / num_buckets
    chi2 = sum((o - expected) ** 2 / expected for o in observed)
    return float(1.0 - scipy_stats.chi2.cdf(chi2, df=num_buckets - 1))
