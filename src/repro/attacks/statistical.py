"""The statistical attack on a compromised index server (paper §4, §5.2, §7.1).

The adversary owns one server. She can read, for every merged posting list,
its combined length, and she knows the public mapping table and general
language statistics. Two questions follow:

1. *Document-frequency estimation.* In an unmerged index the list length
   **is** the term's document frequency ("the length of a term's posting
   list is its (global) document frequency"). With merging she only sees
   the combined length; her best per-term estimate follows formula (3).
2. *Element-identity guessing.* For each (encrypted) element of a merged
   list she can form the posterior that it belongs to term t — formula (3)
   again — and her amplification over the prior is ``1 / sum_{i in S} p_i``
   which Zerber's merge bounds by r (formula (5)).

:class:`StatisticalAttack` implements the adversary's best play, and
:meth:`StatisticalAttack.empirical_guess_accuracy` measures how often her
maximum-posterior guess is actually right against ground truth — the
end-to-end demonstration that merging caps what statistics can extract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.attacks.adversary import BackgroundKnowledge
from repro.errors import ConfidentialityError
from repro.server.index_server import CompromisedView


@dataclass(frozen=True)
class AttackReport:
    """Outcome of a statistical attack over one compromised server.

    Attributes:
        max_amplification: largest posterior/prior ratio over all (list,
            term) pairs — must be <= the merge's configured r.
        mean_amplification: probability-weighted average amplification.
        per_list_amplification: pl_id -> the shared amplification factor of
            that list's members (``1 / sum p_i``).
        df_estimate_error: mean relative error of the adversary's per-term
            document-frequency estimates (0 would be a perfect leak; the
            unmerged index scores 0 by construction).
    """

    max_amplification: float
    mean_amplification: float
    per_list_amplification: dict[int, float]
    df_estimate_error: float


class StatisticalAttack:
    """Alice's optimal statistical play on one compromised server."""

    def __init__(
        self,
        view: CompromisedView,
        list_members: Mapping[int, Sequence[str]],
        background: BackgroundKnowledge,
    ) -> None:
        """Args:
        view: the compromised server's full state.
        list_members: pl_id -> terms merged into that list. Public: Alice
            reads it straight out of the mapping table (plus the public
            hash function for rare terms).
        background: her language statistics B.
        """
        self._view = view
        self._members = {
            pl: list(terms) for pl, terms in list_members.items()
        }
        self._background = background

    # -- posteriors ------------------------------------------------------------

    def element_posterior(self, pl_id: int) -> dict[str, float]:
        """Formula (3): P(element is term t | it sits in list pl_id)."""
        members = self._members.get(pl_id)
        if not members:
            raise ConfidentialityError(f"no member terms known for list {pl_id}")
        priors = self._background.priors(members)
        total = sum(priors.values())
        return {t: p / total for t, p in priors.items()}

    def amplification_of(self, pl_id: int) -> float:
        """The shared posterior/prior ratio of every member of one list."""
        members = self._members.get(pl_id)
        if not members:
            raise ConfidentialityError(f"no member terms known for list {pl_id}")
        return 1.0 / sum(self._background.priors(members).values())

    # -- document-frequency estimation ---------------------------------------------

    def estimate_document_frequencies(self) -> dict[str, float]:
        """Best per-term DF estimates from combined list lengths.

        Expected DF of term t = (combined length) * posterior(t).
        """
        estimates: dict[str, float] = {}
        lengths = self._view.merged_list_lengths()
        for pl_id, members in self._members.items():
            length = lengths.get(pl_id, 0)
            posterior = self.element_posterior(pl_id)
            for term in members:
                estimates[term] = length * posterior[term]
        return estimates

    def df_estimation_error(
        self, true_dfs: Mapping[str, int]
    ) -> float:
        """Mean relative error of the DF estimates vs ground truth."""
        estimates = self.estimate_document_frequencies()
        errors = []
        for term, true_df in true_dfs.items():
            if true_df <= 0 or term not in estimates:
                continue
            errors.append(abs(estimates[term] - true_df) / true_df)
        if not errors:
            raise ConfidentialityError("no overlapping terms to score")
        return sum(errors) / len(errors)

    # -- element-identity guessing -----------------------------------------------------

    def guess_element_terms(self) -> dict[int, str]:
        """Her maximum-posterior guess for every stored element.

        Returns:
            element_id -> guessed term (over all lists on the box).
        """
        guesses: dict[int, str] = {}
        for pl_id, records in self._view.posting_store.items():
            if pl_id not in self._members:
                continue
            posterior = self.element_posterior(pl_id)
            best_term = max(posterior.items(), key=lambda kv: (kv[1], kv[0]))[0]
            for record in records:
                guesses[record.element_id] = best_term
        return guesses

    def empirical_guess_accuracy(
        self, true_terms: Mapping[int, str]
    ) -> tuple[float, float]:
        """(attack accuracy, best blind accuracy from priors alone).

        Args:
            true_terms: element_id -> actual term (ground truth the test
                harness knows, the adversary does not).

        Returns:
            The fraction of elements she names correctly using the index,
            and the accuracy of the prior-only strategy (always guess the
            globally most probable term). Their ratio is the *empirical*
            amplification, to be compared with the analytical bound r.
        """
        if not true_terms:
            raise ConfidentialityError("no ground truth supplied")
        guesses = self.guess_element_terms()
        scored = [
            (guesses.get(eid), actual) for eid, actual in true_terms.items()
        ]
        hits = sum(1 for guess, actual in scored if guess == actual)
        attack_accuracy = hits / len(scored)
        # Blind strategy: guess the highest-prior term for every element.
        blind_term = max(
            self._background.terms(), key=lambda t: self._background.prior(t)
        )
        blind_hits = sum(1 for _, actual in scored if actual == blind_term)
        blind_accuracy = blind_hits / len(scored)
        return attack_accuracy, blind_accuracy

    # -- the full report -------------------------------------------------------------------

    def report(self, true_dfs: Mapping[str, int] | None = None) -> AttackReport:
        """Run the whole statistical playbook."""
        per_list = {
            pl_id: self.amplification_of(pl_id) for pl_id in self._members
        }
        if not per_list:
            raise ConfidentialityError("nothing to attack")
        weights = {
            pl_id: sum(
                self._background.priors(self._members[pl_id]).values()
            )
            for pl_id in per_list
        }
        total_weight = sum(weights.values())
        mean_amp = (
            sum(per_list[pl] * weights[pl] for pl in per_list) / total_weight
        )
        df_error = (
            self.df_estimation_error(true_dfs) if true_dfs is not None else 0.0
        )
        return AttackReport(
            max_amplification=max(per_list.values()),
            mean_amplification=mean_amp,
            per_list_amplification=per_list,
            df_estimate_error=df_error,
        )
