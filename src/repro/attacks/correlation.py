"""The update-stream correlation attack and its batching defence (§5.4.1, §7.1).

"By monitoring the sequence of updates, Alice can guess that a set of new
posting elements refers to the same document. This lets Alice make
correlation attacks. ... Thus Alice may be able to violate r-confidentiality
for newly created documents ... However, Alice cannot violate
r-confidentiality for documents committed before she compromised the
server, as she cannot tell which pre-existing posting elements refer to the
same document."

The adversary's observable is the compromised server's update log: a
sequence of batches, each a set of (pl_id, element_id) pairs. Her best
play is to assume all elements of one batch co-occur in one document. With
unbatched owners (one document per batch) that guess is perfect; with a
B-document batch its precision collapses roughly as the share of same-
document pairs among all in-batch pairs. :class:`CorrelationAttack` scores
exactly that precision against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Mapping

from repro.errors import ConfidentialityError
from repro.server.index_server import CompromisedView


@dataclass(frozen=True)
class CorrelationReport:
    """Outcome of the correlation attack.

    Attributes:
        guessed_pairs: element pairs the adversary claims co-occur.
        correct_pairs: how many of those really share a document.
        precision: correct / guessed (1.0 = total leak, → 0 with batching).
        recall: fraction of true same-document pairs she recovered.
    """

    guessed_pairs: int
    correct_pairs: int
    precision: float
    recall: float


class CorrelationAttack:
    """Alice watches the update stream of a compromised server."""

    def __init__(self, view: CompromisedView) -> None:
        self._batches = view.update_log

    @property
    def batches_observed(self) -> int:
        return len(self._batches)

    def guessed_cooccurrence_pairs(self) -> set[tuple[int, int]]:
        """All unordered element-ID pairs she believes share a document.

        The §5.4.1 example is the degenerate case: a one-document batch
        touching lists {Martha, P} and {Ralph, Q} proves those elements
        co-occur; a multi-document batch merely makes every in-batch pair
        a (diluted) candidate.
        """
        pairs: set[tuple[int, int]] = set()
        for batch in self._batches:
            element_ids = sorted(eid for _, eid in batch)
            pairs.update(combinations(element_ids, 2))
        return pairs

    def score(
        self, element_document: Mapping[int, int]
    ) -> CorrelationReport:
        """Precision/recall of her co-occurrence guesses vs ground truth.

        Args:
            element_document: element_id -> true doc_id (what the test
                harness knows from the owners' shadow maps).
        """
        if not element_document:
            raise ConfidentialityError("no ground truth supplied")
        guessed = self.guessed_cooccurrence_pairs()
        correct = sum(
            1
            for a, b in guessed
            if a in element_document
            and b in element_document
            and element_document[a] == element_document[b]
        )
        # True pairs restricted to elements that appeared in the log at
        # all (pre-compromise documents are invisible to this attack,
        # which is exactly the §7.1 claim).
        logged_elements = {
            eid for batch in self._batches for _, eid in batch
        }
        by_doc: dict[int, int] = {}
        for eid in logged_elements:
            doc = element_document.get(eid)
            if doc is not None:
                by_doc[doc] = by_doc.get(doc, 0) + 1
        true_pairs = sum(c * (c - 1) // 2 for c in by_doc.values())
        precision = correct / len(guessed) if guessed else 0.0
        recall = correct / true_pairs if true_pairs else 0.0
        return CorrelationReport(
            guessed_pairs=len(guessed),
            correct_pairs=correct,
            precision=precision,
            recall=recall,
        )
