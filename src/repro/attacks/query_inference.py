"""Query-inference attack on a compromised server (paper §7.1, §8).

"Alice can see which posting lists each user queries at her compromised
server" (§7.1) and — the future-work remark of §8 — "how to support query
confidentiality, even when one server has been compromised and the
adversary can view the incoming stream of requests for posting lists.
BFM leaks probabilistic information in this situation, while the other
merging heuristics are more robust."

The adversary's play: given a request for posting list L, her posterior
that the hidden query term is t ∈ L is ``qf_t / sum_{u in L} qf_u``
(query-frequency background knowledge). Two quantities measure the leak:

- :func:`expected_posterior_concentration` — the workload-weighted
  expected max-posterior. 1.0 means every request identifies its term
  (singleton lists are total leaks); 1/|L| means nothing learned.
- :func:`QueryInferenceAttack.empirical_accuracy` — how often the argmax
  guess is right against a materialized query stream.
- :func:`band_information_bits` — the mutual information between the
  observed list ID and the queried term's *frequency band*.

The two metrics pull apart exactly the way §8's remark needs: BFM's
lists are frequency-contiguous bands, so members have near-identical
query frequencies and the argmax identity guess is *weak* — but the list
ID reveals the query's frequency band almost perfectly (high mutual
information), which is the "probabilistic information" BFM leaks: a
request to the tail list says "someone queried a rare term" (the
Hesselhofers of §4). UDM/DFM's round-robin dealing mixes every band into
every list, destroying the band signal.
"""

from __future__ import annotations

import random
from typing import Mapping, Sequence

from repro.core.merging.base import MergeResult
from repro.errors import ConfidentialityError


def list_posterior(
    members: Sequence[str], query_frequencies: Mapping[str, int]
) -> dict[str, float]:
    """P(queried term = t | request for this list), from qf background.

    Terms never queried get the background floor of one count so the
    posterior is defined for every member.
    """
    if not members:
        raise ConfidentialityError("empty posting list")
    weights = {t: max(1, query_frequencies.get(t, 0)) for t in members}
    total = sum(weights.values())
    return {t: w / total for t, w in weights.items()}


def expected_posterior_concentration(
    merge: MergeResult, query_frequencies: Mapping[str, int]
) -> float:
    """Expected accuracy of the argmax identity guess over the stream.

    For each merged list L, the chance it is requested is proportional to
    its members' total query frequency, and the adversary's guess is the
    maximum-posterior member (ties broken exactly as
    :meth:`QueryInferenceAttack.guess` does); her per-request success
    probability is the guessed term's share of the list's true query
    mass. The result equals :meth:`QueryInferenceAttack.empirical_accuracy`
    in expectation.
    """
    numerator = 0.0
    denominator = 0.0
    for members in merge.lists:
        qf_sum = sum(query_frequencies.get(t, 0) for t in members)
        if qf_sum == 0:
            continue  # never requested: contributes nothing to the stream
        posterior = list_posterior(members, query_frequencies)
        best = max(posterior.items(), key=lambda kv: (kv[1], kv[0]))[0]
        numerator += query_frequencies.get(best, 0)
        denominator += qf_sum
    if denominator == 0:
        raise ConfidentialityError("workload never touches the index")
    return numerator / denominator


def band_information_bits(
    merge: MergeResult,
    query_frequencies: Mapping[str, int],
    num_bands: int = 8,
) -> float:
    """Mutual information (bits) between requested list and query band.

    Terms are banded by query-frequency rank (band 0 = the hottest
    ``1/num_bands`` of queried terms, the last band = the rarest). The
    joint distribution over (list, band) is induced by the query stream
    (P ∝ qf). High MI means watching list requests reveals how rare the
    hidden query terms are.
    """
    import math

    if num_bands < 2:
        raise ConfidentialityError("need at least 2 bands")
    assignments = merge.assignments()
    queried = [
        t for t, qf in query_frequencies.items()
        if qf > 0 and t in assignments
    ]
    if not queried:
        raise ConfidentialityError("workload never touches the index")
    ranked = sorted(queried, key=lambda t: (-query_frequencies[t], t))
    band_of = {
        t: min(num_bands - 1, (rank * num_bands) // len(ranked))
        for rank, t in enumerate(ranked)
    }
    total_qf = sum(query_frequencies[t] for t in queried)
    joint: dict[tuple[int, int], float] = {}
    p_list: dict[int, float] = {}
    p_band: dict[int, float] = {}
    for t in queried:
        p = query_frequencies[t] / total_qf
        key = (assignments[t], band_of[t])
        joint[key] = joint.get(key, 0.0) + p
        p_list[key[0]] = p_list.get(key[0], 0.0) + p
        p_band[key[1]] = p_band.get(key[1], 0.0) + p
    mi = 0.0
    for (list_id, band), p in joint.items():
        mi += p * math.log2(p / (p_list[list_id] * p_band[band]))
    return mi


class QueryInferenceAttack:
    """Alice watching the posting-list request stream."""

    def __init__(
        self,
        merge: MergeResult,
        query_frequencies: Mapping[str, int],
    ) -> None:
        """Args:
        merge: the public merge (Alice reads the mapping table).
        query_frequencies: her query-statistics background knowledge.
        """
        self._merge = merge
        self._qfs = dict(query_frequencies)
        self._assignments = merge.assignments()

    def guess(self, pl_id: int) -> str:
        """Her maximum-posterior guess for one observed request."""
        members = self._merge.lists[pl_id]
        posterior = list_posterior(members, self._qfs)
        return max(posterior.items(), key=lambda kv: (kv[1], kv[0]))[0]

    def empirical_accuracy(
        self, num_queries: int = 2_000, rng: random.Random | None = None
    ) -> float:
        """Simulate a query stream and score her argmax guesses.

        Queries are drawn from the same qf distribution she knows —
        the paper's worst case, where her background is accurate.
        """
        rng = rng or random.Random(0xA77)
        queried_terms = [
            t for t in self._qfs if self._qfs[t] > 0 and t in self._assignments
        ]
        if not queried_terms:
            raise ConfidentialityError("no queried terms intersect the merge")
        weights = [self._qfs[t] for t in queried_terms]
        hits = 0
        for _ in range(num_queries):
            actual = rng.choices(queried_terms, weights=weights, k=1)[0]
            observed_list = self._assignments[actual]
            if self.guess(observed_list) == actual:
                hits += 1
        return hits / num_queries
