"""The adversary's background knowledge B (paper §4).

"An attacker Alice will already have some background knowledge about the
possible contents of a document collection. ... From her background
knowledge B and the parts of the index structure I that she can access,
Alice will know a priori that a term t is contained in document d with a
probability P(t is in d)."

We model B as general language statistics: a term -> occurrence-probability
map (formula (2) over some reference corpus the adversary has seen — not
necessarily the indexed one). The r-confidentiality guarantee is relative
to exactly this object.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import ConfidentialityError


class BackgroundKnowledge:
    """Language statistics available to the adversary a priori."""

    def __init__(self, term_probabilities: Mapping[str, float]) -> None:
        """Args:
        term_probabilities: formula-(2)-style occurrence probabilities
            of every term the adversary knows about.
        """
        if not term_probabilities:
            raise ConfidentialityError("background knowledge cannot be empty")
        bad = [t for t, p in term_probabilities.items() if p <= 0 or p > 1]
        if bad:
            raise ConfidentialityError(
                f"background probabilities outside (0, 1]: {bad[:3]}"
            )
        self._probabilities = dict(term_probabilities)

    @classmethod
    def from_document_frequencies(
        cls, document_frequencies: Mapping[str, int]
    ) -> "BackgroundKnowledge":
        """Build B from a reference corpus's document frequencies."""
        total = sum(document_frequencies.values())
        if total <= 0:
            raise ConfidentialityError("reference corpus is empty")
        return cls(
            {t: df / total for t, df in document_frequencies.items() if df > 0}
        )

    def prior(self, term: str) -> float:
        """P(t in d | B); unknown terms get the smallest known prior."""
        known = self._probabilities.get(term)
        if known is not None:
            return known
        return min(self._probabilities.values())

    def knows(self, term: str) -> bool:
        return term in self._probabilities

    def terms(self) -> list[str]:
        return sorted(self._probabilities)

    def priors(self, terms: Iterable[str]) -> dict[str, float]:
        return {t: self.prior(t) for t in terms}
