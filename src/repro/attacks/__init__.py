"""Adversary simulations for the §4 threat model and §7.1 security analysis.

The paper's evaluation of Zerber's security is analytical; this package
makes it *executable*. Each attack consumes only what a real adversary in
the threat model could hold: the public mapping table, general language
statistics (background knowledge B), and — after :meth:`IndexServer.compromise`
— everything on up to ``k - 1`` boxes.

- :mod:`repro.attacks.adversary` — the background-knowledge model B;
- :mod:`repro.attacks.statistical` — the document/term-frequency attack of
  §4: read merged list lengths off a compromised server, form formula-(3)
  posteriors, and check amplification never exceeds the configured r;
- :mod:`repro.attacks.correlation` — the §7.1 update-watching attack: guess
  which inserted elements belong to one document, against batched and
  unbatched owners;
- :mod:`repro.attacks.collusion` — the < k collusion futility results:
  reconstruction is impossible, share marginals are uniform, and any
  candidate secret is equally consistent with the observed shares
  (information-theoretic secrecy, demonstrated constructively).
"""

from repro.attacks.adversary import BackgroundKnowledge
from repro.attacks.statistical import StatisticalAttack, AttackReport
from repro.attacks.correlation import CorrelationAttack, CorrelationReport
from repro.attacks.collusion import (
    attempt_reconstruction,
    consistent_with_every_secret,
    share_uniformity_pvalue,
)
from repro.attacks.query_inference import (
    QueryInferenceAttack,
    band_information_bits,
    expected_posterior_concentration,
)

__all__ = [
    "BackgroundKnowledge",
    "StatisticalAttack",
    "AttackReport",
    "CorrelationAttack",
    "CorrelationReport",
    "attempt_reconstruction",
    "consistent_with_every_secret",
    "share_uniformity_pvalue",
    "QueryInferenceAttack",
    "band_information_bits",
    "expected_posterior_concentration",
]
