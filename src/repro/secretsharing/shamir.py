"""Shamir k-out-of-n secret sharing (paper §5.1, Algorithms 1a/1b).

Zerber encrypts every posting element with Shamir's scheme instead of keyed
encryption: the document owner builds a random polynomial ``f`` of degree
``k - 1`` whose constant term is the secret, and hands server ``i`` the point
``f(x_i)`` where ``x_i`` is that server's public x-coordinate. Any ``k``
shares reconstruct the secret; ``k - 1`` shares are information-theoretically
useless. This module implements:

- :func:`split_secret` — Algorithm 1a (compute k-out-of-n shares);
- :func:`reconstruct_secret` — Algorithm 1b, with two interchangeable
  back-ends: Gaussian elimination over the Vandermonde system (exactly as the
  paper describes, O(k^3)) and Lagrange interpolation at zero (O(k^2), the
  back-end used by default);
- :class:`ShamirScheme` — a configured (k, n, field, x-coordinates) bundle
  that owners and servers share, supporting dynamic extension of ``n``
  ("Shamir's secret sharing scheme allows dynamic extension of the number n
  of servers without recalculating the existing secret shares").
"""

from __future__ import annotations

import random
import secrets
from dataclasses import dataclass
from typing import Hashable, Iterable, Literal, Mapping, Sequence

from repro.errors import InsufficientSharesError, SecretSharingError
from repro.secretsharing.field import DEFAULT_PRIME, PrimeField

ReconstructMethod = Literal["lagrange", "gaussian"]


class _SystemRandomAdapter(random.Random):
    """A ``random.Random`` backed by the OS CSPRNG.

    Shamir coefficient randomness is security-critical (a predictable
    coefficient leaks the secret), so when callers do not inject an rng we
    use this adapter rather than the default Mersenne Twister. Tests inject
    seeded ``random.Random`` instances for determinism.
    """

    def random(self) -> float:  # pragma: no cover - delegated
        return secrets.SystemRandom().random()

    def getrandbits(self, k: int) -> int:
        return secrets.randbits(k)

    def randrange(self, start, stop=None, step=1) -> int:  # type: ignore[override]
        if stop is None:
            start, stop = 0, start
        width = stop - start
        if width <= 0:
            raise ValueError("empty range for randrange")
        return start + secrets.randbelow(width)

    def seed(self, *args, **kwargs) -> None:  # pragma: no cover - stateless
        return None


_DEFAULT_RNG = _SystemRandomAdapter()


@dataclass(frozen=True, slots=True)
class Share:
    """One server's share of one secret: the point ``(x, y)`` on ``f``.

    Attributes:
        x: the server's public x-coordinate in Z_p.
        y: ``f(x)`` — the confidential share value held by that server.
    """

    x: int
    y: int


def split_secret(
    secret: int,
    k: int,
    x_coordinates: Sequence[int],
    field: PrimeField | None = None,
    rng: random.Random | None = None,
) -> list[Share]:
    """Algorithm 1a: split ``secret`` into ``len(x_coordinates)`` shares.

    Builds ``f(x) = a_{k-1} x^{k-1} + ... + a_1 x + secret mod p`` with
    uniformly random coefficients and returns ``f(x_i)`` for each server
    x-coordinate.

    Args:
        secret: the value to protect; must lie in ``[0, p)``.
        k: reconstruction threshold (polynomial degree is ``k - 1``).
        x_coordinates: the public, distinct, non-zero x-coordinate of every
            share recipient (one per index server).
        field: the Z_p field; defaults to the library-wide 64-bit+ prime.
        rng: coefficient randomness; defaults to a CSPRNG.

    Returns:
        One :class:`Share` per x-coordinate, in the same order.

    Raises:
        SecretSharingError: on out-of-range secret, bad threshold, or
            duplicate / zero x-coordinates.
    """
    field = field or PrimeField(DEFAULT_PRIME)
    rng = rng or _DEFAULT_RNG
    n = len(x_coordinates)
    if k < 1:
        raise SecretSharingError(f"threshold k={k} must be >= 1")
    if n < k:
        raise SecretSharingError(f"need at least k={k} recipients, got {n}")
    if not 0 <= secret < field.p:
        raise SecretSharingError(
            f"secret {secret} outside field range [0, {field.p})"
        )
    normalized = [field.normalize(x) for x in x_coordinates]
    if len(set(normalized)) != n:
        raise SecretSharingError("x-coordinates must be distinct")
    if any(x == 0 for x in normalized):
        raise SecretSharingError("x-coordinate 0 would expose the secret")
    coefficients = [secret] + [field.random_element(rng) for _ in range(k - 1)]
    return [Share(x=x, y=field.poly_eval(coefficients, x)) for x in normalized]


def _reconstruct_gaussian(
    shares: Sequence[Share], k: int, field: PrimeField
) -> int:
    """Solve the k x k Vandermonde system ``y_i = sum a_j x_i^j`` for a_0.

    This is the verbatim Algorithm 1b: "Recover a0 by solving the following
    system of k linear equations ... with Gaussian elimination methods".
    """
    subset = shares[:k]
    matrix = [
        [field.pow(s.x, j) for j in range(k)]
        for s in subset
    ]
    rhs = [s.y for s in subset]
    solution = field.solve_linear_system(matrix, rhs)
    return solution[0]


def _choose_k_shares(
    shares: Iterable[Share], k: int, field: PrimeField
) -> list[Share]:
    """The canonical k-share subset every reconstruction back-end uses.

    First occurrence wins per distinct (normalized) x-coordinate, then
    the first ``k`` in arrival order — shared by the naive, Gaussian,
    weight-cached, and batch paths so that, when shares disagree (a
    lying server), every back-end reconstructs from the *same* subset
    and stays byte-identical.
    """
    unique: dict[int, Share] = {}
    for share in shares:
        unique.setdefault(field.normalize(share.x), share)
    if len(unique) < k:
        raise InsufficientSharesError(
            f"need {k} distinct shares, got {len(unique)}"
        )
    return list(unique.values())[:k]


def reconstruct_secret(
    shares: Iterable[Share],
    k: int,
    field: PrimeField | None = None,
    method: ReconstructMethod = "lagrange",
) -> int:
    """Algorithm 1b: recover the secret from any ``k`` of the ``n`` shares.

    Args:
        shares: at least ``k`` shares with distinct x-coordinates. Extra
            shares beyond the first ``k`` are ignored (any k suffice).
        k: the reconstruction threshold used at split time.
        field: the Z_p field; must match the split-time field.
        method: ``"lagrange"`` (default, O(k^2)) or ``"gaussian"`` (the
            paper's O(k^3) linear-system formulation). Both return identical
            results; the benchmark harness compares their speed.

    Returns:
        The original secret (the polynomial's constant term).

    Raises:
        InsufficientSharesError: fewer than ``k`` distinct shares supplied.
        SecretSharingError: duplicate x-coordinates among the chosen shares.
    """
    field = field or PrimeField(DEFAULT_PRIME)
    chosen = _choose_k_shares(shares, k, field)
    if method == "gaussian":
        return _reconstruct_gaussian(chosen, k, field)
    if method == "lagrange":
        return field.lagrange_at_zero([(s.x, s.y) for s in chosen])
    raise SecretSharingError(f"unknown reconstruction method {method!r}")


class ShamirScheme:
    """A configured k-out-of-n deployment shared by owners and servers.

    The scheme owns the public parameters the paper says "are made public, so
    all users know them": the prime ``p`` and each server's x-coordinate
    ``x_i``. Document owners call :meth:`split`; querying clients call
    :meth:`reconstruct`; operators call :meth:`extend` to add servers without
    touching existing shares.
    """

    def __init__(
        self,
        k: int,
        n: int,
        field: PrimeField | None = None,
        rng: random.Random | None = None,
        x_coordinates: Sequence[int] | None = None,
    ) -> None:
        """Create a scheme with ``n`` servers and threshold ``k``.

        Args:
            k: reconstruction threshold (1 <= k <= n).
            n: number of index servers.
            field: field to operate in; defaults to the 64-bit+ prime.
            rng: randomness for x-coordinate assignment and, if no per-call
                rng is given, share generation.
            x_coordinates: explicit server x-coordinates (distinct, non-zero).
                When omitted, unique random coordinates are drawn.
        """
        if k < 1 or n < k:
            raise SecretSharingError(f"require 1 <= k <= n, got k={k} n={n}")
        self.field = field or PrimeField(DEFAULT_PRIME)
        self.k = k
        self._rng = rng or _DEFAULT_RNG
        if x_coordinates is not None:
            coords = [self.field.normalize(x) for x in x_coordinates]
            if len(coords) != n:
                raise SecretSharingError(
                    f"expected {n} x-coordinates, got {len(coords)}"
                )
            if len(set(coords)) != n or any(x == 0 for x in coords):
                raise SecretSharingError(
                    "x-coordinates must be distinct and non-zero"
                )
            self._x_coordinates = coords
        else:
            self._x_coordinates = self._draw_coordinates(n)
        #: Lagrange-at-zero basis weights, memoized per frozen x-tuple.
        #: The weights depend only on which server slots answered, so a
        #: query reconstructing thousands of posting elements from the
        #: same k slots pays the basis (and its modular inversions)
        #: exactly once; afterwards each element is a k-term dot product
        #: mod p. Values are idempotent, so concurrent readers may
        #: recompute the same entry harmlessly (no lock needed).
        self._weight_memo: dict[tuple[int, ...], tuple[int, ...]] = {}

    def _draw_coordinates(self, count: int) -> list[int]:
        coords: set[int] = set()
        while len(coords) < count:
            coords.add(self.field.random_nonzero(self._rng))
        return sorted(coords)

    # -- public parameters -------------------------------------------------

    @property
    def n(self) -> int:
        """Current number of servers."""
        return len(self._x_coordinates)

    @property
    def x_coordinates(self) -> tuple[int, ...]:
        """The public x-coordinate of each server, index-aligned."""
        return tuple(self._x_coordinates)

    def x_of(self, server_index: int) -> int:
        """x-coordinate of server ``server_index`` (0-based)."""
        return self._x_coordinates[server_index]

    # -- operations ----------------------------------------------------------

    def split(self, secret: int, rng: random.Random | None = None) -> list[Share]:
        """Split ``secret`` into one share per configured server."""
        return split_secret(
            secret, self.k, self._x_coordinates, self.field, rng or self._rng
        )

    def split_many(
        self, secrets_: Sequence[int], rng: random.Random | None = None
    ) -> list[list[Share]]:
        """Vectorized :meth:`split`; returns ``[shares_of(s) for s in secrets_]``.

        Splitting a whole document's elements in one call mirrors the paper's
        indexing flow ("The owner repeats this process to split all the
        elements for the document across the n servers", complexity O(nN)).
        """
        return [self.split(s, rng) for s in secrets_]

    def reconstruct(
        self,
        shares: Iterable[Share],
        method: ReconstructMethod | Literal["cached"] = "lagrange",
    ) -> int:
        """Recover a secret from any ``k`` of its shares.

        ``method="cached"`` routes through the memoized Lagrange-weight
        fast path (:meth:`reconstruct_cached`); ``"lagrange"`` and
        ``"gaussian"`` are the naive back-ends, kept bit-for-bit as the
        reference the hot path is benchmarked (and property-tested)
        against.
        """
        if method == "cached":
            return self.reconstruct_cached(shares)
        return reconstruct_secret(shares, self.k, self.field, method)

    def lagrange_weights(self, xs: tuple[int, ...]) -> tuple[int, ...]:
        """Memoized Lagrange-at-zero basis weights for one x-tuple.

        ``xs`` must already be normalized into [0, p) — the memo is
        keyed on the tuple verbatim.
        """
        weights = self._weight_memo.get(xs)
        if weights is None:
            weights = self.field.lagrange_weights_at_zero(xs)
            self._weight_memo[xs] = weights
        return weights

    def reconstruct_cached(self, shares: Iterable[Share]) -> int:
        """Weight-cached reconstruction: a k-term dot product mod p.

        Chooses the same k-share subset as :meth:`reconstruct` (first
        occurrence per x, first k in arrival order), so results are
        byte-identical to the naive Lagrange path — including which
        (possibly corrupted) shares a > k fetch reconstructs from.
        """
        chosen = _choose_k_shares(shares, self.k, self.field)
        field = self.field
        weights = self.lagrange_weights(
            tuple(field.normalize(s.x) for s in chosen)
        )
        return (
            sum(w * s.y for w, s in zip(weights, chosen)) % field.p
        )

    def reconstruct_batch(
        self, shares_by_element: Mapping[Hashable, Sequence[Share]]
    ) -> dict[Hashable, int]:
        """Reconstruct many secrets, sharing Lagrange weights per x-tuple.

        The query hot path joins share streams into element -> shares
        columns where nearly every element carries the same x-tuple (the
        k server slots that answered). Elements sharing a tuple share
        one weight vector — the scheme-level memo computes each tuple's
        basis (and its modular inversions) once, for the whole batch
        and for every later query — so the per-element cost collapses
        to a k-term dot product mod p.

        Args:
            shares_by_element: element key -> its fetched shares (each
                element needs >= k distinct x-coordinates).

        Returns:
            element key -> reconstructed secret, same iteration order.

        Raises:
            InsufficientSharesError: some element has < k distinct
                shares (checked in input order, like the naive loop).
        """
        field = self.field
        p = field.p
        k = self.k
        out: dict[Hashable, int] = {}
        for key, shares in shares_by_element.items():
            chosen = _choose_k_shares(shares, k, field)
            weights = self.lagrange_weights(
                tuple(field.normalize(s.x) for s in chosen)
            )
            out[key] = sum(w * s.y for w, s in zip(weights, chosen)) % p
        return out

    def extend(self, additional_servers: int) -> list[int]:
        """Dynamically add servers by "just selecting additional points on the
        polynomial curve" — i.e. minting fresh x-coordinates.

        Existing shares are untouched; the caller is responsible for
        re-running :meth:`split` (or a resharing protocol) to populate the
        new servers with shares of pre-existing secrets, or for only using
        the new coordinates for documents indexed from now on.

        Returns:
            The newly assigned x-coordinates, in server order.
        """
        if additional_servers < 1:
            raise SecretSharingError("must add at least one server")
        existing = set(self._x_coordinates)
        new_coords: list[int] = []
        while len(new_coords) < additional_servers:
            candidate = self.field.random_nonzero(self._rng)
            if candidate not in existing:
                existing.add(candidate)
                new_coords.append(candidate)
        self._x_coordinates.extend(new_coords)
        return new_coords

    def share_for_new_server(
        self, secret: int, existing_shares: Sequence[Share], new_x: int
    ) -> Share:
        """Compute the share a newly added server would hold for an existing
        secret, given ``k`` existing shares (owner-side resharing helper).

        Reconstructs the full polynomial through the k points and evaluates
        it at ``new_x``; the secret itself never needs to be re-split.
        """
        if len(existing_shares) < self.k:
            raise InsufficientSharesError(
                f"need {self.k} shares to extend, got {len(existing_shares)}"
            )
        chosen = list(existing_shares)[: self.k]
        matrix = [[self.field.pow(s.x, j) for j in range(self.k)] for s in chosen]
        rhs = [s.y for s in chosen]
        coefficients = self.field.solve_linear_system(matrix, rhs)
        if coefficients[0] != self.field.normalize(secret):
            raise SecretSharingError(
                "existing shares do not reconstruct the claimed secret"
            )
        return Share(x=new_x, y=self.field.poly_eval(coefficients, new_x))
