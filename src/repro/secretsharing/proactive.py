"""Proactive secret sharing (paper §5.1, citing Herzberg et al. [21]).

"Moreover, if an adversary learns some of the shares, proactive sharing
techniques can be used to prevent the adversary from getting k shares. With
this technique, the shares are updated so that those she already knows become
useless."

The refresh protocol: a dealer (or jointly, the servers) generates a random
polynomial ``g`` of degree ``k - 1`` with **zero** constant term, and every
server ``i`` replaces its share ``y_i`` with ``y_i + g(x_i)``. The underlying
secret ``f(0) + g(0) = f(0)`` is unchanged, but old and new share sets do not
mix: any set containing fewer than ``k`` post-refresh shares — together with
any number of pre-refresh shares — still reveals nothing.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import SecretSharingError
from repro.secretsharing.field import PrimeField
from repro.secretsharing.shamir import Share, ShamirScheme, _DEFAULT_RNG


def refresh_shares(
    shares: Sequence[Share],
    k: int,
    field: PrimeField,
    rng: random.Random | None = None,
) -> list[Share]:
    """One proactive refresh round over a full share set.

    Args:
        shares: the current share of every server (all ``n`` of them —
            a refresh must update every live share or the sets diverge).
        k: the scheme threshold; the blinding polynomial has degree ``k - 1``.
        field: the Z_p field the shares live in.
        rng: randomness for the blinding polynomial; CSPRNG by default.

    Returns:
        New shares at the same x-coordinates encoding the same secret.

    Raises:
        SecretSharingError: on an empty share set or duplicate coordinates.
    """
    if not shares:
        raise SecretSharingError("cannot refresh an empty share set")
    xs = [field.normalize(s.x) for s in shares]
    if len(set(xs)) != len(xs):
        raise SecretSharingError("duplicate x-coordinates in refresh")
    rng = rng or _DEFAULT_RNG
    # Blinding polynomial g with g(0) = 0: coefficients [0, r1, ..., r_{k-1}].
    blind = [0] + [field.random_element(rng) for _ in range(k - 1)]
    return [
        Share(x=s.x, y=field.add(s.y, field.poly_eval(blind, s.x)))
        for s in shares
    ]


class ProactiveRefresher:
    """Drives periodic refresh rounds across a server fleet's share tables.

    The refresher tracks an epoch counter so servers (and tests) can assert
    that shares from different epochs are never combined — combining them
    yields field garbage, which is exactly the property that makes leaked
    old shares useless.
    """

    def __init__(self, scheme: ShamirScheme, rng: random.Random | None = None):
        self._scheme = scheme
        self._rng = rng or _DEFAULT_RNG
        self._epoch = 0

    @property
    def epoch(self) -> int:
        """Number of refresh rounds performed so far."""
        return self._epoch

    def refresh(self, shares: Sequence[Share]) -> list[Share]:
        """Refresh one secret's full share set and bump the epoch."""
        refreshed = refresh_shares(
            shares, self._scheme.k, self._scheme.field, self._rng
        )
        self._epoch += 1
        return refreshed

    def refresh_table(
        self, table: dict[int, list[Share]]
    ) -> dict[int, list[Share]]:
        """Refresh every entry of an ``element_id -> shares`` table atomically.

        All entries advance together in a single epoch, modelling the
        fleet-wide refresh round of [21].
        """
        refreshed = {
            element_id: refresh_shares(
                shares, self._scheme.k, self._scheme.field, self._rng
            )
            for element_id, shares in table.items()
        }
        self._epoch += 1
        return refreshed
