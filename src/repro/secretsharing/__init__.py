"""k-out-of-n secret sharing over a prime field (paper §5.1, [29], [21]).

This package is the cryptographic substrate of Zerber. It implements:

- :mod:`repro.secretsharing.field` — arithmetic in Z_p with primality
  checking, the finite field that Algorithm 1a/1b operate in;
- :mod:`repro.secretsharing.shamir` — Shamir's scheme: polynomial share
  generation (Algorithm 1a), reconstruction by Gaussian elimination
  (Algorithm 1b, as written in the paper) and by Lagrange interpolation
  (the standard faster path), and dynamic extension of ``n``;
- :mod:`repro.secretsharing.proactive` — proactive share refresh
  (Herzberg et al.), which re-randomizes shares so that previously leaked
  shares become useless without changing the secret.
"""

from repro.secretsharing.field import PrimeField, is_prime, DEFAULT_PRIME
from repro.secretsharing.shamir import (
    Share,
    ShamirScheme,
    split_secret,
    reconstruct_secret,
)
from repro.secretsharing.proactive import ProactiveRefresher, refresh_shares

__all__ = [
    "PrimeField",
    "is_prime",
    "DEFAULT_PRIME",
    "Share",
    "ShamirScheme",
    "split_secret",
    "reconstruct_secret",
    "ProactiveRefresher",
    "refresh_shares",
]
