"""Prime-field arithmetic for Shamir secret sharing (paper §5.1).

The paper performs "all the operations ... in the finite field Z_p" where the
prime ``p`` is chosen large enough that any posting element (a 64-bit packed
``[doc_ID, term_ID, tf]`` triple, §5.2/§7.3) is a valid secret. We default to
``p = 2**64 + 13``, the smallest prime above 2**64, so every 64-bit wire
element is representable, and expose the field as an explicit object so tests
and benchmarks can use small fields.

Primality is checked with a deterministic Miller–Rabin: for moduli below
3.3 * 10**24 the witness set {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} is
provably sufficient; larger moduli fall back to 64 random-basis rounds, which
is overwhelming for any practical use.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import FieldError

# Smallest prime above 2**64; every 64-bit packed posting element fits.
DEFAULT_PRIME = (1 << 64) + 13

# Deterministic Miller-Rabin witnesses, valid for all n < 3.317e24
# (Sorenson & Webster 2015).
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
_DETERMINISTIC_BOUND = 3_317_044_064_679_887_385_961_981

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
)


def _miller_rabin_round(n: int, d: int, s: int, a: int) -> bool:
    """One Miller-Rabin round: return True if ``a`` witnesses compositeness."""
    x = pow(a, d, n)
    if x in (1, n - 1):
        return False
    for _ in range(s - 1):
        x = (x * x) % n
        if x == n - 1:
            return False
    return True


def is_prime(n: int, rng: random.Random | None = None) -> bool:
    """Primality test: deterministic Miller–Rabin below ~3.3e24, probabilistic above.

    Args:
        n: candidate integer.
        rng: randomness source for the probabilistic fallback (only consulted
            for ``n`` beyond the deterministic bound).

    Returns:
        True iff ``n`` is (with overwhelming probability, for huge ``n``) prime.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d, s = n - 1, 0
    while d % 2 == 0:
        d //= 2
        s += 1
    if n < _DETERMINISTIC_BOUND:
        witnesses = [a for a in _DETERMINISTIC_WITNESSES if a < n - 1]
    else:
        rng = rng or random.Random(0x5EED)
        witnesses = [rng.randrange(2, n - 1) for _ in range(64)]
    return not any(_miller_rabin_round(n, d, s, a) for a in witnesses)


def next_prime(n: int) -> int:
    """Smallest prime strictly greater than ``n`` (used to size custom fields)."""
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_prime(candidate):
        candidate += 2
    return candidate


@dataclass(frozen=True)
class PrimeField:
    """The finite field Z_p that all secret-sharing arithmetic runs in.

    Instances are immutable and cheap; all methods reduce their operands
    modulo ``p`` so callers may pass any integers.

    Attributes:
        p: the prime modulus. Must be prime — verified at construction.
    """

    p: int

    def __post_init__(self) -> None:
        if self.p < 2 or not is_prime(self.p):
            raise FieldError(f"modulus {self.p} is not prime")

    # -- basic operations -------------------------------------------------

    def normalize(self, a: int) -> int:
        """Map any integer into the canonical range [0, p)."""
        return a % self.p

    def add(self, a: int, b: int) -> int:
        return (a + b) % self.p

    def sub(self, a: int, b: int) -> int:
        return (a - b) % self.p

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.p

    def neg(self, a: int) -> int:
        return (-a) % self.p

    def inv(self, a: int) -> int:
        """Multiplicative inverse via Fermat's little theorem.

        Raises:
            FieldError: if ``a`` is congruent to 0 (zero has no inverse).
        """
        a %= self.p
        if a == 0:
            raise FieldError("0 has no multiplicative inverse")
        return pow(a, self.p - 2, self.p)

    def div(self, a: int, b: int) -> int:
        return self.mul(a, self.inv(b))

    def batch_inv(self, values: list[int]) -> list[int]:
        """Invert many nonzero elements with one modular exponentiation.

        Montgomery's trick: multiply the values into a prefix-product
        chain, invert only the final product, then peel the individual
        inverses back off the chain. Cuts ``len(values)`` Fermat
        exponentiations down to one — the difference between a Lagrange
        basis costing k modexps and costing one.

        Raises:
            FieldError: if any value is congruent to 0.
        """
        if not values:
            return []
        prefix: list[int] = []
        acc = 1
        for v in values:
            v %= self.p
            if v == 0:
                raise FieldError("0 has no multiplicative inverse")
            prefix.append(acc)
            acc = (acc * v) % self.p
        inv_acc = self.inv(acc)
        out = [0] * len(values)
        for i in range(len(values) - 1, -1, -1):
            out[i] = (inv_acc * prefix[i]) % self.p
            inv_acc = (inv_acc * values[i]) % self.p
        return out

    def pow(self, a: int, e: int) -> int:
        return pow(a % self.p, e, self.p)

    # -- polynomials -------------------------------------------------------

    def poly_eval(self, coefficients: list[int], x: int) -> int:
        """Evaluate ``sum(c_i * x**i)`` by Horner's rule in the field.

        ``coefficients[0]`` is the constant term — for Shamir, the secret.
        """
        acc = 0
        for c in reversed(coefficients):
            acc = (acc * x + c) % self.p
        return acc

    def random_element(self, rng: random.Random) -> int:
        """Uniform element of Z_p (used for Shamir coefficients)."""
        return rng.randrange(self.p)

    def random_nonzero(self, rng: random.Random) -> int:
        """Uniform element of Z_p \\ {0} (used for server x-coordinates)."""
        return rng.randrange(1, self.p)

    # -- linear algebra ----------------------------------------------------

    def solve_linear_system(
        self, matrix: list[list[int]], rhs: list[int]
    ) -> list[int]:
        """Solve ``A x = b`` over Z_p by Gaussian elimination with pivoting.

        This is the reconstruction path the paper specifies in Algorithm 1b
        ("Recover a0 by solving the following system of k linear equations",
        O(k^3)). Lagrange interpolation in :mod:`.shamir` is the faster
        alternative for recovering only the constant term.

        Args:
            matrix: square coefficient matrix (rows of equal length).
            rhs: right-hand-side vector, one entry per row.

        Returns:
            The solution vector.

        Raises:
            FieldError: if the matrix is singular or malformed.
        """
        n = len(matrix)
        if n == 0 or len(rhs) != n or any(len(row) != n for row in matrix):
            raise FieldError("linear system must be square with matching rhs")
        # Work on an augmented copy so callers' data is untouched.
        aug = [
            [self.normalize(v) for v in row] + [self.normalize(b)]
            for row, b in zip(matrix, rhs)
        ]
        for col in range(n):
            pivot_row = next(
                (r for r in range(col, n) if aug[r][col] != 0), None
            )
            if pivot_row is None:
                raise FieldError("singular matrix: shares are not independent")
            aug[col], aug[pivot_row] = aug[pivot_row], aug[col]
            inv_pivot = self.inv(aug[col][col])
            aug[col] = [(v * inv_pivot) % self.p for v in aug[col]]
            for r in range(n):
                if r != col and aug[r][col] != 0:
                    factor = aug[r][col]
                    aug[r] = [
                        (vr - factor * vc) % self.p
                        for vr, vc in zip(aug[r], aug[col])
                    ]
        return [row[n] for row in aug]

    def lagrange_eval(self, points: list[tuple[int, int]], x: int) -> int:
        """Interpolate the unique polynomial through ``points`` and evaluate
        it at ``x``.

        Used for Shamir reconstruction (x = 0) and for the §5.1 dynamic
        server extension ("just selecting additional points on the
        polynomial curve": evaluate at the new server's x-coordinate).

        Args:
            points: distinct ``(x_i, y_i)`` pairs.
            x: evaluation point.

        Raises:
            FieldError: if any two x-coordinates coincide.
        """
        xs = [self.normalize(px) for px, _ in points]
        if len(set(xs)) != len(xs):
            raise FieldError("duplicate x-coordinates in interpolation")
        x = self.normalize(x)
        total = 0
        for i, (xi, yi) in enumerate(points):
            num, den = 1, 1
            for j, (xj, _) in enumerate(points):
                if i == j:
                    continue
                num = (num * (x - xj)) % self.p
                den = (den * (xi - xj)) % self.p
            total = (total + yi * num * self.inv(den)) % self.p
        return total

    def lagrange_at_zero(self, points: list[tuple[int, int]]) -> int:
        """Recover a Shamir secret: interpolate through ``points`` at x=0."""
        return self.lagrange_eval(points, 0)

    def lagrange_weights_at_zero(self, xs: tuple[int, ...]) -> tuple[int, ...]:
        """The Lagrange basis evaluated at x=0 for the support ``xs``.

        Returns weights ``w_i = prod_{j != i} x_j / (x_j - x_i)`` such
        that any polynomial ``f`` of degree ``< len(xs)`` through points
        ``(x_i, y_i)`` satisfies ``f(0) = sum w_i * y_i  (mod p)``. The
        weights depend only on the x-coordinates, never on the shares —
        which is what makes them cacheable across every posting element
        fetched from the same server slots.

        Computed with a single modular inversion (:meth:`batch_inv`).

        Raises:
            FieldError: on duplicate or zero x-coordinates (x=0 in the
                support would mean a share *is* the secret).
        """
        normalized = [self.normalize(x) for x in xs]
        if len(set(normalized)) != len(normalized):
            raise FieldError("duplicate x-coordinates in interpolation")
        if any(x == 0 for x in normalized):
            raise FieldError("x-coordinate 0 in a Lagrange-at-zero basis")
        numerators: list[int] = []
        denominators: list[int] = []
        for i, xi in enumerate(normalized):
            num, den = 1, 1
            for j, xj in enumerate(normalized):
                if i == j:
                    continue
                num = (num * xj) % self.p
                den = (den * (xj - xi)) % self.p
            numerators.append(num)
            denominators.append(den)
        inverses = self.batch_inv(denominators)
        return tuple(
            (num * inv) % self.p for num, inv in zip(numerators, inverses)
        )
