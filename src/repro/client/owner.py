"""The document owner's client daemon (paper §5.4.1, §7.2).

"Zerber runs a client program at the document owner that tracks local
changes and performs only the necessary updates at the central indexes."

For each shared document the owner: tokenizes it, builds one posting
element per distinct term, packs the ``[doc_id, term_id, tf]`` secret,
splits it k-out-of-n, mints a global element ID, resolves the merged
posting list through the public mapping table, and enqueues one
:class:`~repro.server.index_server.InsertOp` per server. A batching policy
(§5.4.1) decides when the accumulated, *cross-document shuffled* operations
actually reach the servers.

The owner also keeps two local structures §7.2 calls for: a local inverted
index over its shared documents ("also useful for local search") and the
shadow map ``doc_id -> [(pl_id, element_id)]`` that makes per-element
deletion possible — the servers cannot group elements by document, but the
owner can.
"""

from __future__ import annotations

import contextlib
import random
from dataclasses import dataclass
from typing import Sequence

from repro.client.batching import BatchPolicy, UpdateBatcher
from repro.core.dictionary import TermDictionary
from repro.core.mapping_table import MappingTable
from repro.core.posting import PostingElement, PostingElementCodec, new_element_id
from repro.corpus.document import Document
from repro.errors import ReproError
from repro.invindex.inverted_index import InvertedIndex
from repro.protocol.messages import (
    AdoptListRequest,
    DeleteBatchRequest,
    FetchListsRequest,
    InsertBatchRequest,
)
from repro.protocol.service import fleet_resolver
from repro.protocol.transport import InProcessTransport, Transport
from repro.secretsharing.shamir import ShamirScheme
from repro.server.auth import AuthToken
from repro.server.index_server import DeleteOp, InsertOp, ShareRecord
from repro.server.transport import SimulatedNetwork


@dataclass(frozen=True)
class _ElementPlan:
    """One posting element fanned out to its n share-holders (internal)."""

    pl_id: int
    element_id: int
    group_id: int
    shares_y: tuple[int, ...]  # index-aligned with the share slots


@dataclass(frozen=True)
class DroppedRoute:
    """One (share_slot, server) pair a write could not reach.

    Attributes:
        pod_name: the replica pod the seat belongs to ("" for the
            single-fleet router, which never drops).
        share_slot: the seat's share slot — ``shares_y[share_slot]`` is
            the share that failed to land.
        server_id: the seat's stable server name (survives WAL restarts,
            unlike the server object itself).
    """

    pod_name: str
    share_slot: int
    server_id: str


@dataclass(frozen=True)
class WriteRoute:
    """A router's full answer for one posting list: who gets the write,
    and which seats missed it (the owner's re-provisioning ledger feeds
    off ``dropped``).

    ``live`` names seats by *endpoint*, never by server object — the
    owner delivers every operation as a protocol message over its
    transport, so a route is pure addressing: ``shares_y[share_slot]``
    goes to the endpoint ``server_id``.
    """

    live: tuple[tuple[int, str], ...]
    dropped: tuple[DroppedRoute, ...] = ()


class FleetRouter:
    """The paper's §5 placement: every posting list lives on every server.

    A router decides which ``(share_slot, server_id)`` pairs an operation
    on one posting list must reach; ``shares_y[share_slot]`` is the share
    delivered to that endpoint. This default routes everything to the
    whole fleet; the cluster's
    :class:`~repro.cluster.coordinator.ClusterCoordinator` implements the
    same ``route``/``targets`` contract to route each list to its replica
    pods instead.
    """

    def __init__(self, servers: Sequence) -> None:
        self._servers = servers

    def targets(self, pl_id: int) -> list[tuple[int, str]]:
        return [
            (slot, server.server_id)
            for slot, server in enumerate(self._servers)
        ]

    def route(self, pl_id: int) -> WriteRoute:
        """Full replication never drops a seat: every server is live."""
        return WriteRoute(live=tuple(self.targets(pl_id)))


class DocumentOwner:
    """A peer that shares, updates and withdraws its own documents."""

    def __init__(
        self,
        owner_id: str,
        token: AuthToken,
        scheme: ShamirScheme,
        mapping_table: MappingTable,
        dictionary: TermDictionary,
        servers: Sequence[IndexServer] | None,
        codec: PostingElementCodec | None = None,
        network: SimulatedNetwork | None = None,
        batch_policy: BatchPolicy | None = None,
        rng: random.Random | None = None,
        router=None,
        transport: Transport | None = None,
    ) -> None:
        """Args:
        owner_id: the owner's principal name (also its network endpoint).
        token: the owner's enterprise auth ticket.
        scheme: the public Shamir deployment parameters.
        mapping_table: the public term -> posting-list table.
        dictionary: the public term -> term_id registry.
        servers: the n index servers, index-aligned with the scheme's
            x-coordinates.
        codec: posting-element packer (standard 64-bit layout by default).
        network: when given (and no ``transport``), the private default
            transport charges every call against this simulated network
            for §7.3 byte accounting.
        batch_policy: §5.4.1 batching knobs; defaults to a 4-document
            batch. Use ``BatchPolicy(min_documents=1)`` for the paper's
            "if the user trusts that no index servers are compromised"
            immediate-update mode.
        rng: element-ID/shuffle randomness (seed it in tests).
        router: placement of posting lists onto servers; defaults to the
            paper's full replication (:class:`FleetRouter` over
            ``servers``). A cluster coordinator routes each list to its
            owning pod instead, in which case ``servers`` may be None.
        transport: where protocol messages go. Deployments pass their
            shared transport; when omitted, a private in-process
            transport over ``servers`` is built (resolving the live
            sequence lazily, so fleet extension keeps working).
        """
        if router is None:
            if servers is None:
                raise ReproError("need servers, a router, or both")
            if len(servers) != scheme.n:
                raise ReproError(
                    f"scheme expects {scheme.n} servers, got {len(servers)}"
                )
            router = FleetRouter(servers)
        self.owner_id = owner_id
        self._token = token
        self._scheme = scheme
        self._mapping = mapping_table
        self._dictionary = dictionary
        # Kept as the caller's live sequence so fleet extension
        # (ZerberDeployment.add_server) is visible to existing owners.
        self._servers = servers
        self._router = router
        self._codec = codec or PostingElementCodec()
        self._network = network
        self._share_bytes = (scheme.field.p.bit_length() + 7) // 8
        if transport is None:
            transport = InProcessTransport(
                network=network,
                share_bytes=self._share_bytes,
                resolver=fleet_resolver(servers),
            )
        self._transport = transport
        self._rng = rng or random.Random()
        self._batcher: UpdateBatcher[_ElementPlan] = UpdateBatcher(
            batch_policy or BatchPolicy(),
            flush_fn=self._send_insert_batch,
            rng=self._rng,
        )
        #: doc_id -> [(pl_id, element_id)] — the deletion shadow map (§7.3).
        self._shadow: dict[int, list[tuple[int, int]]] = {}
        #: server_id -> [(kind, op)] — operations a dead seat missed, in
        #: delivery order, kept until :meth:`reprovision_dropped_writes`
        #: can replay them onto the restarted seat.
        self._undelivered: dict[str, list[tuple[str, object]]] = {}
        #: server_id -> routing decisions dropped on it (mirrors the
        #: coordinator's dropped_write_routes ledger, per seat).
        self._dropped_route_tally: dict[str, int] = {}
        #: the §7.2 local index over this owner's shared documents.
        self.local_index = InvertedIndex()
        self._documents: dict[int, Document] = {}

    # -- sharing -------------------------------------------------------------

    def share_document(self, document: Document) -> int:
        """Share (or re-share) a document; returns its element count.

        Re-sharing an already-shared doc_id first withdraws the old
        elements, so "only the most recent copy of the document on a site
        will ever be retrieved".
        """
        if document.doc_id in self._shadow:
            self.delete_document(document.doc_id)
        plans = self._build_plans(document)
        self._shadow[document.doc_id] = [
            (plan.pl_id, plan.element_id) for plan in plans
        ]
        self._documents[document.doc_id] = document
        self.local_index.index_document(document)
        self._batcher.enqueue_document(plans)
        return len(plans)

    def _build_plans(self, document: Document) -> list[_ElementPlan]:
        plans = []
        used_ids: set[tuple[int, int]] = set()
        for term, count in sorted(document.term_counts.items()):
            term_id = self._dictionary.get_or_assign(term)
            element = PostingElement(
                doc_id=document.doc_id,
                term_id=term_id,
                tf=count / document.length,
            )
            secret = self._codec.pack(element)
            shares = self._scheme.split(secret, rng=self._rng)
            pl_id = self._mapping.lookup(term)
            id_bits = self._codec.spec.element_id_bits
            element_id = new_element_id(self._rng, id_bits)
            while (pl_id, element_id) in used_ids:
                element_id = new_element_id(self._rng, id_bits)
            used_ids.add((pl_id, element_id))
            plans.append(
                _ElementPlan(
                    pl_id=pl_id,
                    element_id=element_id,
                    group_id=document.group_id,
                    shares_y=tuple(share.y for share in shares),
                )
            )
        return plans

    def _repair_span(self):
        """The router's repair mutex when it has one, else a no-op.

        Cluster routers expose ``repair_mutex`` so write *spans* (route
        + deliver) serialize against anti-entropy heals: a heal that
        exported a source seat's state between this owner's route and
        its delivery would adopt a pre-write image onto a seat the
        ledger just declared healthy, silently erasing the write. The
        single-fleet router has no repair machinery and no mutex.
        """
        mutex = getattr(self._router, "repair_mutex", None)
        return contextlib.nullcontext() if mutex is None else mutex

    def _batch_route(self, pl_id: int, memo: dict) -> WriteRoute:
        """Router route memoized per distinct list within one batch
        (the router may invalidate caches / scan liveness per call)."""
        route = memo.get(pl_id)
        if route is None:
            route_fn = getattr(self._router, "route", None)
            if route_fn is not None:
                route = route_fn(pl_id)
            else:
                route = WriteRoute(live=tuple(self._router.targets(pl_id)))
            memo[pl_id] = route
            for dropped in route.dropped:
                self._dropped_route_tally[dropped.server_id] = (
                    self._dropped_route_tally.get(dropped.server_id, 0) + 1
                )
        return route

    def _record_undelivered(self, dropped: DroppedRoute, kind: str, op) -> None:
        self._undelivered.setdefault(dropped.server_id, []).append((kind, op))

    def _send_insert_batch(self, plans: list[_ElementPlan]) -> None:
        """Fan one shuffled batch out along the router's placement.

        The whole route+deliver span holds the router's repair mutex
        (see :meth:`_repair_span`) so an anti-entropy heal can only
        observe the cluster before the batch routed or after it landed
        everywhere — never in between.
        """
        with self._repair_span():
            ops_by_server: dict[str, list[InsertOp]] = {}
            route_memo: dict[int, WriteRoute] = {}
            for plan in plans:
                route = self._batch_route(plan.pl_id, route_memo)
                for share_slot, server_id in route.live:
                    ops_by_server.setdefault(server_id, []).append(
                        InsertOp(
                            pl_id=plan.pl_id,
                            element_id=plan.element_id,
                            group_id=plan.group_id,
                            share_y=plan.shares_y[share_slot],
                        )
                    )
                for dropped in route.dropped:
                    self._record_undelivered(
                        dropped,
                        "insert",
                        InsertOp(
                            pl_id=plan.pl_id,
                            element_id=plan.element_id,
                            group_id=plan.group_id,
                            share_y=plan.shares_y[dropped.share_slot],
                        ),
                    )
            for server_id, operations in ops_by_server.items():
                self._deliver("insert", server_id, operations)
            self._complete_writes(route_memo)

    def _complete_writes(self, route_memo: dict) -> None:
        """Fence the delivered lists' cache epochs (cluster routers).

        The router invalidated every tier when it routed; this second
        epoch bump closes the invalidate→delivery window, in which a
        reader could fetch pre-write shares under the post-invalidate
        epoch and fill them back into a cache. Runs inside the repair
        span, after the last seat took the batch.
        """
        complete = getattr(self._router, "complete_write", None)
        if complete is not None:
            for pl_id in route_memo:
                complete(pl_id)

    def _deliver(
        self, kind: str, server_id: str, operations: list
    ) -> None:
        """One insert/delete protocol message to one endpoint."""
        if kind == "insert":
            request = InsertBatchRequest(
                token=self._token, operations=tuple(operations)
            )
        else:
            request = DeleteBatchRequest(
                token=self._token, operations=tuple(operations)
            )
        self._transport.call(src=self.owner_id, dst=server_id, request=request)

    # -- freshness -----------------------------------------------------------

    def flush_updates(self) -> int:
        """Force pending batches out (end-of-day daemon flush)."""
        return self._batcher.flush()

    def tick(self, ticks: int = 1) -> bool:
        """Advance the batcher's freshness clock."""
        return self._batcher.tick(ticks)

    @property
    def pending_documents(self) -> int:
        return self._batcher.pending_documents

    # -- withdrawal ----------------------------------------------------------

    def delete_document(self, doc_id: int) -> int:
        """Withdraw a document: delete each of its elements separately.

        Returns the number of elements deleted per server. Flushes pending
        inserts first so a delete can never race ahead of its own insert.
        """
        self._batcher.flush()
        entries = self._shadow.pop(doc_id, None)
        if not entries:
            return 0
        operations = [
            DeleteOp(pl_id=pl_id, element_id=element_id)
            for pl_id, element_id in entries
        ]
        self._rng.shuffle(operations)
        with self._repair_span():
            ops_by_server: dict[str, list[DeleteOp]] = {}
            route_memo: dict[int, WriteRoute] = {}
            for op in operations:
                route = self._batch_route(op.pl_id, route_memo)
                for _share_slot, server_id in route.live:
                    ops_by_server.setdefault(server_id, []).append(op)
                dropped_ids = set()
                for dropped in route.dropped:
                    self._record_undelivered(dropped, "delete", op)
                    dropped_ids.add(dropped.server_id)
                # A seat that is live *now* may still owe this element's
                # insert from an earlier outage (the backlog holds the
                # share). The live delete below no-ops on such a seat,
                # so pair the delete into its backlog as well:
                # reprovision then cancels the insert/delete pair
                # instead of resurrecting a withdrawn element onto the
                # seat long after every healthy replica forgot it.
                key = (op.pl_id, op.element_id)
                for server_id, entries in self._undelivered.items():
                    if server_id in dropped_ids:
                        continue
                    if any(
                        kind == "insert"
                        and (pending.pl_id, pending.element_id) == key
                        for kind, pending in entries
                    ):
                        entries.append(("delete", op))
            for server_id, server_ops in ops_by_server.items():
                self._deliver("delete", server_id, server_ops)
            self._complete_writes(route_memo)
        self.local_index.delete_document(doc_id)
        self._documents.pop(doc_id, None)
        return len(operations)

    # -- re-provisioning dropped writes ----------------------------------------

    @property
    def undelivered_operations(self) -> int:
        """Operations still owed to dead (or not-yet-repaired) seats."""
        return sum(len(entries) for entries in self._undelivered.values())

    def reprovision_dropped_writes(self) -> int:
        """Replay writes that dead seats missed onto their restarted seats.

        A seat that was down while this owner wrote dropped those routes
        (the router counted them in ``dropped_write_routes``); a restart
        from the seat's WAL replays only what the seat *received*, so the
        element would live on fewer than n servers forever. The owner —
        who minted the shares — closes the gap: every undelivered insert
        and delete is kept per seat, and this method re-delivers them to
        seats that are alive again, in the original order (inserts before
        the deletes that may reference them; an insert/delete pair that
        cancelled out while the seat was down is skipped entirely).

        Seats still dead keep their ledger entries for a later call.
        Returns the number of operations re-delivered.

        Re-delivered inserts travel as idempotent per-list adoptions
        (:class:`AdoptListRequest`), not fresh insert batches: the
        anti-entropy sweep — or another owner's earlier reprovision —
        may have already healed the seat, and replaying an
        ``InsertBatchRequest`` then would be rejected as a duplicate
        element. Adoption merges exactly the records the seat still
        misses and no-ops on the rest; deletes are naturally idempotent
        and stay delete batches. Each seat's span (liveness check,
        delivery, ledger note) holds the router's repair mutex so a
        concurrent sweep can never heal-then-lose against it.
        """
        find_slot = getattr(self._router, "find_slot", None)
        if find_slot is None or not self._undelivered:
            return 0
        self._batcher.flush()
        note = getattr(self._router, "note_repaired", None)
        redelivered = 0
        for server_id in sorted(self._undelivered):
            with self._repair_span():
                slot = find_slot(server_id)
                if slot is None or not slot.alive:
                    continue
                entries = self._undelivered.pop(server_id)
                inserts = [op for kind, op in entries if kind == "insert"]
                deletes = [op for kind, op in entries if kind == "delete"]
                insert_keys = {(op.pl_id, op.element_id) for op in inserts}
                cancelled = {
                    (op.pl_id, op.element_id)
                    for op in deletes
                    if (op.pl_id, op.element_id) in insert_keys
                }
                inserts = [
                    op for op in inserts
                    if (op.pl_id, op.element_id) not in cancelled
                ]
                deletes = [
                    op for op in deletes
                    if (op.pl_id, op.element_id) not in cancelled
                ]
                adopt_by_list: dict[int, list[ShareRecord]] = {}
                for op in inserts:
                    adopt_by_list.setdefault(op.pl_id, []).append(
                        ShareRecord(
                            element_id=op.element_id,
                            group_id=op.group_id,
                            share_y=op.share_y,
                        )
                    )
                for pl_id in sorted(adopt_by_list):
                    self._transport.call(
                        src=self.owner_id,
                        dst=server_id,
                        request=AdoptListRequest(
                            pl_id=pl_id,
                            records=tuple(adopt_by_list[pl_id]),
                        ),
                    )
                if deletes:
                    self._deliver("delete", server_id, deletes)
                redelivered += len(inserts) + len(deletes)
                repaired_lists = (
                    {op.pl_id for op in inserts}
                    | {op.pl_id for op in deletes}
                    | {pl_id for pl_id, _ in cancelled}
                )
                if note is not None:
                    note(
                        server_id,
                        repaired_lists,
                        self._dropped_route_tally.pop(server_id, 0),
                    )
        return redelivered

    # -- fleet extension (§5.1) ------------------------------------------------

    def provision_new_server(self, new_server_index: int) -> int:
        """Hand a newly added server shares of this owner's existing elements.

        §5.1: Shamir "allows dynamic extension of the number n of servers
        without recalculating the existing secret shares, by just selecting
        additional points on the polynomial curve." The owner — who is
        entitled to read its own documents — gathers k shares of each of
        its elements from the old servers, interpolates the original
        polynomial, evaluates it at the new server's x-coordinate, and
        inserts that single new point. Element IDs and posting-list IDs
        are unchanged, so queries spanning old and new servers keep
        joining correctly.

        Args:
            new_server_index: index of the already-registered new server
                (its x-coordinate must be the scheme's ``x_of(index)``).

        Returns:
            The number of elements provisioned.
        """
        self._batcher.flush()
        if self._servers is None:
            raise ReproError(
                "fleet extension needs the full server list; cluster "
                "deployments add whole pods instead"
            )
        new_server = self._servers[new_server_index]
        field = self._scheme.field
        new_x = self._scheme.x_of(new_server_index)
        if new_server.x_coordinate != new_x:
            raise ReproError(
                "new server's x-coordinate disagrees with the scheme"
            )
        my_entries = {
            (pl_id, element_id)
            for entries in self._shadow.values()
            for pl_id, element_id in entries
        }
        if not my_entries:
            return 0
        pl_ids = sorted({pl_id for pl_id, _ in my_entries})
        k = self._scheme.k
        # Gather k shares of every element from the first k old servers.
        points: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for server_index in range(k):
            x = self._scheme.x_of(server_index)
            fetched = self._transport.call(
                src=self.owner_id,
                dst=self._servers[server_index].server_id,
                request=FetchListsRequest(
                    token=self._token, pl_ids=tuple(pl_ids)
                ),
            )
            for response in fetched.lists:
                for record in response.records:
                    key = (response.pl_id, record.element_id)
                    if key in my_entries:
                        points.setdefault(key, []).append(
                            (x, record.share_y)
                        )
        operations = []
        group_of_entry = {
            entry: document.group_id
            for doc_id, entries in self._shadow.items()
            for entry in entries
            if (document := self._documents.get(doc_id)) is not None
        }
        for key, share_points in sorted(points.items()):
            if len(share_points) < k:
                continue  # an old server is missing data; skip, don't guess
            pl_id, element_id = key
            y_new = field.lagrange_eval(share_points[:k], new_x)
            operations.append(
                InsertOp(
                    pl_id=pl_id,
                    element_id=element_id,
                    group_id=group_of_entry[key],
                    share_y=y_new,
                )
            )
        if operations:
            self._deliver("insert", new_server.server_id, operations)
        return len(operations)

    # -- introspection ---------------------------------------------------------

    @property
    def shared_documents(self) -> list[int]:
        return sorted(self._shadow)

    def document(self, doc_id: int) -> Document | None:
        return self._documents.get(doc_id)

    def elements_of(self, doc_id: int) -> list[tuple[int, int]]:
        """The shadow map entries for one document (copies)."""
        return list(self._shadow.get(doc_id, ()))
