"""Snippet service of the hosting peers (paper §5.4.2).

"Search engine results usually include a document ID and also a small
portion of the document content surrounding the query term. Such context
information cannot be stored on the index servers due to security and space
concerns. Zerber clients request snippets from the peers hosting the top-K
documents before presenting the search results to the user."

Every hosting peer enforces access control on its own documents — the index
never had the content, so a snippet request is an ordinary access-controlled
document read. §7.3 sizes snippets at "about 250 B including XML
formatting"; :meth:`SnippetService.wire_bytes` reproduces that framing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.corpus.document import Document
from repro.errors import AccessDeniedError, ReproError
from repro.server.groups import GroupDirectory

#: §7.3: "each snippet contains about 250 B including XML formatting".
XML_ENVELOPE_BYTES = 130


@dataclass(frozen=True)
class Snippet:
    """One snippet response.

    Attributes:
        doc_id: the document the snippet came from.
        host: the peer that served it.
        text: the context window around the first query-term hit.
    """

    doc_id: int
    host: str
    text: str

    def wire_bytes(self) -> int:
        """Snippet size with the XML envelope of §7.3."""
        return len(self.text.encode("utf-8")) + XML_ENVELOPE_BYTES


class SnippetService:
    """Registry of hosting peers and their access-controlled documents."""

    def __init__(self, groups: GroupDirectory, snippet_width: int = 120) -> None:
        """Args:
        groups: the membership table used for per-read ACL checks.
        snippet_width: characters of context around the query term.
        """
        if snippet_width < 8:
            raise ReproError("snippet_width too small to be useful")
        self._groups = groups
        self._snippet_width = snippet_width
        self._documents: dict[int, Document] = {}

    def host_document(self, document: Document) -> None:
        """A peer publishes (or replaces) one of its shared documents."""
        self._documents[document.doc_id] = document

    def withdraw_document(self, doc_id: int) -> bool:
        """Stop sharing; returns whether the document was hosted."""
        return self._documents.pop(doc_id, None) is not None

    def host_of(self, doc_id: int) -> str | None:
        doc = self._documents.get(doc_id)
        return doc.host if doc else None

    def request_snippet(
        self, user_id: str, doc_id: int, query_terms: Sequence[str]
    ) -> Snippet:
        """Serve a snippet after checking the requester's group membership.

        Raises:
            ReproError: unknown document.
            AccessDeniedError: requester is outside the document's group.
        """
        document = self._documents.get(doc_id)
        if document is None:
            raise ReproError(f"document {doc_id} is not hosted here")
        if not self._groups.is_member(user_id, document.group_id):
            raise AccessDeniedError(
                f"user {user_id!r} may not read document {doc_id}"
            )
        text = ""
        for term in query_terms:
            text = document.snippet(term, self._snippet_width)
            if term.lower() in text.lower():
                break
        if not text:
            text = document.snippet("", self._snippet_width)
        return Snippet(doc_id=doc_id, host=document.host, text=text)
