"""Client-side Zerber: document owners and querying users (paper §5.4).

- :mod:`repro.client.batching` — update batching policies ("Batch size,
  frequency, and other batch parameters can be tuned by each document owner
  to trade off security and index freshness", §5.4.1);
- :mod:`repro.client.owner` — the document owner's daemon: parse, build
  posting elements, Shamir-split, distribute to the n servers, track local
  changes, and delete element-by-element;
- :mod:`repro.client.searcher` — the querying user: resolve terms through
  the mapping table, gather ≥ k shares, reconstruct, filter false
  positives, rank with Fagin's TA, fetch snippets (Algorithm 2);
- :mod:`repro.client.snippets` — the hosting peers' snippet service.
"""

from repro.client.batching import BatchPolicy, UpdateBatcher
from repro.client.owner import DocumentOwner
from repro.client.searcher import SearchClient, SearchResult
from repro.client.snippets import SnippetService

__all__ = [
    "BatchPolicy",
    "UpdateBatcher",
    "DocumentOwner",
    "SearchClient",
    "SearchResult",
    "SnippetService",
]
