"""The querying user's client (paper §5.4.2, Algorithm 2).

Query processing, exactly as Algorithm 2 stages it:

1. map query terms to merged posting-list IDs through the public mapping
   table ("she does not divulge which terms she is querying" — only list
   IDs travel);
2. authenticate to k (or more) index servers and fetch the requested lists;
   each server returns only the elements the user's groups may read;
3. join the share streams on the global element ID and reconstruct each
   element from any k shares (``decodeShamirsScheme``);
4. filter false positives — elements of merged-in terms the user did not
   query (``filterElements``);
5. rank client-side with personalized collection statistics and Fagin's
   Threshold Algorithm;
6. fetch snippets for the top-K from the hosting peers.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Sequence

from repro.client.snippets import SnippetService
from repro.core.dictionary import TermDictionary
from repro.core.mapping_table import MappingTable
from repro.core.posting import PostingElement, PostingElementCodec
from repro.errors import PackingError, ReproError, UnknownEndpointError
from repro.observability.tracing import span, trace_scope
from repro.protocol.messages import FetchListsRequest, FetchSnippetRequest
from repro.protocol.service import fleet_resolver
from repro.protocol.transport import InProcessTransport, Transport
from repro.resilience.deadline import deadline_scope
from repro.ranking.scores import CollectionStatistics, TfIdfScorer
from repro.ranking.threshold import threshold_top_k
from repro.secretsharing.shamir import ShamirScheme, Share
from repro.server.auth import AuthToken
from repro.server.index_server import PostingListResponse
from repro.server.transport import SimulatedNetwork


@dataclass(frozen=True)
class SearchResult:
    """One ranked hit as presented to the user.

    Attributes:
        doc_id: the matching document.
        score: its personalized tf-idf score.
        host: hosting peer (from the snippet fetch; "" when snippets off).
        snippet: context text ("" when snippets off).
        matched_terms: the query terms the document actually contains.
    """

    doc_id: int
    score: float
    host: str = ""
    snippet: str = ""
    matched_terms: tuple[str, ...] = ()


@dataclass
class SearchDiagnostics:
    """Per-query accounting the §7.3 experiments read off.

    Attributes:
        posting_lists_requested: distinct merged-list IDs sent to servers.
        elements_received: share groups received with >= k shares.
        false_positives: decrypted elements discarded as merged-in noise.
        elements_matched: elements surviving the term filter.
        response_bytes: total lookup response bytes across servers
            (0 unless a network is attached).
    """

    posting_lists_requested: int = 0
    elements_received: int = 0
    false_positives: int = 0
    elements_matched: int = 0
    response_bytes: int = 0
    inconsistent_elements: int = 0
    recovered_elements: int = 0


class SearchClient:
    """A group member searching the shared index."""

    def __init__(
        self,
        user_id: str,
        token: AuthToken,
        scheme: ShamirScheme,
        mapping_table: MappingTable,
        dictionary: TermDictionary,
        servers: Sequence | None,
        codec: PostingElementCodec | None = None,
        network: SimulatedNetwork | None = None,
        snippet_service: SnippetService | None = None,
        reconstruct_method: str = "lagrange",
        verify_consistency: bool = False,
        transport: Transport | None = None,
    ) -> None:
        """Args:
        user_id: the searching principal (network endpoint name too).
        token: enterprise auth ticket.
        scheme: public Shamir parameters (k, n, x-coordinates).
        mapping_table: public term -> posting-list resolver.
        dictionary: public term -> term_id registry.
        servers: the full server fleet, index-aligned with the scheme.
            Subclasses that override :meth:`_fetch_lists` with their own
            routing (the cluster client) pass None instead.
        codec: posting-element unpacker.
        network: optional simulated network for byte accounting (used by
            the default transport when no ``transport`` is given).
        snippet_service: optional hosting-peer registry for step 6.
        reconstruct_method: "lagrange" (default) or "gaussian" (the
            paper's Algorithm 1b formulation).
        verify_consistency: when querying more than k servers, cross-check
            every element by reconstructing from two different k-subsets
            of its shares; elements whose reconstructions disagree (a
            lying or corrupted server) are dropped and counted in
            :attr:`SearchDiagnostics.inconsistent_elements`.
        transport: where protocol messages go. Deployments pass their
            shared transport (in-process or socket); when omitted, a
            private in-process transport over ``servers`` is built.
        """
        if servers is not None and len(servers) != scheme.n:
            raise ReproError(
                f"scheme expects {scheme.n} servers, got {len(servers)}"
            )
        self.user_id = user_id
        self._token = token
        self._scheme = scheme
        self._mapping = mapping_table
        self._dictionary = dictionary
        # Live reference: fleet extension must be visible to old clients.
        self._servers = servers
        self._codec = codec or PostingElementCodec()
        self._network = network
        self._snippets = snippet_service
        self._method = reconstruct_method
        self._verify = verify_consistency
        self._share_bytes = (scheme.field.p.bit_length() + 7) // 8
        if transport is None:
            transport = InProcessTransport(
                network=network,
                share_bytes=self._share_bytes,
                resolver=fleet_resolver(servers),
            )
        self._transport = transport
        self.last_diagnostics = SearchDiagnostics()

    # -- low level: fetch + decrypt -------------------------------------------

    def _fetch_lists(
        self, pl_ids: Sequence[int], num_servers: int
    ) -> list[tuple[int, list[PostingListResponse]]]:
        """Ask ``num_servers`` servers for the lists; returns (server_index, responses)."""
        if self._servers is None:
            raise ReproError(
                "no server fleet attached; servers=None is only valid for "
                "subclasses that override _fetch_lists with their own routing"
            )
        chosen = list(range(len(self._servers)))[:num_servers]
        request = FetchListsRequest(token=self._token, pl_ids=tuple(pl_ids))
        out = []
        for server_index in chosen:
            response = self._transport.call(
                src=self.user_id,
                dst=self._servers[server_index].server_id,
                request=request,
            )
            self.last_diagnostics.response_bytes += response.wire_bytes(
                self._share_bytes
            )
            out.append((server_index, list(response.lists)))
        return out

    def _reconstruct_lists(
        self, pl_ids: Sequence[int], num_servers: int
    ) -> dict[int, list[PostingElement]]:
        """Steps 2-3 for the named lists: fetch, join, reconstruct, unpack.

        Returns every decrypted element per list — *no* term filtering,
        so the result depends only on (user's groups, num_servers,
        list), never on which query asked. That property is what makes
        the per-list output safely cacheable by the searcher-local L1
        (see :class:`repro.cachetier.L1PostingCache`); the term filter
        stays per-query in :meth:`fetch_elements`. A list with no
        reconstructible elements maps to an empty entry — emptiness is
        a cacheable fact too.
        """
        k = self._scheme.k
        # Join share streams on (pl_id, element_id). Because the fetch
        # stage yields whole posting lists per server slot, the columns
        # of this join are naturally grouped by (pl_id, slot-set): every
        # element of a list fetched from the same k slots carries the
        # same x-tuple, which is exactly what reconstruct_batch's shared
        # Lagrange weight vectors amortize over.
        shares_of: dict[tuple[int, int], list[Share]] = defaultdict(list)
        fetched = self._fetch_lists(pl_ids, num_servers)
        with span("reconstruct"):
            for server_index, responses in fetched:
                x = self._scheme.x_of(server_index)
                for response in responses:
                    for record in response.records:
                        shares_of[
                            (response.pl_id, record.element_id)
                        ].append(Share(x=x, y=record.share_y))
            # Elements short of k shares (a lagging or lying server)
            # cannot reconstruct and are dropped before the batch.
            eligible = {
                key: shares
                for key, shares in shares_of.items()
                if len(shares) >= k
            }
            self.last_diagnostics.elements_received = len(eligible)
            if self._method == "lagrange":
                # The hot path: per-element cost is a k-term dot product
                # with Lagrange weights cached per x-tuple. Byte-identical
                # to per-element reconstruct (same chosen k-subsets).
                secrets = self._scheme.reconstruct_batch(eligible)
            else:
                secrets = {
                    key: self._scheme.reconstruct(
                        shares, method=self._method
                    )
                    for key, shares in eligible.items()
                }
            by_list: dict[int, list[PostingElement]] = {
                pl_id: [] for pl_id in pl_ids
            }
            for key, shares in eligible.items():
                secret = secrets[key]
                if self._verify and len(shares) > k:
                    # Cross-check and, when shares disagree, recover by
                    # plurality vote over k-subsets: with a single lying
                    # server among m > k shares, the true secret appears
                    # in C(m-1, k) subsets while each corrupted
                    # reconstruction is a distinct field element
                    # appearing once.
                    verdict, distinct = self._majority_reconstruct(
                        shares, k
                    )
                    if distinct > 1:
                        self.last_diagnostics.inconsistent_elements += 1
                        if verdict is None:
                            continue  # detectable, not correctable: drop
                        self.last_diagnostics.recovered_elements += 1
                        secret = verdict
                try:
                    element = self._codec.unpack(secret)
                except PackingError:
                    # Inconsistent shares decode to garbage; drop them.
                    continue
                by_list[key[0]].append(element)
        return by_list

    def _elements_by_list(
        self, pl_ids: Sequence[int], num_servers: int
    ) -> dict[int, list[PostingElement]]:
        """Override point for caching tiers that sit past reconstruction
        (the cluster client's L1); the base client always reconstructs."""
        return self._reconstruct_lists(pl_ids, num_servers)

    def fetch_elements(
        self, terms: Sequence[str], num_servers: int | None = None
    ) -> list[PostingElement]:
        """Steps 1-4 of Algorithm 2: fetch, join, reconstruct, filter.

        Returns the decrypted posting elements of the queried terms only
        (false positives already removed). Populates
        :attr:`last_diagnostics`.
        """
        self.last_diagnostics = SearchDiagnostics()
        if not terms:
            return []
        wanted_term_ids = {
            self._dictionary.id_of(t)
            for t in terms
            if self._dictionary.id_of(t) is not None
        }
        pl_ids = sorted({self._mapping.lookup(t) for t in terms})
        self.last_diagnostics.posting_lists_requested = len(pl_ids)
        k = self._scheme.k
        num_servers = num_servers or k
        if num_servers < k:
            raise ReproError(
                f"must query at least k={k} servers, asked {num_servers}"
            )
        by_list = self._elements_by_list(pl_ids, num_servers)
        elements: list[PostingElement] = []
        for pl_id in pl_ids:
            for element in by_list[pl_id]:
                if element.term_id in wanted_term_ids:
                    elements.append(element)
                else:
                    self.last_diagnostics.false_positives += 1
        self.last_diagnostics.elements_matched = len(elements)
        return elements

    def _majority_reconstruct(self, shares, k: int) -> tuple[int | None, int]:
        """Plurality secret over (up to 21) k-subsets of the shares.

        A single corrupted share among ``m`` shares poisons every subset
        containing it with a *distinct* garbage value, while the true
        secret repeats across all C(m-1, k) honest subsets — so strict
        plurality identifies it whenever m >= k + 2 (standard
        error-correction bound: detection needs k + 1, correction k + 2e).
        Colluding servers injecting *identical* wrong shares can defeat
        plurality; that stronger adversary needs verifiable secret
        sharing, out of the paper's scope.

        Returns:
            ``(verdict, distinct_values)`` — verdict is the plurality
            secret, or None on a tie (detection without correction);
            distinct_values is how many different reconstructions were
            observed (1 means all subsets agree).
        """
        from collections import Counter
        from itertools import combinations, islice

        # The lagrange back-end gets the weight-cached fast path — the
        # 21 subsets draw from at most C(m, k) distinct x-tuples whose
        # weights the scheme memoizes; results are byte-identical.
        method = "cached" if self._method == "lagrange" else self._method
        counts: Counter[int] = Counter()
        for subset in islice(combinations(shares, k), 21):
            counts[
                self._scheme.reconstruct(list(subset), method=method)
            ] += 1
        ranked = counts.most_common(2)
        if len(ranked) == 1:
            return ranked[0][0], 1
        (value, top), (_, runner_up) = ranked
        verdict = value if top > runner_up else None
        return verdict, len(counts)

    def _fetch_snippet(self, doc_id: int, terms: Sequence[str]):
        """Step 6 of Algorithm 2: a protocol message to the hosting peer
        (with §7.3 byte accounting on the in-process backend), falling
        back to a local service read when the peer has no endpoint.

        The attempt-then-fall-back shape matters on the socket backend:
        probing ``has_endpoint`` first would cost an extra discovery
        round-trip per hit, while an unknown peer already fails fast
        with a typed :class:`UnknownEndpointError`.
        """
        host = self._snippets.host_of(doc_id)
        if host is not None:
            try:
                response = self._transport.call(
                    src=self.user_id,
                    dst=host,
                    request=FetchSnippetRequest(
                        token=self._token, doc_id=doc_id, terms=tuple(terms)
                    ),
                )
                return response.snippet
            except UnknownEndpointError:
                pass  # peer not served by this transport: read locally
        return self._snippets.request_snippet(
            self.user_id, doc_id, list(terms)
        )

    # -- full query path ----------------------------------------------------------

    def search(
        self,
        terms: Sequence[str],
        top_k: int = 10,
        num_servers: int | None = None,
        fetch_snippets: bool = True,
        budget_s: float | None = None,
        trace_id: int | None = None,
    ) -> list[SearchResult]:
        """The complete Algorithm 2 pipeline; returns ranked results.

        ``budget_s`` bounds the whole pipeline with one deadline: every
        fetch, failover round, retry backoff, and snippet call sees the
        same shrinking budget (transports put the remainder on the
        wire), and the query fails with a typed
        :class:`~repro.errors.DeadlineExceededError` rather than ever
        outliving it. None (default) keeps the pipeline unbounded.

        ``trace_id`` turns on wire-level tracing for this one query: the
        pipeline runs under a trace scope, every stage (fetch, cache
        lookups, per-pod legs, reconstruction, ranking, snippets)
        records a span into the process span buffer, and the id rides
        every request frame so server-side spans join the same trace.
        Tracing is strictly passive — results are byte-identical with
        it on or off. None (default) records nothing.
        """
        if trace_id is not None:
            with trace_scope(trace_id=trace_id):
                return self.search(
                    terms,
                    top_k=top_k,
                    num_servers=num_servers,
                    fetch_snippets=fetch_snippets,
                    budget_s=budget_s,
                )
        if budget_s is not None:
            with deadline_scope(budget_s=budget_s):
                return self.search(
                    terms,
                    top_k=top_k,
                    num_servers=num_servers,
                    fetch_snippets=fetch_snippets,
                )
        with span("search"):
            with span("fetch-elements"):
                elements = self.fetch_elements(terms, num_servers)
            if not elements:
                return []
            with span("rank"):
                term_of_id = {
                    self._dictionary.id_of(t): t
                    for t in terms
                    if self._dictionary.id_of(t) is not None
                }
                collected: dict[str, list[tuple[int, float]]] = defaultdict(
                    list
                )
                for element in elements:
                    term = term_of_id[element.term_id]
                    collected[term].append((element.doc_id, element.tf))
                # Normalize to term order, independent of share arrival
                # order: float summation order must not depend on which
                # server (or pod) answered first, or byte-identical
                # ranking across deployments breaks in the last bit.
                postings_by_term = {
                    term: sorted(collected[term])
                    for term in sorted(collected)
                }
                # Personalized collection statistics from the
                # accessible postings.
                statistics = CollectionStatistics.from_postings(
                    {
                        t: [doc for doc, _ in ps]
                        for t, ps in postings_by_term.items()
                    }
                )
                scorer = TfIdfScorer(statistics)
                weights = {t: scorer.weight(t) for t in postings_by_term}
                hits = threshold_top_k(postings_by_term, weights, top_k)
                matched: dict[int, list[str]] = defaultdict(list)
                for term, postings in postings_by_term.items():
                    for doc_id, _ in postings:
                        matched[doc_id].append(term)
            with span("snippets"):
                results = []
                for hit in hits:
                    host, snippet = "", ""
                    if fetch_snippets and self._snippets is not None:
                        fetched = self._fetch_snippet(hit.doc_id, terms)
                        host, snippet = fetched.host, fetched.text
                    results.append(
                        SearchResult(
                            doc_id=hit.doc_id,
                            score=hit.score,
                            host=host,
                            snippet=snippet,
                            matched_terms=tuple(
                                sorted(matched[hit.doc_id])
                            ),
                        )
                    )
            return results
