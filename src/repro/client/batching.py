"""Update batching (paper §5.4.1).

"Index updates in Zerber can be performed in batches that insert or delete
posting elements for multiple documents. Batching can reduce index
freshness, but also reduces the average network and disk overhead per
update ... If Alice has compromised an index server, then batching also
reduces the information she gets by watching updates. ... Inserting
elements from several documents in one batch makes it hard for Alice to
guess which terms co-occur."

The batcher therefore does two things: it accumulates per-document element
insertions until a policy trigger fires, and — critically for the
correlation-attack defence — it *shuffles the elements of all batched
documents together* before release, so the arrival order inside a batch
carries no document-boundary signal.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Generic, Sequence, TypeVar

from repro.errors import ReproError

T = TypeVar("T")


@dataclass(frozen=True)
class BatchPolicy:
    """When to flush pending updates.

    Attributes:
        min_documents: flush once this many documents are pending (the
            security knob: a batch of one document leaks its element
            grouping to a compromised server's watcher).
        max_elements: flush when pending elements reach this count even if
            the document quota is unmet (bounds memory and disk I/O).
        max_age_ticks: flush when the oldest pending document has waited
            this many logical ticks (the freshness knob).
    """

    min_documents: int = 4
    max_elements: int = 50_000
    max_age_ticks: int = 16

    def __post_init__(self) -> None:
        if self.min_documents < 1:
            raise ReproError("min_documents must be >= 1")
        if self.max_elements < 1:
            raise ReproError("max_elements must be >= 1")
        if self.max_age_ticks < 0:
            raise ReproError("max_age_ticks must be >= 0")


class UpdateBatcher(Generic[T]):
    """Accumulates per-document operation groups and flushes them shuffled.

    Generic over the operation type so owners batch inserts and deletes with
    the same machinery.
    """

    def __init__(
        self,
        policy: BatchPolicy,
        flush_fn: Callable[[list[T]], None],
        rng: random.Random | None = None,
    ) -> None:
        """Args:
        policy: the trigger configuration.
        flush_fn: called with the shuffled operations of a whole batch.
        rng: shuffle randomness (seeded in tests).
        """
        self._policy = policy
        self._flush_fn = flush_fn
        self._rng = rng or random.Random()
        self._pending: list[tuple[int, list[T]]] = []  # (enqueue_tick, ops)
        self._pending_elements = 0
        self._clock = 0
        self.batches_flushed = 0

    # -- state -------------------------------------------------------------

    @property
    def pending_documents(self) -> int:
        return len(self._pending)

    @property
    def pending_elements(self) -> int:
        return self._pending_elements

    # -- operations -----------------------------------------------------------

    def enqueue_document(self, operations: Sequence[T]) -> bool:
        """Queue one document's operations; returns True if a flush fired."""
        if not operations:
            return False
        self._pending.append((self._clock, list(operations)))
        self._pending_elements += len(operations)
        return self._maybe_flush()

    def tick(self, ticks: int = 1) -> bool:
        """Advance logical time; returns True if an age-triggered flush fired."""
        if ticks < 0:
            raise ReproError("time only moves forward")
        self._clock += ticks
        return self._maybe_flush()

    def flush(self) -> int:
        """Force a flush; returns the number of operations released."""
        if not self._pending:
            return 0
        operations: list[T] = []
        for _, ops in self._pending:
            operations.extend(ops)
        # The security-critical step: destroy document boundaries.
        self._rng.shuffle(operations)
        self._pending.clear()
        self._pending_elements = 0
        self._flush_fn(operations)
        self.batches_flushed += 1
        return len(operations)

    def _maybe_flush(self) -> bool:
        if not self._pending:
            return False
        oldest_tick = self._pending[0][0]
        triggered = (
            len(self._pending) >= self._policy.min_documents
            or self._pending_elements >= self._policy.max_elements
            or (self._clock - oldest_tick) >= self._policy.max_age_ticks
        )
        if triggered:
            self.flush()
        return triggered
