"""Tests for the §3 keyed-encryption baseline (what Zerber replaces)."""

from __future__ import annotations

import pytest

from repro.baselines.keyed_index import (
    KeyedInvertedIndex,
    LogicalKeyTree,
)
from repro.errors import AccessDeniedError, ReproError


@pytest.fixture()
def group():
    tree = LogicalKeyTree(group_id=1)
    for member in ("alice", "bob", "carol", "dave"):
        tree.add_member(member)
    return tree


class TestLogicalKeyTree:
    def test_membership(self, group):
        assert group.size == 4
        assert group.has_member("alice")
        assert not group.has_member("mallory")

    def test_duplicate_join_rejected(self, group):
        with pytest.raises(ReproError):
            group.add_member("alice")

    def test_revoking_unknown_rejected(self, group):
        with pytest.raises(ReproError):
            group.revoke_member("mallory")

    def test_revocation_changes_key_and_version(self, group):
        old_key = group.group_key
        group.revoke_member("dave")
        assert group.group_key != old_key
        assert group.key_version == 1
        assert not group.has_member("dave")

    def test_lkh_beats_naive_for_large_groups(self):
        tree = LogicalKeyTree(group_id=2)
        for i in range(256):
            tree.add_member(f"m{i}")
        lkh_cost = tree.revoke_member("m0")
        naive_cost = LogicalKeyTree.naive_rekey_cost(256)
        assert lkh_cost < naive_cost
        assert lkh_cost <= 2 * 9  # 2 * ceil(log2(255)) + slack

    def test_rekey_messages_accumulate(self, group):
        before = group.rekey_messages
        group.revoke_member("dave")
        assert group.rekey_messages > before


class TestKeyedInvertedIndex:
    @pytest.fixture()
    def index(self, group):
        index = KeyedInvertedIndex(group)
        index.insert("merger", doc_id=1, tf=0.25)
        index.insert("merger", doc_id=2, tf=0.1)
        index.insert("budget", doc_id=1, tf=0.5)
        return index

    def test_members_can_search(self, index):
        results = index.search("alice", "merger")
        assert sorted(results) == [(1, 0.25), (2, 0.1)]

    def test_non_members_cannot(self, index):
        with pytest.raises(AccessDeniedError):
            index.search("mallory", "merger")

    def test_server_never_sees_terms(self, index):
        # Stored handles are HMAC blinded: no plaintext term appears.
        for entry in index._entries:
            assert b"merger" not in entry.term_handle
            assert b"merger" not in entry.ciphertext

    def test_revocation_bricks_the_index_until_reencryption(self, group, index):
        group.revoke_member("dave")
        assert index.stale_entries() == 3
        # §3: content under the revoked key is unreadable/unsafe — the
        # index refuses to serve until re-encrypted.
        with pytest.raises(ReproError):
            index.search("alice", "merger")
        plaintext = [("merger", 1, 0.25), ("merger", 2, 0.1), ("budget", 1, 0.5)]
        reencrypted = index.reencrypt_all(plaintext)
        assert reencrypted == 3
        assert index.reencrypted_elements == 3
        assert sorted(index.search("alice", "merger")) == [(1, 0.25), (2, 0.1)]

    def test_ex_member_cannot_search_after_rekey(self, group, index):
        group.revoke_member("dave")
        index.reencrypt_all([("merger", 1, 0.25)])
        with pytest.raises(AccessDeniedError):
            index.search("dave", "merger")

    def test_contrast_with_zerber_revocation(self):
        # The point of the baseline: Zerber's revocation cost is ONE
        # membership-table update and ZERO re-encrypted elements.
        from repro.server.groups import GroupDirectory

        groups = GroupDirectory()
        groups.create_group(1, coordinator="alice")
        groups.add_member(1, "dave", actor="alice")
        groups.remove_member(1, "dave", actor="alice")
        assert not groups.is_member("dave", 1)  # instant, keyless
