"""Tests for the ZerberDeployment facade (the public API surface)."""

from __future__ import annotations

import pytest

from repro.core.mapping_table import MappingTable
from repro.core.zerber_index import ZerberDeployment
from repro.corpus.document import Document
from repro.errors import AuthError, ReproError, TransportError


def zipf_probs(n: int) -> dict[str, float]:
    raw = {f"t{i:03d}": 1.0 / (i + 1) for i in range(n)}
    total = sum(raw.values())
    return {t: p / total for t, p in raw.items()}


PROBS = zipf_probs(120)


class TestBootstrap:
    def test_dfm_by_name(self):
        deployment = ZerberDeployment.bootstrap(
            PROBS, heuristic="dfm", num_lists=8, use_network=False
        )
        assert deployment.mapping_table.num_lists == 8
        assert deployment.merge_result.heuristic == "DFM"

    def test_bfm_by_name_with_target_r(self):
        deployment = ZerberDeployment.bootstrap(
            PROBS, heuristic="bfm", target_r=10.0, use_network=False
        )
        assert deployment.merge_result.heuristic == "BFM"
        assert deployment.merge_result.resulting_r(PROBS) <= 10.0 + 1e-9

    def test_udm_by_name(self):
        deployment = ZerberDeployment.bootstrap(
            PROBS, heuristic="udm", num_lists=6, use_network=False
        )
        assert deployment.merge_result.heuristic == "UDM"

    def test_instance_heuristic(self):
        from repro.core.merging.udm import UniformDistributionMerging

        deployment = ZerberDeployment.bootstrap(
            PROBS,
            heuristic=UniformDistributionMerging(5),
            use_network=False,
        )
        assert deployment.mapping_table.num_lists == 5

    def test_rare_cutoff_applied(self):
        cutoff = sorted(PROBS.values())[len(PROBS) // 2]
        deployment = ZerberDeployment.bootstrap(
            PROBS,
            heuristic="udm",
            num_lists=6,
            rare_cutoff=cutoff,
            use_network=False,
        )
        assert deployment.mapping_table.table_size < len(PROBS)

    def test_missing_parameters_rejected(self):
        with pytest.raises(ReproError):
            ZerberDeployment.bootstrap(PROBS, heuristic="dfm")
        with pytest.raises(ReproError):
            ZerberDeployment.bootstrap(PROBS, heuristic="udm")
        with pytest.raises(ReproError):
            ZerberDeployment.bootstrap(PROBS, heuristic="bfm")
        with pytest.raises(ReproError):
            ZerberDeployment.bootstrap(PROBS, heuristic="nope", num_lists=4)


class TestPrincipals:
    @pytest.fixture()
    def deployment(self):
        return ZerberDeployment(
            mapping_table=MappingTable({}, num_lists=4),
            use_network=False,
            seed=2,
        )

    def test_enroll_idempotent(self, deployment):
        token_a = deployment.enroll_user("alice")
        token_b = deployment.enroll_user("alice")
        assert token_a is token_b

    def test_group_lifecycle(self, deployment):
        deployment.create_group(1, coordinator="carol")
        deployment.add_member(1, "dave", actor="carol")
        assert deployment.groups.is_member("dave", 1)
        deployment.remove_member(1, "dave", actor="carol")
        assert not deployment.groups.is_member("dave", 1)

    def test_owner_cached_searcher_fresh(self, deployment):
        deployment.create_group(0, coordinator="alice")
        assert deployment.owner("alice") is deployment.owner("alice")
        assert deployment.searcher("alice") is not deployment.searcher("alice")


class TestNetworkWiring:
    def test_unknown_message_rejected(self):
        # A frame that is not a protocol message the index-server
        # service understands is rejected with a typed error, whichever
        # path (transport or raw network) delivered it.
        from repro.errors import ProtocolError
        from repro.protocol import FetchSnippetRequest

        deployment = ZerberDeployment(
            mapping_table=MappingTable({}, num_lists=4), seed=3
        )
        token = deployment.enroll_user("alice")
        with pytest.raises(ProtocolError):
            deployment.transport.call(
                "alice",
                deployment.servers[0].server_id,
                FetchSnippetRequest(token=token, doc_id=1, terms=("a",)),
            )

    def test_unknown_endpoint_names_the_endpoint(self):
        from repro.errors import UnknownEndpointError
        from repro.protocol import ServerStatusRequest

        deployment = ZerberDeployment(
            mapping_table=MappingTable({}, num_lists=4), seed=3
        )
        with pytest.raises(UnknownEndpointError) as excinfo:
            deployment.transport.call(
                "alice", "no-such-server", ServerStatusRequest()
            )
        assert excinfo.value.endpoint == "no-such-server"
        assert "no-such-server" in str(excinfo.value)

    def test_expired_token_rejected_through_network(self):
        deployment = ZerberDeployment(
            mapping_table=MappingTable({}, num_lists=4), seed=4
        )
        deployment.create_group(0, coordinator="alice")
        doc = Document(
            doc_id=1, host="h", group_id=0, term_counts={"a": 1}, length=1
        )
        owner = deployment.owner("alice")
        deployment.auth.advance_clock(10_000)
        owner.share_document(doc)
        with pytest.raises(AuthError):
            owner.flush_updates()


class TestFleetAccounting:
    def test_storage_and_elements(self):
        deployment = ZerberDeployment(
            mapping_table=MappingTable({}, num_lists=4),
            use_network=False,
            seed=5,
        )
        deployment.create_group(0, coordinator="alice")
        doc = Document(
            doc_id=1,
            host="h",
            group_id=0,
            term_counts={"a": 1, "b": 2},
            length=3,
        )
        deployment.share_document("alice", doc)
        assert deployment.flush_all() == 2
        assert deployment.total_elements() == 6  # 2 elements x 3 servers
        per_record = 4 + 4 + 4 + deployment.servers[0].share_bytes
        assert deployment.storage_bytes() == 6 * per_record

    def test_custom_k_n(self):
        deployment = ZerberDeployment(
            mapping_table=MappingTable({}, num_lists=4),
            k=3,
            n=5,
            use_network=False,
            seed=6,
        )
        assert len(deployment.servers) == 5
        assert deployment.scheme.k == 3
        deployment.create_group(0, coordinator="alice")
        doc = Document(
            doc_id=1, host="h", group_id=0, term_counts={"x": 1}, length=1
        )
        deployment.share_document("alice", doc)
        deployment.flush_all()
        results = deployment.searcher("alice").fetch_elements(["x"])
        assert [e.doc_id for e in results] == [1]
