"""Tests for the future-work extensions (§3, §7.1, §8)."""

from __future__ import annotations

import pytest

from repro.core.merging.udm import UniformDistributionMerging
from repro.errors import AccessDeniedError, AuthError, ReproError
from repro.extensions.dht import ConsistentHashRing, DHTPlacement
from repro.extensions.opaque_ids import (
    OpaqueIdMapper,
    PseudonymizedGroupDirectory,
)
from repro.extensions.topk_server import (
    BucketedRecord,
    BucketedTopKStore,
    bucket_leakage_bits,
    bucket_of,
)


class TestBucketing:
    def test_bucket_monotone_in_tf(self):
        buckets = [bucket_of(tf, 8) for tf in (0.001, 0.01, 0.1, 0.5, 1.0)]
        assert buckets == sorted(buckets)
        assert buckets[-1] == 7

    def test_bucket_range(self):
        for tf in (1e-9, 0.25, 1.0):
            assert 0 <= bucket_of(tf, 4) < 4

    def test_validation(self):
        with pytest.raises(ReproError):
            bucket_of(0.0, 8)
        with pytest.raises(ReproError):
            bucket_of(0.5, 1)


class TestBucketedStore:
    @pytest.fixture()
    def store(self):
        store = BucketedTopKStore(num_buckets=4)
        for i, bucket in enumerate([3, 3, 2, 1, 0, 0]):
            store.insert(
                0,
                BucketedRecord(
                    element_id=i, group_id=1, share_y=100 + i, bucket=bucket
                ),
            )
        return store

    def test_pruned_lookup_serves_best_buckets_first(self, store):
        out = store.lookup_pruned([0], frozenset({1}), max_elements=2)
        assert [r.bucket for _, r in out] == [3, 3]

    def test_whole_buckets_served(self, store):
        # Requesting 1 element still returns the full top bucket (2 items)
        # so servers cut deterministically at bucket boundaries.
        out = store.lookup_pruned([0], frozenset({1}), max_elements=1)
        assert len(out) == 2

    def test_acl_respected(self, store):
        assert store.lookup_pruned([0], frozenset({2}), max_elements=10) == []

    def test_insert_validation(self, store):
        with pytest.raises(ReproError):
            store.insert(
                0, BucketedRecord(element_id=0, group_id=1, share_y=1, bucket=3)
            )
        with pytest.raises(ReproError):
            store.insert(
                1, BucketedRecord(element_id=9, group_id=1, share_y=1, bucket=9)
            )
        with pytest.raises(ReproError):
            store.lookup_pruned([0], frozenset({1}), max_elements=0)

    def test_leakage_accounting(self, store):
        hist = store.bucket_histogram(0)
        assert hist == {3: 2, 2: 1, 1: 1, 0: 2}
        leak = bucket_leakage_bits(hist)
        # Leakage bounded by log2(num_buckets) = 2 bits.
        assert 0 < leak <= 2.0

    def test_uniform_histogram_leaks_log2_buckets(self):
        assert bucket_leakage_bits({0: 5, 1: 5, 2: 5, 3: 5}) == pytest.approx(2.0)

    def test_single_bucket_leaks_nothing(self):
        assert bucket_leakage_bits({2: 10}) == 0.0

    def test_empty_histogram_rejected(self):
        with pytest.raises(ReproError):
            bucket_leakage_bits({})


class TestConsistentHashRing:
    def test_owners_stable_and_distinct(self):
        ring = ConsistentHashRing(["p0", "p1", "p2", "p3"])
        owners = ring.owners("pl:7", replicas=2)
        assert len(set(owners)) == 2
        assert ring.owners("pl:7", replicas=2) == owners

    def test_add_remove_peer(self):
        ring = ConsistentHashRing(["p0", "p1"])
        ring.add_peer("p2")
        assert "p2" in ring.peers
        ring.remove_peer("p2")
        assert "p2" not in ring.peers
        with pytest.raises(ReproError):
            ring.remove_peer("p2")
        with pytest.raises(ReproError):
            ring.add_peer("p0")

    def test_validation(self):
        with pytest.raises(ReproError):
            ConsistentHashRing([])
        with pytest.raises(ReproError):
            ConsistentHashRing(["a", "a"])
        ring = ConsistentHashRing(["a"])
        with pytest.raises(ReproError):
            ring.owners("k", replicas=2)
        with pytest.raises(ReproError):
            ring.owners("k", replicas=0)


def small_merge():
    probs = {f"t{i:03d}": 1.0 / (i + 1) for i in range(64)}
    total = sum(probs.values())
    probs = {t: p / total for t, p in probs.items()}
    return UniformDistributionMerging(num_lists=16).merge(probs), probs


class TestDHTPlacement:
    def test_every_list_placed_on_replicas(self):
        merge, _ = small_merge()
        ring = ConsistentHashRing([f"p{i}" for i in range(6)])
        placement = DHTPlacement(ring, merge, replicas=2)
        for pl_id in range(merge.num_lists):
            assert len(placement.peers_for(pl_id)) == 2
        assert sum(placement.load_distribution().values()) == 32

    def test_peer_sees_only_fraction(self):
        merge, _ = small_merge()
        ring = ConsistentHashRing([f"p{i}" for i in range(8)])
        placement = DHTPlacement(ring, merge, replicas=2)
        loads = placement.load_distribution()
        assert all(load < merge.num_lists for load in loads.values())

    def test_peer_confidentiality_no_worse_than_fleet(self):
        merge, probs = small_merge()
        fleet_r = merge.resulting_r(probs)
        ring = ConsistentHashRing([f"p{i}" for i in range(8)])
        placement = DHTPlacement(ring, merge, replicas=2)
        for peer in ring.peers:
            assert placement.peer_confidentiality(peer, probs) <= fleet_r + 1e-9

    def test_rebalance_moves_only_some_lists(self):
        merge, _ = small_merge()
        ring = ConsistentHashRing([f"p{i}" for i in range(8)], virtual_nodes=32)
        placement = DHTPlacement(ring, merge, replicas=2)
        moved = placement.rebalance_cost("p-new")
        # A join must not reshuffle the whole index (the DHT's point).
        assert 0 <= moved < merge.num_lists

    def test_unknown_list_rejected(self):
        merge, _ = small_merge()
        ring = ConsistentHashRing(["a", "b"])
        placement = DHTPlacement(ring, merge, replicas=1)
        with pytest.raises(ReproError):
            placement.peers_for(10_000)


class TestOpaqueIds:
    def test_stable_pseudonyms(self):
        mapper = OpaqueIdMapper(key=b"k" * 32)
        assert mapper.opaque("alice") == mapper.opaque("alice")
        assert mapper.opaque("alice") != mapper.opaque("bob")
        assert mapper.is_opaque(mapper.opaque("alice"))

    def test_key_length_enforced(self):
        with pytest.raises(AuthError):
            OpaqueIdMapper(key=b"short")

    def test_empty_user_rejected(self):
        with pytest.raises(AuthError):
            OpaqueIdMapper(key=b"k" * 32).opaque("")

    def test_directory_stores_only_pseudonyms(self):
        mapper = OpaqueIdMapper(key=b"k" * 32)
        directory = PseudonymizedGroupDirectory(mapper)
        directory.create_group(1, coordinator="alice")
        directory.add_member(1, "bob", actor="alice")
        snapshot = directory.snapshot()
        stored = set().union(*snapshot.values())
        assert all(mapper.is_opaque(member) for member in stored)
        assert "alice" not in stored and "bob" not in stored

    def test_lookups_accept_real_ids(self):
        mapper = OpaqueIdMapper(key=b"k" * 32)
        directory = PseudonymizedGroupDirectory(mapper)
        directory.create_group(1, coordinator="alice")
        assert directory.is_member("alice", 1)
        assert directory.groups_of("alice") == frozenset({1})
        assert directory.groups_of(mapper.opaque("alice")) == frozenset({1})

    def test_coordinator_gate_via_pseudonyms(self):
        mapper = OpaqueIdMapper(key=b"k" * 32)
        directory = PseudonymizedGroupDirectory(mapper)
        directory.create_group(1, coordinator="alice")
        with pytest.raises(AccessDeniedError):
            directory.add_member(1, "eve", actor="eve")
        directory.remove_member(1, "alice", actor="alice")
        assert not directory.is_member("alice", 1)
