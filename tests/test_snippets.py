"""Tests for the hosting-peer snippet service (§5.4.2, §7.3)."""

from __future__ import annotations

import pytest

from repro.client.snippets import XML_ENVELOPE_BYTES, Snippet, SnippetService
from repro.corpus.document import Document
from repro.errors import AccessDeniedError, ReproError
from repro.server.groups import GroupDirectory


@pytest.fixture()
def service():
    groups = GroupDirectory()
    groups.create_group(1, coordinator="alice")
    groups.add_member(1, "bob", actor="alice")
    service = SnippetService(groups, snippet_width=60)
    service.host_document(
        Document(
            doc_id=10,
            host="peer-a",
            group_id=1,
            term_counts={"merger": 1, "budget": 2, "memo": 1},
            length=12,
            text="quarterly memo about the merger budget and the board review",
        )
    )
    return service


class TestAccessControl:
    def test_member_gets_snippet(self, service):
        snippet = service.request_snippet("alice", 10, ["merger"])
        assert "merger" in snippet.text
        assert snippet.host == "peer-a"
        assert snippet.doc_id == 10

    def test_non_member_denied(self, service):
        with pytest.raises(AccessDeniedError):
            service.request_snippet("mallory", 10, ["merger"])

    def test_revoked_member_denied(self, service):
        groups = service._groups
        groups.remove_member(1, "bob", actor="alice")
        with pytest.raises(AccessDeniedError):
            service.request_snippet("bob", 10, ["merger"])

    def test_unknown_document(self, service):
        with pytest.raises(ReproError):
            service.request_snippet("alice", 999, ["merger"])


class TestSnippetContent:
    def test_first_matching_term_wins(self, service):
        snippet = service.request_snippet("alice", 10, ["zzz", "budget"])
        assert "budget" in snippet.text

    def test_no_match_falls_back_to_prefix(self, service):
        snippet = service.request_snippet("alice", 10, ["absentterm"])
        assert snippet.text.startswith("quarterly")

    def test_width_respected(self, service):
        snippet = service.request_snippet("alice", 10, ["merger"])
        assert len(snippet.text) <= 60

    def test_wire_bytes_include_xml_envelope(self):
        snippet = Snippet(doc_id=1, host="h", text="x" * 100)
        assert snippet.wire_bytes() == 100 + XML_ENVELOPE_BYTES

    def test_paper_250_byte_snippet(self):
        # §7.3: "each snippet contains about 250 B including XML
        # formatting" — a 120-char window plus envelope lands there.
        snippet = Snippet(doc_id=1, host="h", text="y" * 120)
        assert 200 < snippet.wire_bytes() < 300


class TestHosting:
    def test_rehost_replaces(self, service):
        service.host_document(
            Document(
                doc_id=10,
                host="peer-b",
                group_id=1,
                term_counts={"new": 1},
                length=1,
                text="new",
            )
        )
        assert service.host_of(10) == "peer-b"

    def test_withdraw(self, service):
        assert service.withdraw_document(10)
        assert not service.withdraw_document(10)
        assert service.host_of(10) is None
        with pytest.raises(ReproError):
            service.request_snippet("alice", 10, ["merger"])

    def test_width_validation(self):
        with pytest.raises(ReproError):
            SnippetService(GroupDirectory(), snippet_width=4)
