"""Deterministic chaos drills: seeded faults, byte-identical-or-typed.

The PR 8 acceptance invariant: under *any* seeded fault schedule —
latency spikes, connection resets, dropped frames, duplicated frames,
slow-seat stalls, storage crashes — every query either returns results
byte-identical to a clean run or raises a typed
:class:`~repro.errors.ReproError`. Never silently wrong, never hung.

Determinism is the point: every :class:`FaultPlan` is seeded, so a
failing schedule replays exactly, and a fixed seed plus sequential
dispatch replays the same injection pattern run after run.
"""

import pytest

from helpers import make_cluster, make_documents

from repro.errors import ReproError
from repro.resilience import FaultPlan, FaultyTransport
from repro.server.index_server import InsertOp
from repro.storage import SegmentedStore

QUERIES = (
    ["w1"],
    ["w2", "w3"],
    ["w0", "w5"],
    ["w4"],
    ["w7", "w9"],
    ["w10", "w11", "w12"],
    ["w6"],
    ["w13", "w2"],
)


def clean_baseline(cluster):
    """Expected results per query from an unfaulted searcher."""
    searcher = cluster.searcher("owner0", use_cache=False)
    return [
        searcher.search(terms, fetch_snippets=False) for terms in QUERIES
    ]


def run_drill(cluster, plan, rounds=3, **searcher_kwargs):
    """Query through a faulty transport; classify every outcome.

    Returns (outcomes, results): ``outcomes[i]`` is ``"ok"`` or the
    typed error class name; ``results[i]`` is the result list for ok
    outcomes, None otherwise.
    """
    searcher_kwargs.setdefault("use_cache", False)
    faulty = FaultyTransport(cluster.transport, plan)
    searcher = cluster.searcher(
        "owner0", transport=faulty, **searcher_kwargs
    )
    outcomes, results = [], []
    for _ in range(rounds):
        for terms in QUERIES:
            try:
                outcome = searcher.search(terms, fetch_snippets=False)
            except ReproError as exc:
                outcomes.append(type(exc).__name__)
                results.append(None)
            except BaseException as exc:  # noqa: BLE001 - the invariant
                pytest.fail(
                    f"untyped failure escaped the drill: "
                    f"{type(exc).__name__}: {exc}"
                )
            else:
                outcomes.append("ok")
                results.append(outcome)
    return outcomes, results


def assert_identical_or_typed(cluster, outcomes, results):
    """Every ok result must match the clean baseline bitwise."""
    expected = clean_baseline(cluster)
    num_queries = len(QUERIES)
    ok = 0
    for index, (outcome, result) in enumerate(zip(outcomes, results)):
        if outcome == "ok":
            assert result == expected[index % num_queries], (
                f"query {index} diverged under faults"
            )
            ok += 1
    return ok


class TestInProcessChaos:
    def test_drops_and_resets_with_replicas(self):
        cluster = make_cluster(
            make_documents(num_docs=10), num_pods=2, replication_factor=2
        )
        with cluster:
            plan = FaultPlan(seed=0xC405, drop_rate=0.08, reset_rate=0.08)
            outcomes, results = run_drill(cluster, plan)
            ok = assert_identical_or_typed(cluster, outcomes, results)
            assert plan.total_injected() > 0
            # R=2 plus the failover ladder should absorb most faults.
            assert ok > len(outcomes) // 2

    def test_heavy_resets_fail_typed_never_wrong(self):
        cluster = make_cluster(
            make_documents(num_docs=10), num_pods=2, replication_factor=1
        )
        with cluster:
            plan = FaultPlan(seed=0xC406, reset_rate=0.45)
            outcomes, results = run_drill(cluster, plan)
            assert_identical_or_typed(cluster, outcomes, results)
            assert plan.injected["reset"] > 0
            # Heavy unreplicated resets must produce *some* typed
            # errors — and every one of them a ReproError subclass
            # (run_drill fails the test on anything untyped).
            assert any(outcome != "ok" for outcome in outcomes)

    def test_duplicated_frames_are_idempotent_for_reads(self):
        cluster = make_cluster(
            make_documents(num_docs=10), num_pods=2, replication_factor=1
        )
        with cluster:
            plan = FaultPlan(seed=0xC407, duplicate_rate=0.5)
            outcomes, results = run_drill(cluster, plan)
            ok = assert_identical_or_typed(cluster, outcomes, results)
            assert ok == len(outcomes)  # duplication never corrupts
            assert plan.injected["duplicate"] > 0

    def test_latency_spikes_change_nothing(self):
        cluster = make_cluster(
            make_documents(num_docs=10), num_pods=2, replication_factor=1
        )
        with cluster:
            plan = FaultPlan(
                seed=0xC408, latency_rate=0.4, latency_s=0.002
            )
            outcomes, results = run_drill(cluster, plan)
            ok = assert_identical_or_typed(cluster, outcomes, results)
            assert ok == len(outcomes)
            assert plan.injected["latency"] > 0

    def test_seeded_schedule_replays_identically(self):
        documents = make_documents(num_docs=10)
        # fanout_workers=1: sequential dispatch makes the draw order —
        # and therefore the whole injection schedule — reproducible.
        first = make_cluster(
            documents,
            num_pods=2,
            replication_factor=1,
            fanout_workers=1,
        )
        second = make_cluster(
            documents,
            num_pods=2,
            replication_factor=1,
            fanout_workers=1,
        )
        with first, second:
            plan_a = FaultPlan(seed=0xC409, reset_rate=0.3)
            plan_b = FaultPlan(seed=0xC409, reset_rate=0.3)
            outcomes_a, _ = run_drill(first, plan_a)
            outcomes_b, _ = run_drill(second, plan_b)
            assert outcomes_a == outcomes_b
            assert plan_a.injected == plan_b.injected


class TestWireChaos:
    @pytest.mark.parametrize("transport", ["socket", "async-socket"])
    def test_faulty_wire_stays_identical_or_typed(self, transport):
        cluster = make_cluster(
            make_documents(num_docs=10),
            num_pods=2,
            replication_factor=2,
            transport=transport,
        )
        with cluster:
            plan = FaultPlan(
                seed=0xC40A,
                drop_rate=0.06,
                reset_rate=0.06,
                latency_rate=0.1,
                latency_s=0.001,
            )
            outcomes, results = run_drill(cluster, plan)
            ok = assert_identical_or_typed(cluster, outcomes, results)
            assert plan.total_injected() > 0
            assert ok > len(outcomes) // 2


class TestSlowSeatStalls:
    def test_stalled_pod_with_hedging_stays_identical(self):
        cluster = make_cluster(
            make_documents(num_docs=10), num_pods=2, replication_factor=2
        )
        with cluster:
            # Stall only pod0's seats; the hedged backup leg reads the
            # untouched replica and the race must never change bytes.
            stalled = frozenset(
                slot.server_id for slot in cluster.pods[0].slots
            )
            plan = FaultPlan(
                seed=0xC40B,
                stall_rate=0.5,
                stall_s=0.03,
                endpoints=stalled,
            )
            outcomes, results = run_drill(
                cluster,
                plan,
                rounds=2,
                hedge_reads=True,
                hedge_delay_s=0.005,
            )
            ok = assert_identical_or_typed(cluster, outcomes, results)
            assert ok == len(outcomes)
            assert plan.injected["stall"] > 0

    def test_endpoint_filter_spares_other_seats(self):
        cluster = make_cluster(
            make_documents(num_docs=6), num_pods=2, replication_factor=1
        )
        with cluster:
            plan = FaultPlan(
                seed=0xC40C,
                reset_rate=1.0,
                endpoints=frozenset({"nonexistent-server"}),
            )
            outcomes, results = run_drill(cluster, plan, rounds=1)
            ok = assert_identical_or_typed(cluster, outcomes, results)
            assert ok == len(outcomes)  # nothing targeted, nothing hurt
            assert plan.total_injected() == 0


class _InjectedCrash(BaseException):
    """BaseException so no engine-side except can swallow it."""


class TestStorageChaos:
    def test_crash_hook_under_a_fault_plan_loses_nothing(self, tmp_path):
        ops = [
            InsertOp(
                pl_id=index % 3,
                element_id=index,
                group_id=index % 2,
                share_y=1000 + index,
            )
            for index in range(24)
        ]
        store = SegmentedStore(
            tmp_path / "seat", segment_bytes=128, auto_compact=False
        )
        store.append_inserts(ops)
        expected = store.replay()
        plan = FaultPlan(seed=0xC40D)
        store._crash_hook = plan.storage_crash_hook(
            crash_rate=1.0, crash_exception=_InjectedCrash
        )
        with pytest.raises(_InjectedCrash):
            store.compact()
        store._crash_hook = None
        store.close()
        recovered = SegmentedStore(tmp_path / "seat", auto_compact=False)
        assert recovered.replay() == expected
        recovered.close()

    def test_zero_crash_rate_never_fires(self, tmp_path):
        store = SegmentedStore(
            tmp_path / "seat", segment_bytes=128, auto_compact=False
        )
        store.append_inserts(
            [
                InsertOp(
                    pl_id=0, element_id=index, group_id=0, share_y=index
                )
                for index in range(8)
            ]
        )
        plan = FaultPlan(seed=0xC40E)
        store._crash_hook = plan.storage_crash_hook(
            crash_rate=0.0, crash_exception=_InjectedCrash
        )
        expected = store.replay()
        store.compact()
        assert store.replay() == expected
        store.close()
