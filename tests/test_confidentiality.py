"""Tests for the r-confidentiality measure (Definition 1, formulas 2-5, 7)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.confidentiality import (
    absence_amplification,
    amplification,
    is_r_confidential,
    list_confidentiality,
    merged_term_probability,
    required_probability_mass,
    resulting_r,
    uniform_distribution_r,
)
from repro.errors import ConfidentialityError


class TestFormula3:
    def test_posterior_is_normalized_share(self):
        # p = {0.1, 0.3, 0.6}: posterior of the 0.1 term is 0.1/1.0
        assert merged_term_probability(0.1, [0.1, 0.3, 0.6]) == pytest.approx(0.1)

    def test_posteriors_sum_to_one(self):
        members = [0.05, 0.2, 0.25]
        total = sum(merged_term_probability(p, members) for p in members)
        assert total == pytest.approx(1.0)

    def test_single_member_list_posterior_is_one(self):
        assert merged_term_probability(0.2, [0.2]) == pytest.approx(1.0)

    def test_candidate_must_be_member(self):
        with pytest.raises(ConfidentialityError):
            merged_term_probability(0.9, [0.1, 0.2])

    def test_rejects_invalid_probabilities(self):
        with pytest.raises(ConfidentialityError):
            merged_term_probability(0.1, [0.1, 0.0])
        with pytest.raises(ConfidentialityError):
            merged_term_probability(0.1, [])


class TestAmplification:
    def test_amplification_is_inverse_mass(self):
        members = [0.1, 0.15, 0.25]
        expected = 1.0 / 0.5
        for p in members:
            assert amplification(p, members) == pytest.approx(expected)

    def test_mass_one_means_no_amplification(self):
        members = [0.4, 0.6]
        assert amplification(0.4, members) == pytest.approx(1.0)

    def test_absence_amplification_never_exceeds_one(self):
        # §5.2: the absence posterior is SMALLER than the prior.
        members = [0.1, 0.2, 0.3]
        for p in members:
            assert absence_amplification(p, members) <= 1.0

    def test_absence_needs_interior_probability(self):
        with pytest.raises(ConfidentialityError):
            absence_amplification(1.0, [1.0])


class TestFormula5:
    def test_satisfied_when_mass_reaches_inverse_r(self):
        assert is_r_confidential([0.05, 0.05], r=10)  # mass 0.1 == 1/10

    def test_violated_when_mass_below(self):
        assert not is_r_confidential([0.04, 0.05], r=10)

    def test_r_below_one_rejected(self):
        with pytest.raises(ConfidentialityError):
            is_r_confidential([0.5], r=0.5)

    def test_required_mass(self):
        assert required_probability_mass(4.0) == pytest.approx(0.25)

    def test_required_mass_rejects_r_below_one(self):
        with pytest.raises(ConfidentialityError):
            required_probability_mass(0.99)


class TestFormula7:
    def test_weakest_list_governs(self):
        lists = [("a", "b"), ("c",)]
        probs = {"a": 0.3, "b": 0.3, "c": 0.1}
        # masses: 0.6 and 0.1 -> r = 1/0.1 = 10
        assert resulting_r(lists, probs) == pytest.approx(10.0)

    def test_single_all_terms_list_gives_r_at_most_one(self):
        probs = {"a": 0.5, "b": 0.5}
        assert resulting_r([("a", "b")], probs) == pytest.approx(1.0)

    def test_missing_probability_raises(self):
        with pytest.raises(ConfidentialityError):
            resulting_r([("a", "zzz")], {"a": 0.5})

    def test_empty_list_raises(self):
        with pytest.raises(ConfidentialityError):
            resulting_r([()], {"a": 0.5})

    def test_no_lists_raises(self):
        with pytest.raises(ConfidentialityError):
            resulting_r([], {"a": 0.5})

    def test_list_confidentiality_helper(self):
        assert list_confidentiality([0.1, 0.1]) == pytest.approx(5.0)


class TestUniformClosedForm:
    """§6: under uniform term probabilities, r equals the list count M."""

    def test_closed_form(self):
        assert uniform_distribution_r(1) == 1.0
        assert uniform_distribution_r(2) == 2.0
        assert uniform_distribution_r(1024) == 1024.0

    def test_rejects_zero_lists(self):
        with pytest.raises(ConfidentialityError):
            uniform_distribution_r(0)

    @pytest.mark.parametrize("m", [1, 2, 4, 8])
    def test_closed_form_matches_formula_7(self, m):
        # 64 uniform terms dealt into m equal lists.
        vocab = 64
        probs = {f"t{i}": 1.0 / vocab for i in range(vocab)}
        lists = [
            tuple(f"t{i}" for i in range(start, vocab, m))
            for start in range(m)
        ]
        assert resulting_r(lists, probs) == pytest.approx(
            uniform_distribution_r(m)
        )


@settings(max_examples=60, deadline=None)
@given(
    probs=st.lists(
        st.floats(min_value=1e-6, max_value=0.2), min_size=1, max_size=20
    )
)
def test_property_amplification_bounds(probs):
    """For any merged list: every member's amplification equals 1/mass,
    and the list is r-confidential exactly for r >= 1/mass."""
    mass = sum(probs)
    for p in probs:
        assert amplification(p, probs) == pytest.approx(1.0 / mass, rel=1e-9)
    r_exact = max(1.0, 1.0 / mass)
    assert is_r_confidential(probs, r_exact * 1.0000001)
