"""Unit + property tests for the Z_p field substrate (paper §5.1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FieldError
from repro.secretsharing.field import (
    DEFAULT_PRIME,
    PrimeField,
    is_prime,
    next_prime,
)

SMALL_PRIME = (1 << 31) - 1


class TestPrimality:
    def test_small_primes_recognized(self):
        for p in (2, 3, 5, 7, 11, 13, 97, 101, 7919):
            assert is_prime(p), p

    def test_small_composites_rejected(self):
        for c in (0, 1, 4, 6, 9, 15, 91, 7917, 1_000_000):
            assert not is_prime(c), c

    def test_negative_not_prime(self):
        assert not is_prime(-7)

    def test_default_prime_is_prime(self):
        assert is_prime(DEFAULT_PRIME)

    def test_default_prime_covers_64_bit_secrets(self):
        assert DEFAULT_PRIME > (1 << 64)

    def test_mersenne_31_is_prime(self):
        assert is_prime(SMALL_PRIME)

    def test_carmichael_number_rejected(self):
        # 561 = 3 * 11 * 17, the smallest Carmichael number.
        assert not is_prime(561)
        assert not is_prime(41041)

    def test_large_composite_near_default_prime(self):
        assert not is_prime(DEFAULT_PRIME + 2)  # even offset from 2^64+15

    def test_next_prime(self):
        assert next_prime(1) == 2
        assert next_prime(2) == 3
        assert next_prime(14) == 17
        assert next_prime(7919) == 7927

    def test_next_prime_above_power_of_two(self):
        assert next_prime(1 << 64) == DEFAULT_PRIME


class TestFieldConstruction:
    def test_rejects_composite_modulus(self):
        with pytest.raises(FieldError):
            PrimeField(100)

    def test_rejects_tiny_modulus(self):
        with pytest.raises(FieldError):
            PrimeField(1)

    def test_accepts_two(self):
        field = PrimeField(2)
        assert field.add(1, 1) == 0


class TestArithmetic:
    @pytest.fixture()
    def field(self):
        return PrimeField(SMALL_PRIME)

    def test_normalize_wraps_negative(self, field):
        assert field.normalize(-1) == SMALL_PRIME - 1

    def test_add_sub_roundtrip(self, field):
        assert field.sub(field.add(123, 456), 456) == 123

    def test_inverse(self, field):
        for a in (1, 2, 12345, SMALL_PRIME - 1):
            assert field.mul(a, field.inv(a)) == 1

    def test_zero_has_no_inverse(self, field):
        with pytest.raises(FieldError):
            field.inv(0)

    def test_zero_mod_p_has_no_inverse(self, field):
        with pytest.raises(FieldError):
            field.inv(SMALL_PRIME)

    def test_div(self, field):
        assert field.div(field.mul(7, 9), 9) == 7

    def test_pow_matches_builtin(self, field):
        assert field.pow(3, 20) == pow(3, 20, SMALL_PRIME)

    def test_poly_eval_constant(self, field):
        assert field.poly_eval([42], 999) == 42

    def test_poly_eval_linear(self, field):
        # f(x) = 5 + 3x
        assert field.poly_eval([5, 3], 10) == 35

    def test_poly_eval_horner_matches_naive(self, field):
        coeffs = [7, 0, 13, 1]
        x = 321
        naive = sum(c * x**i for i, c in enumerate(coeffs)) % SMALL_PRIME
        assert field.poly_eval(coeffs, x) == naive


_AXIOM_FIELD = PrimeField(SMALL_PRIME)
_field_elements = st.integers(min_value=0, max_value=SMALL_PRIME - 1)


@settings(max_examples=60, deadline=None)
@given(a=_field_elements, b=_field_elements, c=_field_elements)
def test_property_field_axioms(a, b, c):
    """Hypothesis: Z_p satisfies the field axioms Shamir relies on."""
    f = _AXIOM_FIELD
    assert f.add(a, b) == f.add(b, a)
    assert f.add(f.add(a, b), c) == f.add(a, f.add(b, c))
    assert f.mul(a, b) == f.mul(b, a)
    assert f.mul(f.mul(a, b), c) == f.mul(a, f.mul(b, c))
    assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))
    assert f.add(a, f.neg(a)) == 0
    if a % SMALL_PRIME != 0:
        assert f.mul(a, f.inv(a)) == 1


class TestLinearSolver:
    @pytest.fixture()
    def field(self):
        return PrimeField(97)

    def test_identity_system(self, field):
        sol = field.solve_linear_system([[1, 0], [0, 1]], [5, 9])
        assert sol == [5, 9]

    def test_known_system(self, field):
        # x + y = 10, 2x + y = 13  =>  x = 3, y = 7
        sol = field.solve_linear_system([[1, 1], [2, 1]], [10, 13])
        assert sol == [3, 7]

    def test_requires_pivoting(self, field):
        # First pivot is zero; solver must swap rows.
        sol = field.solve_linear_system([[0, 1], [1, 0]], [4, 6])
        assert sol == [6, 4]

    def test_singular_matrix_raises(self, field):
        with pytest.raises(FieldError):
            field.solve_linear_system([[1, 2], [2, 4]], [1, 2])

    def test_non_square_raises(self, field):
        with pytest.raises(FieldError):
            field.solve_linear_system([[1, 2]], [1])

    def test_empty_system_raises(self, field):
        with pytest.raises(FieldError):
            field.solve_linear_system([], [])

    def test_solution_verifies(self, field):
        matrix = [[3, 1, 4], [1, 5, 9], [2, 6, 5]]
        rhs = [13, 21, 34]
        sol = field.solve_linear_system(matrix, rhs)
        for row, b in zip(matrix, rhs):
            assert sum(r * s for r, s in zip(row, sol)) % 97 == b % 97


class TestLagrange:
    @pytest.fixture()
    def field(self):
        return PrimeField(SMALL_PRIME)

    def test_constant_polynomial(self, field):
        assert field.lagrange_at_zero([(1, 7), (2, 7)]) == 7

    def test_linear_polynomial(self, field):
        # f(x) = 10 + 3x
        points = [(1, 13), (5, 25)]
        assert field.lagrange_at_zero(points) == 10

    def test_duplicate_x_raises(self, field):
        with pytest.raises(FieldError):
            field.lagrange_at_zero([(1, 2), (1, 3)])

    def test_matches_gaussian_reconstruction(self, field):
        # The two §5.1 decodings agree on a degree-2 polynomial.
        coeffs = [424242, 1111, 99]
        points = [(x, field.poly_eval(coeffs, x)) for x in (2, 17, 300)]
        by_lagrange = field.lagrange_at_zero(points)
        matrix = [[field.pow(x, j) for j in range(3)] for x, _ in points]
        rhs = [y for _, y in points]
        by_gauss = field.solve_linear_system(matrix, rhs)[0]
        assert by_lagrange == by_gauss == 424242
