"""Tests for the Zerber index server (§5.3-§5.4, Fig. 3)."""

from __future__ import annotations

import pytest

from repro.errors import AccessDeniedError, AuthError, IndexServerError
from repro.server.auth import AuthService
from repro.server.groups import GroupDirectory
from repro.server.index_server import DeleteOp, IndexServer, InsertOp


@pytest.fixture()
def env():
    auth = AuthService()
    groups = GroupDirectory()
    groups.create_group(1, coordinator="alice")
    groups.create_group(2, coordinator="bob")
    server = IndexServer("s0", x_coordinate=17, auth=auth, groups=groups)
    tokens = {}
    for user in ("alice", "bob"):
        cred = auth.register_user(user)
        tokens[user] = auth.issue_token(user, cred)
    return auth, groups, server, tokens


def op(pl, eid, group, share=999):
    return InsertOp(pl_id=pl, element_id=eid, group_id=group, share_y=share)


class TestInsert:
    def test_insert_and_count(self, env):
        _, _, server, tokens = env
        inserted = server.insert_batch(
            tokens["alice"], [op(0, 1, 1), op(0, 2, 1), op(3, 1, 1)]
        )
        assert inserted == 3
        assert server.num_elements == 3
        assert server.num_posting_lists == 2

    def test_requires_group_membership(self, env):
        _, _, server, tokens = env
        with pytest.raises(AccessDeniedError):
            server.insert_batch(tokens["alice"], [op(0, 1, 2)])

    def test_membership_checked_before_any_write(self, env):
        # A batch with one bad op must not partially apply.
        _, _, server, tokens = env
        with pytest.raises(AccessDeniedError):
            server.insert_batch(
                tokens["alice"], [op(0, 1, 1), op(0, 2, 2)]
            )
        assert server.num_elements == 0

    def test_duplicate_element_in_list_rejected(self, env):
        _, _, server, tokens = env
        server.insert_batch(tokens["alice"], [op(0, 7, 1)])
        with pytest.raises(IndexServerError):
            server.insert_batch(tokens["alice"], [op(0, 7, 1)])

    def test_same_element_id_ok_in_different_lists(self, env):
        # Uniqueness is per posting list (§5.4.1: "globally unique within
        # its posting list").
        _, _, server, tokens = env
        server.insert_batch(tokens["alice"], [op(0, 7, 1), op(1, 7, 1)])
        assert server.num_elements == 2

    def test_bad_token_rejected(self, env):
        auth, _, server, tokens = env
        auth.advance_clock(10_000)
        with pytest.raises(AuthError):
            server.insert_batch(tokens["alice"], [op(0, 1, 1)])


class TestLookup:
    def test_acl_filtering(self, env):
        _, _, server, tokens = env
        server.insert_batch(tokens["alice"], [op(0, 1, 1)])
        server.insert_batch(tokens["bob"], [op(0, 2, 2)])
        # Alice sees only group-1 elements; bob only group-2.
        alice_view = server.get_posting_lists(tokens["alice"], [0])
        assert [r.element_id for r in alice_view[0].records] == [1]
        bob_view = server.get_posting_lists(tokens["bob"], [0])
        assert [r.element_id for r in bob_view[0].records] == [2]

    def test_membership_change_reflected_immediately(self, env):
        _, groups, server, tokens = env
        server.insert_batch(tokens["alice"], [op(0, 1, 1)])
        assert not server.get_posting_lists(tokens["bob"], [0])[0].records
        groups.add_member(1, "bob", actor="alice")
        assert server.get_posting_lists(tokens["bob"], [0])[0].records
        groups.remove_member(1, "bob", actor="alice")
        assert not server.get_posting_lists(tokens["bob"], [0])[0].records

    def test_unknown_list_returns_empty_not_error(self, env):
        # §6.4: emptiness must not be distinguishable from absence.
        _, _, server, tokens = env
        responses = server.get_posting_lists(tokens["alice"], [12345])
        assert responses[0].pl_id == 12345
        assert responses[0].records == ()

    def test_lookup_is_logged(self, env):
        _, _, server, tokens = env
        server.get_posting_lists(tokens["alice"], [3, 4])
        view = server.compromise()
        assert view.query_log == [("alice", (3, 4))]


class TestDelete:
    def test_per_element_delete(self, env):
        _, _, server, tokens = env
        server.insert_batch(tokens["alice"], [op(0, 1, 1), op(0, 2, 1)])
        deleted = server.delete(
            tokens["alice"], [DeleteOp(0, 1), DeleteOp(0, 99)]
        )
        assert deleted == 1
        assert server.num_elements == 1

    def test_delete_requires_membership_of_element_group(self, env):
        _, _, server, tokens = env
        server.insert_batch(tokens["alice"], [op(0, 1, 1)])
        with pytest.raises(AccessDeniedError):
            server.delete(tokens["bob"], [DeleteOp(0, 1)])

    def test_delete_from_unknown_list_is_noop(self, env):
        _, _, server, tokens = env
        assert server.delete(tokens["alice"], [DeleteOp(42, 1)]) == 0


class TestCompromise:
    def test_view_contents(self, env):
        _, _, server, tokens = env
        server.insert_batch(tokens["alice"], [op(0, 1, 1), op(0, 2, 1)])
        server.insert_batch(tokens["alice"], [op(1, 3, 1)])
        view = server.compromise()
        assert view.server_id == "s0"
        assert view.x_coordinate == 17
        assert view.merged_list_lengths() == {0: 2, 1: 1}
        assert len(view.update_log) == 2
        assert view.update_log[0] == [(0, 1), (0, 2)]
        assert "alice" in view.group_table[1]

    def test_view_is_a_snapshot(self, env):
        _, _, server, tokens = env
        server.insert_batch(tokens["alice"], [op(0, 1, 1)])
        view = server.compromise()
        view.posting_store[0].clear()
        assert server.num_elements == 1


class TestMisc:
    def test_storage_bytes(self, env):
        _, _, server, tokens = env
        server.insert_batch(tokens["alice"], [op(0, 1, 1)])
        per_record = 4 + 4 + 4 + server.share_bytes
        assert server.storage_bytes() == per_record

    def test_invalid_x_coordinate(self, env):
        auth, groups, _, _ = env
        with pytest.raises(IndexServerError):
            IndexServer("bad", x_coordinate=0, auth=auth, groups=groups)
